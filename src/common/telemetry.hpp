// Unified telemetry: one process-wide metric registry and a span-based
// tracer joining every layer of the stack (DESIGN.md §11).
//
// The paper's analytics server is the chokepoint translating frontend JSON
// queries into either CQL range reads or Spark jobs — so a slow query must
// be attributable to coordinator retries vs. shuffle skew vs. micro-batch
// backlog. Two primitives make that possible:
//
//   * MetricRegistry — named lock-free counters, gauges, and striped
//     log-bucketed latency histograms (p50/p95/p99). Modules that already
//     keep their own atomic counter structs (ClusterMetrics, BrokerMetrics,
//     EngineMetrics, StorageMetrics) register a *collector* instead of
//     migrating their atomics: at snapshot time each live instance
//     contributes its current values under stable metric names, and
//     same-named contributions sum. The structs stay the per-instance
//     views; the registry is the process-wide one.
//
//   * Tracer — Dapper-style spans. A root span is opened per server
//     request; the (trace_id, span_id) context lives in a thread-local and
//     is carried across pool boundaries with ScopedContext. Spans time
//     themselves on the tracer clock, which follows a SimClock when one is
//     installed — chaos-seeded runs produce deterministic traces. Finished
//     spans land in a bounded in-memory sink keyed by trace id, and spans
//     over the slow threshold additionally enter a top-K slow-op log.
//
// Hot-path cost when no trace is active: one relaxed atomic load plus one
// thread-local read per Span constructor — cheap enough for the lock-free
// paths PRs 1–3 built (the overhead budget is ≤5% on bench_fig3_endtoend).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hpcla {
class SimClock;
}

namespace hpcla::telemetry {

// --------------------------------------------------------------- instruments

/// Monotonic lock-free counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value gauge.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Point-in-time view of one latency histogram. Percentiles are bucket
/// midpoints, so the relative error is bounded by the bucket width
/// (≤ ~12.5% with 2 sub-bucket bits).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum_us = 0;
  std::uint64_t min_us = 0;
  std::uint64_t max_us = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  [[nodiscard]] double mean_us() const noexcept {
    return count == 0 ? 0.0 : static_cast<double>(sum_us) /
                                  static_cast<double>(count);
  }
};

/// Lock-free latency histogram with HdrHistogram-style log-linear buckets:
/// values < 4 are exact; above that each power-of-two range splits into 4
/// linear sub-buckets. Recording is one relaxed fetch_add into one of
/// kStripes per-thread stripes, so concurrent recorders on different
/// threads rarely share a cache line.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 256;

  void record(std::uint64_t value_us) noexcept;

  [[nodiscard]] HistogramSnapshot snapshot() const;

  /// Bucket containing `v` (exposed for the accuracy tests).
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v) noexcept;
  /// Midpoint estimate of bucket `idx`.
  [[nodiscard]] static double bucket_midpoint(std::size_t idx) noexcept;

 private:
  static constexpr std::size_t kStripes = 8;

  struct alignas(64) Stripe {
    std::array<std::atomic<std::uint64_t>, kBuckets> counts{};
    std::atomic<std::uint64_t> sum{0};
  };

  std::array<Stripe, kStripes> stripes_{};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

// ----------------------------------------------------------------- registry

/// Receives one module's metric values during a registry snapshot.
/// Contributions under the same name sum (several clusters -> one total).
class MetricSink {
 public:
  virtual void counter(std::string_view name, std::uint64_t value) = 0;
  virtual void gauge(std::string_view name, double value) = 0;

 protected:
  ~MetricSink() = default;
};

using CollectorFn = std::function<void(MetricSink&)>;

class MetricRegistry;

/// RAII registration of a collector; deregisters on destruction. Objects
/// holding one must declare it as their *last* member so the collector is
/// torn down before anything it reads.
class CollectorHandle {
 public:
  CollectorHandle() = default;
  CollectorHandle(CollectorHandle&& other) noexcept;
  CollectorHandle& operator=(CollectorHandle&& other) noexcept;
  CollectorHandle(const CollectorHandle&) = delete;
  CollectorHandle& operator=(const CollectorHandle&) = delete;
  ~CollectorHandle();

  void reset() noexcept;

 private:
  friend class MetricRegistry;
  CollectorHandle(MetricRegistry* registry, std::uint64_t id) noexcept
      : registry_(registry), id_(id) {}

  MetricRegistry* registry_ = nullptr;
  std::uint64_t id_ = 0;
};

/// Everything the registry knows at one instant: owned instruments merged
/// with live collector contributions. Maps are name-ordered, so rendering
/// is deterministic.
struct RegistrySnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Process-wide named-instrument registry. Instrument lookup takes a mutex
/// once; the returned reference stays valid for the process lifetime, so
/// hot paths cache it and record lock-free afterwards.
class MetricRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyHistogram& histogram(std::string_view name);

  [[nodiscard]] CollectorHandle register_collector(CollectorFn fn);

  [[nodiscard]] RegistrySnapshot snapshot() const;

 private:
  friend class CollectorHandle;
  void deregister_collector(std::uint64_t id) noexcept;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_;
  std::map<std::uint64_t, CollectorFn> collectors_;
  std::uint64_t next_collector_id_ = 1;
};

/// The process-wide registry (leaked singleton: collectors deregistering
/// during static destruction must always find it alive).
MetricRegistry& registry();

/// Prometheus-style text exposition ('.' becomes '_'; histograms expand to
/// _count/_sum and quantile-labelled rows).
std::string prometheus_text(const RegistrySnapshot& snap);

// ------------------------------------------------------------------- tracing

/// Identity a request carries through the stack. trace_id == 0 means "not
/// inside a trace" — spans constructed then are inert.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  [[nodiscard]] bool active() const noexcept { return trace_id != 0; }
};

/// One finished span as stored in the trace sink.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root
  std::string name;
  std::int64_t start_us = 0;
  std::int64_t duration_us = 0;
  std::vector<std::pair<std::string, std::string>> tags;
};

/// Bounded in-memory span sink + slow-op log.
class Tracer {
 public:
  static constexpr std::size_t kMaxTraces = 128;
  static constexpr std::size_t kMaxSpansPerTrace = 512;
  static constexpr std::size_t kSlowLogCapacity = 32;

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_release);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_acquire);
  }

  /// Installs (or clears, with nullptr) a virtual clock: span timestamps
  /// then read SimClock milliseconds, so chaos schedules trace identically
  /// run to run.
  void set_sim_clock(SimClock* clock) noexcept {
    sim_clock_.store(clock, std::memory_order_release);
  }

  void set_slow_threshold_us(std::int64_t us) noexcept {
    slow_threshold_us_.store(us, std::memory_order_release);
  }
  [[nodiscard]] std::int64_t slow_threshold_us() const noexcept {
    return slow_threshold_us_.load(std::memory_order_acquire);
  }

  /// Current time on the tracer clock (virtual when a SimClock is set,
  /// steady wall time otherwise).
  [[nodiscard]] std::int64_t now_us() const noexcept;

  [[nodiscard]] std::uint64_t next_trace_id() noexcept {
    return next_trace_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t next_span_id() noexcept {
    return next_span_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Stores a finished span (bounded per trace; oldest trace evicted when
  /// the sink is full) and enters it into the slow-op log when its
  /// duration is at or over the threshold.
  void record(SpanRecord rec);

  /// All spans of one trace, in completion order (children before parents).
  [[nodiscard]] std::vector<SpanRecord> trace(std::uint64_t trace_id) const;

  /// Top-K spans over the slow threshold, slowest first.
  [[nodiscard]] std::vector<SpanRecord> slow_ops() const;

  /// Drops all stored traces and the slow log (test isolation).
  void clear();

 private:
  std::atomic<bool> enabled_{true};
  std::atomic<SimClock*> sim_clock_{nullptr};
  std::atomic<std::int64_t> slow_threshold_us_{50'000};
  std::atomic<std::uint64_t> next_trace_{1};
  std::atomic<std::uint64_t> next_span_{1};

  mutable std::mutex mu_;
  std::map<std::uint64_t, std::vector<SpanRecord>> traces_;
  std::vector<std::uint64_t> trace_order_;  ///< FIFO for eviction
  std::vector<SpanRecord> slow_;            ///< kept sorted, slowest first
};

/// The process-wide tracer (leaked singleton, like registry()).
Tracer& tracer();

/// This thread's current trace context (zero when not inside a span).
[[nodiscard]] TraceContext current() noexcept;

/// Installs `ctx` as the thread's current context for the scope — how a
/// driver's context crosses into ThreadPool tasks: capture current() by
/// value before submitting, open a ScopedContext inside the task.
class ScopedContext {
 public:
  explicit ScopedContext(TraceContext ctx) noexcept;
  ~ScopedContext();
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  TraceContext saved_;
};

/// RAII span. A child Span is inert unless the thread is inside an active
/// trace; Span::root starts a new trace (inert only when the tracer is
/// disabled). While alive, the span is the thread's current context; on
/// destruction it restores its parent and records itself.
class Span {
 public:
  /// Child of the thread's current context.
  explicit Span(std::string_view name) : Span(name, /*root=*/false) {}

  /// Starts a new trace with this span as the root.
  [[nodiscard]] static Span root(std::string_view name) {
    return Span(name, /*root=*/true);
  }

  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void tag(std::string_view key, std::string_view value);
  /// Without this overload a string literal would convert pointer->bool (a
  /// standard conversion, preferred over the user-defined string_view one)
  /// and silently record "true"/"false".
  void tag(std::string_view key, const char* value) {
    tag(key, std::string_view(value));
  }
  void tag(std::string_view key, std::uint64_t value);
  void tag(std::string_view key, std::int64_t value);
  void tag(std::string_view key, bool value);

  /// Overrides the measured duration — virtual-time coordinators resolve
  /// their latency analytically and stamp it here.
  void set_duration_us(std::int64_t us) noexcept { explicit_duration_ = us; }

  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] std::uint64_t trace_id() const noexcept {
    return rec_.trace_id;
  }
  [[nodiscard]] std::int64_t start_us() const noexcept {
    return rec_.start_us;
  }
  [[nodiscard]] TraceContext context() const noexcept {
    return TraceContext{rec_.trace_id, rec_.span_id};
  }

 private:
  Span(std::string_view name, bool root);

  SpanRecord rec_;
  TraceContext saved_;
  std::int64_t explicit_duration_ = -1;
  bool active_ = false;
};

/// Records an already-finished child span of `parent` with explicit timing
/// — for per-replica tries resolved analytically in virtual time, where no
/// RAII scope matches the span's lifetime. No-op when `parent` is inactive
/// or the tracer is disabled.
void emit_span(const TraceContext& parent, std::string_view name,
               std::int64_t start_us, std::int64_t duration_us,
               std::vector<std::pair<std::string, std::string>> tags = {});

}  // namespace hpcla::telemetry
