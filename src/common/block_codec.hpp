// Block compression + varint primitives shared by the spill tier and the
// columnar SSTable extents (DESIGN.md §13).
//
// The compressor is an LZ4-shaped byte LZ: greedy hash-table matching over
// a 64 KiB window, sequences of [token][literals][offset][match-ext]. It is
// not the LZ4 bitstream (no frame format, no checksums) but shares its
// virtues: single-pass compression, allocation-free decompression into a
// pre-sized buffer, and byte-identical roundtrips for any input. HPC log
// data — repeated cnames, event ids, message templates — compresses 3-10x,
// which is what makes spilled shuffle runs and on-"disk" extents cheaper
// than the boxed rows they replace.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace hpcla::codec {

// ------------------------------------------------------------------ varints

/// LEB128 append.
inline void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// LEB128 read; returns the advanced pointer or nullptr on truncation.
inline const char* get_varint(const char* p, const char* end,
                              std::uint64_t& v) {
  v = 0;
  for (int shift = 0; shift < 64 && p < end; shift += 7) {
    const auto byte = static_cast<std::uint8_t>(*p++);
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return p;
  }
  return nullptr;
}

/// Signed <-> unsigned mapping that keeps small magnitudes short.
inline std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

// ------------------------------------------------------------- block codec

/// Compresses `in` into an LZ4-style sequence stream. Always succeeds;
/// incompressible input degrades to ~1.004x expansion (pure literals).
std::string block_compress(std::string_view in);

/// Decompresses a block_compress() output. `raw_size` is the original
/// length (stored out-of-band by every caller); returns false on corrupt
/// input or a size mismatch.
bool block_decompress(std::string_view in, std::size_t raw_size,
                      std::string& out);

}  // namespace hpcla::codec
