#include "common/faultsim.hpp"

#include "common/hash.hpp"

namespace hpcla {
namespace {

/// splitmix64 finalizer: full-avalanche mix so consecutive op counters
/// decorrelate into independent Bernoulli trials.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr std::uint64_t kWriteChannel = fnv1a_64("faultsim.write");
constexpr std::uint64_t kReadChannel = fnv1a_64("faultsim.read");
constexpr std::uint64_t kGossipChannel = fnv1a_64("faultsim.gossip");
constexpr std::uint64_t kPoisonChannel = fnv1a_64("faultsim.poison");

constexpr bool in_window(std::int64_t now, std::int64_t from,
                         std::int64_t until) noexcept {
  return from <= now && now < until;
}

}  // namespace

FaultInjector::FaultInjector(std::size_t node_count, FaultOptions options,
                             SimClock* clock)
    : node_count_(node_count),
      options_(options),
      clock_(clock),
      nodes_(std::make_unique<NodeFaults[]>(node_count)) {}

void FaultInjector::crash_window(std::size_t node, std::int64_t from_ms,
                                 std::int64_t until_ms) {
  HPCLA_CHECK_MSG(node < node_count_, "faultsim: node index out of range");
  nodes_[node].down_from.store(from_ms, std::memory_order_release);
  nodes_[node].down_until.store(until_ms, std::memory_order_release);
}

void FaultInjector::slow_window(std::size_t node, std::int64_t from_ms,
                                std::int64_t until_ms) {
  HPCLA_CHECK_MSG(node < node_count_, "faultsim: node index out of range");
  nodes_[node].slow_from.store(from_ms, std::memory_order_release);
  nodes_[node].slow_until.store(until_ms, std::memory_order_release);
}

void FaultInjector::heal_node(std::size_t node) {
  HPCLA_CHECK_MSG(node < node_count_, "faultsim: node index out of range");
  nodes_[node].down_from.store(INT64_MAX, std::memory_order_release);
  nodes_[node].down_until.store(INT64_MIN, std::memory_order_release);
  nodes_[node].slow_from.store(INT64_MAX, std::memory_order_release);
  nodes_[node].slow_until.store(INT64_MIN, std::memory_order_release);
}

void FaultInjector::heal_all() {
  for (std::size_t n = 0; n < node_count_; ++n) heal_node(n);
}

bool FaultInjector::is_down(std::size_t node) const {
  HPCLA_CHECK_MSG(node < node_count_, "faultsim: node index out of range");
  return in_window(now_ms(),
                   nodes_[node].down_from.load(std::memory_order_acquire),
                   nodes_[node].down_until.load(std::memory_order_acquire));
}

bool FaultInjector::is_slow(std::size_t node) const {
  HPCLA_CHECK_MSG(node < node_count_, "faultsim: node index out of range");
  return in_window(now_ms(),
                   nodes_[node].slow_from.load(std::memory_order_acquire),
                   nodes_[node].slow_until.load(std::memory_order_acquire));
}

bool FaultInjector::decide(double rate, std::uint64_t channel,
                           std::uint64_t n) const noexcept {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  std::uint64_t h = mix64(hash_combine(hash_combine(options_.seed, channel), n));
  // Top 53 bits -> uniform double in [0, 1).
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < rate;
}

bool FaultInjector::fail_write(std::size_t node) {
  HPCLA_CHECK_MSG(node < node_count_, "faultsim: node index out of range");
  std::uint64_t n =
      nodes_[node].write_ops.fetch_add(1, std::memory_order_relaxed);
  bool fail = decide(options_.write_error_rate,
                     hash_combine(kWriteChannel, node), n);
  if (fail) write_errors_.fetch_add(1, std::memory_order_relaxed);
  return fail;
}

bool FaultInjector::fail_read(std::size_t node) {
  HPCLA_CHECK_MSG(node < node_count_, "faultsim: node index out of range");
  std::uint64_t n =
      nodes_[node].read_ops.fetch_add(1, std::memory_order_relaxed);
  bool fail =
      decide(options_.read_error_rate, hash_combine(kReadChannel, node), n);
  if (fail) read_errors_.fetch_add(1, std::memory_order_relaxed);
  return fail;
}

std::int64_t FaultInjector::replica_latency_ms(std::size_t node) {
  if (is_slow(node)) {
    slow_ops_.fetch_add(1, std::memory_order_relaxed);
    return options_.slow_latency_ms;
  }
  return options_.base_latency_ms;
}

bool FaultInjector::drop_gossip() {
  std::uint64_t n = gossip_ops_.fetch_add(1, std::memory_order_relaxed);
  bool drop = decide(options_.gossip_drop_rate, kGossipChannel, n);
  if (drop) gossip_drops_.fetch_add(1, std::memory_order_relaxed);
  return drop;
}

bool FaultInjector::poison_record() {
  std::uint64_t n = poison_ops_.fetch_add(1, std::memory_order_relaxed);
  bool poison = decide(options_.poison_rate, kPoisonChannel, n);
  if (poison) poisoned_records_.fetch_add(1, std::memory_order_relaxed);
  return poison;
}

FaultCounts FaultInjector::counts() const {
  FaultCounts c;
  c.write_errors = write_errors_.load(std::memory_order_relaxed);
  c.read_errors = read_errors_.load(std::memory_order_relaxed);
  c.gossip_drops = gossip_drops_.load(std::memory_order_relaxed);
  c.poisoned_records = poisoned_records_.load(std::memory_order_relaxed);
  c.slow_ops = slow_ops_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace hpcla
