#include "common/faultsim.hpp"

#include "common/hash.hpp"

namespace hpcla {
namespace {

/// splitmix64 finalizer: full-avalanche mix so consecutive op counters
/// decorrelate into independent Bernoulli trials.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr std::uint64_t kWriteChannel = fnv1a_64("faultsim.write");
constexpr std::uint64_t kReadChannel = fnv1a_64("faultsim.read");
constexpr std::uint64_t kGossipChannel = fnv1a_64("faultsim.gossip");
constexpr std::uint64_t kPoisonChannel = fnv1a_64("faultsim.poison");

constexpr bool in_window(std::int64_t now, std::int64_t from,
                         std::int64_t until) noexcept {
  return from <= now && now < until;
}

}  // namespace

FaultInjector::FaultInjector(std::size_t node_count, FaultOptions options,
                             SimClock* clock)
    : node_count_(node_count),
      options_(options),
      clock_(clock),
      nodes_(std::make_unique<NodeFaults[]>(node_count)),
      links_(std::make_unique<LinkFault[]>(node_count * node_count)) {}

void FaultInjector::crash_window(std::size_t node, std::int64_t from_ms,
                                 std::int64_t until_ms) {
  HPCLA_CHECK_MSG(node < node_count_, "faultsim: node index out of range");
  nodes_[node].down_from.store(from_ms, std::memory_order_release);
  nodes_[node].down_until.store(until_ms, std::memory_order_release);
}

void FaultInjector::slow_window(std::size_t node, std::int64_t from_ms,
                                std::int64_t until_ms) {
  HPCLA_CHECK_MSG(node < node_count_, "faultsim: node index out of range");
  nodes_[node].slow_from.store(from_ms, std::memory_order_release);
  nodes_[node].slow_until.store(until_ms, std::memory_order_release);
}

void FaultInjector::heal_node(std::size_t node) {
  HPCLA_CHECK_MSG(node < node_count_, "faultsim: node index out of range");
  nodes_[node].down_from.store(INT64_MAX, std::memory_order_release);
  nodes_[node].down_until.store(INT64_MIN, std::memory_order_release);
  nodes_[node].slow_from.store(INT64_MAX, std::memory_order_release);
  nodes_[node].slow_until.store(INT64_MIN, std::memory_order_release);
}

void FaultInjector::heal_all() {
  for (std::size_t n = 0; n < node_count_; ++n) heal_node(n);
  heal_partitions();
}

bool FaultInjector::is_down(std::size_t node) const {
  // Nodes added to the cluster after the injector was sized have no
  // scheduled faults: report healthy instead of asserting.
  if (node >= node_count_) return false;
  return in_window(now_ms(),
                   nodes_[node].down_from.load(std::memory_order_acquire),
                   nodes_[node].down_until.load(std::memory_order_acquire));
}

bool FaultInjector::is_slow(std::size_t node) const {
  if (node >= node_count_) return false;
  return in_window(now_ms(),
                   nodes_[node].slow_from.load(std::memory_order_acquire),
                   nodes_[node].slow_until.load(std::memory_order_acquire));
}

void FaultInjector::partition_link(std::size_t from_node, std::size_t to_node,
                                   std::int64_t from_ms,
                                   std::int64_t until_ms) {
  HPCLA_CHECK_MSG(from_node < node_count_ && to_node < node_count_,
                  "faultsim: partition node index out of range");
  LinkFault& l = link(from_node, to_node);
  l.from.store(from_ms, std::memory_order_release);
  l.until.store(until_ms, std::memory_order_release);
}

void FaultInjector::partition_groups(const std::vector<std::size_t>& group_a,
                                     const std::vector<std::size_t>& group_b,
                                     std::int64_t from_ms,
                                     std::int64_t until_ms) {
  for (std::size_t a : group_a) {
    for (std::size_t b : group_b) {
      if (a == b) continue;
      partition_link(a, b, from_ms, until_ms);
      partition_link(b, a, from_ms, until_ms);
    }
  }
}

void FaultInjector::heal_partitions() {
  for (std::size_t i = 0; i < node_count_ * node_count_; ++i) {
    links_[i].from.store(INT64_MAX, std::memory_order_release);
    links_[i].until.store(INT64_MIN, std::memory_order_release);
  }
}

bool FaultInjector::link_down(std::size_t from_node, std::size_t to_node) {
  if (from_node >= node_count_ || to_node >= node_count_) return false;
  if (from_node == to_node) return false;
  const LinkFault& l = link(from_node, to_node);
  bool down = in_window(now_ms(), l.from.load(std::memory_order_acquire),
                        l.until.load(std::memory_order_acquire));
  if (down) partition_drops_.fetch_add(1, std::memory_order_relaxed);
  return down;
}

void FaultInjector::schedule_topology_event(TopologyEvent event) {
  std::lock_guard<std::mutex> lock(topology_mu_);
  topology_events_.push_back(event);
}

std::optional<TopologyEvent> FaultInjector::pop_due_topology_event() {
  std::lock_guard<std::mutex> lock(topology_mu_);
  const std::int64_t now = now_ms();
  std::size_t best = topology_events_.size();
  for (std::size_t i = 0; i < topology_events_.size(); ++i) {
    if (topology_events_[i].at_ms > now) continue;
    if (best == topology_events_.size() ||
        topology_events_[i].at_ms < topology_events_[best].at_ms) {
      best = i;  // earliest due; ties keep the first inserted
    }
  }
  if (best == topology_events_.size()) return std::nullopt;
  TopologyEvent event = topology_events_[best];
  topology_events_.erase(topology_events_.begin() +
                         static_cast<std::ptrdiff_t>(best));
  return event;
}

std::size_t FaultInjector::pending_topology_events() const {
  std::lock_guard<std::mutex> lock(topology_mu_);
  return topology_events_.size();
}

bool FaultInjector::decide(double rate, std::uint64_t channel,
                           std::uint64_t n) const noexcept {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  std::uint64_t h = mix64(hash_combine(hash_combine(options_.seed, channel), n));
  // Top 53 bits -> uniform double in [0, 1).
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < rate;
}

bool FaultInjector::fail_write(std::size_t node) {
  if (node >= node_count_) return false;
  std::uint64_t n =
      nodes_[node].write_ops.fetch_add(1, std::memory_order_relaxed);
  bool fail = decide(options_.write_error_rate,
                     hash_combine(kWriteChannel, node), n);
  if (fail) write_errors_.fetch_add(1, std::memory_order_relaxed);
  return fail;
}

bool FaultInjector::fail_read(std::size_t node) {
  if (node >= node_count_) return false;
  std::uint64_t n =
      nodes_[node].read_ops.fetch_add(1, std::memory_order_relaxed);
  bool fail =
      decide(options_.read_error_rate, hash_combine(kReadChannel, node), n);
  if (fail) read_errors_.fetch_add(1, std::memory_order_relaxed);
  return fail;
}

std::int64_t FaultInjector::replica_latency_ms(std::size_t node) {
  if (is_slow(node)) {
    slow_ops_.fetch_add(1, std::memory_order_relaxed);
    return options_.slow_latency_ms;
  }
  return options_.base_latency_ms;
}

bool FaultInjector::drop_gossip() {
  std::uint64_t n = gossip_ops_.fetch_add(1, std::memory_order_relaxed);
  bool drop = decide(options_.gossip_drop_rate, kGossipChannel, n);
  if (drop) gossip_drops_.fetch_add(1, std::memory_order_relaxed);
  return drop;
}

bool FaultInjector::poison_record() {
  std::uint64_t n = poison_ops_.fetch_add(1, std::memory_order_relaxed);
  bool poison = decide(options_.poison_rate, kPoisonChannel, n);
  if (poison) poisoned_records_.fetch_add(1, std::memory_order_relaxed);
  return poison;
}

FaultCounts FaultInjector::counts() const {
  FaultCounts c;
  c.write_errors = write_errors_.load(std::memory_order_relaxed);
  c.read_errors = read_errors_.load(std::memory_order_relaxed);
  c.gossip_drops = gossip_drops_.load(std::memory_order_relaxed);
  c.poisoned_records = poisoned_records_.load(std::memory_order_relaxed);
  c.slow_ops = slow_ops_.load(std::memory_order_relaxed);
  c.partition_drops = partition_drops_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace hpcla
