#include "common/clock.hpp"

#include <array>
#include <cstdio>

namespace hpcla {
namespace {

// Days-from-civil / civil-from-days after Howard Hinnant's public-domain
// chrono algorithms; exact over the whole int64 range we care about.
constexpr std::int64_t days_from_civil(int y, int m, int d) noexcept {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 +
                       static_cast<unsigned>(d) - 1;                    // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

constexpr void civil_from_days(std::int64_t z, int& y, int& m, int& d) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);         // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t yy = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);         // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                              // [0, 11]
  d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  y = static_cast<int>(yy + (m <= 2));
}

}  // namespace

CivilTime to_civil(UnixSeconds ts) noexcept {
  std::int64_t days = ts / kSecondsPerDay;
  std::int64_t secs = ts % kSecondsPerDay;
  if (secs < 0) {
    secs += kSecondsPerDay;
    --days;
  }
  CivilTime ct;
  civil_from_days(days, ct.year, ct.month, ct.day);
  ct.hour = static_cast<int>(secs / 3600);
  ct.minute = static_cast<int>((secs % 3600) / 60);
  ct.second = static_cast<int>(secs % 60);
  return ct;
}

UnixSeconds from_civil(const CivilTime& ct) noexcept {
  return days_from_civil(ct.year, ct.month, ct.day) * kSecondsPerDay +
         ct.hour * 3600 + ct.minute * 60 + ct.second;
}

std::string format_timestamp(UnixSeconds ts) {
  const CivilTime ct = to_civil(ts);
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%04d-%02d-%02d %02d:%02d:%02d",
                ct.year, ct.month, ct.day, ct.hour, ct.minute, ct.second);
  return buf.data();
}

std::string format_iso8601(UnixSeconds ts) {
  const CivilTime ct = to_civil(ts);
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%04d-%02d-%02dT%02d:%02d:%02dZ",
                ct.year, ct.month, ct.day, ct.hour, ct.minute, ct.second);
  return buf.data();
}

Result<UnixSeconds> parse_timestamp(std::string_view text) {
  // Accept "YYYY-MM-DD HH:MM:SS" and "YYYY-MM-DDTHH:MM:SS" with optional Z.
  if (text.size() >= 1 && text.back() == 'Z') text.remove_suffix(1);
  if (text.size() != 19) {
    return invalid_argument("timestamp must be 19 chars: '" +
                            std::string(text) + "'");
  }
  auto digit = [&](size_t i) -> int {
    char c = text[i];
    return (c >= '0' && c <= '9') ? c - '0' : -1;
  };
  auto num2 = [&](size_t i) { return digit(i) * 10 + digit(i + 1); };
  auto num4 = [&](size_t i) {
    return digit(i) * 1000 + digit(i + 1) * 100 + digit(i + 2) * 10 +
           digit(i + 3);
  };
  const char sep = text[10];
  if (text[4] != '-' || text[7] != '-' || (sep != ' ' && sep != 'T') ||
      text[13] != ':' || text[16] != ':') {
    return invalid_argument("bad timestamp separators: '" + std::string(text) +
                            "'");
  }
  for (size_t i : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u, 11u, 12u, 14u, 15u, 17u, 18u}) {
    if (digit(i) < 0) {
      return invalid_argument("bad timestamp digit: '" + std::string(text) + "'");
    }
  }
  CivilTime ct;
  ct.year = num4(0);
  ct.month = num2(5);
  ct.day = num2(8);
  ct.hour = num2(11);
  ct.minute = num2(14);
  ct.second = num2(17);
  if (ct.month < 1 || ct.month > 12 || ct.day < 1 || ct.day > 31 ||
      ct.hour > 23 || ct.minute > 59 || ct.second > 59) {
    return invalid_argument("timestamp field out of range: '" +
                            std::string(text) + "'");
  }
  return from_civil(ct);
}

}  // namespace hpcla
