// Hashing for the cassalite token ring and general-purpose maps.
//
// Cassandra's Murmur3Partitioner hashes partition keys with MurmurHash3
// x64/128 and takes the low 64 bits as the ring token; we reproduce that so
// partition placement behaves like the paper's backend (Fig 4).
#pragma once

#include <cstdint>
#include <string_view>

namespace hpcla {

/// MurmurHash3 x64/128, low 64 bits. Deterministic across platforms.
std::uint64_t murmur3_64(std::string_view data, std::uint64_t seed = 0) noexcept;

/// FNV-1a 64-bit; cheap hash for short strings in non-ring contexts.
constexpr std::uint64_t fnv1a_64(std::string_view data) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Ring token: signed like Cassandra's murmur3 token space [-2^63, 2^63).
using Token = std::int64_t;

/// Token for a partition key.
inline Token token_for_key(std::string_view key) noexcept {
  return static_cast<Token>(murmur3_64(key));
}

/// Mix for composing multiple hash values (boost::hash_combine style,
/// 64-bit variant).
constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                     std::uint64_t v) noexcept {
  return seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 12) + (seed >> 4));
}

}  // namespace hpcla
