#include "analytics/context.hpp"

namespace hpcla::analytics {

Json Context::to_json() const {
  Json j = Json::object();
  Json w = Json::object();
  w["begin"] = window.begin;
  w["end"] = window.end;
  j["window"] = std::move(w);
  if (!types.empty()) {
    Json arr = Json::array();
    for (auto t : types) arr.push_back(std::string(titanlog::event_id(t)));
    j["types"] = std::move(arr);
  }
  if (location) j["location"] = topo::format_cname(*location);
  if (!users.empty()) {
    Json arr = Json::array();
    for (const auto& u : users) arr.push_back(u);
    j["users"] = std::move(arr);
  }
  if (!apps.empty()) {
    Json arr = Json::array();
    for (const auto& a : apps) arr.push_back(a);
    j["apps"] = std::move(arr);
  }
  return j;
}

Result<Context> Context::from_json(const Json& j) {
  if (!j.is_object()) return invalid_argument("context must be an object");
  Context ctx;
  const Json& window = j["window"];
  auto begin = window.get_int("begin");
  if (!begin.is_ok()) return begin.status();
  auto end = window.get_int("end");
  if (!end.is_ok()) return end.status();
  ctx.window = TimeRange{begin.value(), end.value()};
  if (ctx.window.empty()) {
    return invalid_argument("context window must be non-empty");
  }

  const Json& types = j["types"];
  if (!types.is_null()) {
    if (!types.is_array()) return invalid_argument("'types' must be an array");
    for (const auto& t : types.as_array()) {
      if (!t.is_string()) return invalid_argument("event type must be string");
      auto parsed = titanlog::event_type_from_id(t.as_string());
      if (!parsed.is_ok()) return parsed.status();
      ctx.types.push_back(parsed.value());
    }
  }

  const Json& location = j["location"];
  if (!location.is_null()) {
    if (!location.is_string()) {
      return invalid_argument("'location' must be a cname string");
    }
    if (location.as_string() != "system") {
      auto coord = topo::parse_cname(location.as_string());
      if (!coord.is_ok()) return coord.status();
      ctx.location = coord.value();
    }
  }

  const auto read_strings = [&](const char* field,
                                std::vector<std::string>& out) -> Status {
    const Json& arr = j[field];
    if (arr.is_null()) return Status::ok();
    if (!arr.is_array()) {
      return invalid_argument(std::string("'") + field + "' must be an array");
    }
    for (const auto& v : arr.as_array()) {
      if (!v.is_string()) {
        return invalid_argument(std::string(field) + " entries must be strings");
      }
      out.push_back(v.as_string());
    }
    return Status::ok();
  };
  HPCLA_RETURN_IF_ERROR(read_strings("users", ctx.users));
  HPCLA_RETURN_IF_ERROR(read_strings("apps", ctx.apps));
  return ctx;
}

}  // namespace hpcla::analytics
