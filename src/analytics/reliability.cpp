#include "analytics/reliability.hpp"

#include <algorithm>
#include <set>

namespace hpcla::analytics {

using titanlog::EventRecord;
using titanlog::EventType;
using titanlog::JobRecord;
using titanlog::Severity;

ReliabilityReport reliability_report(sparklite::Engine& engine,
                                     const cassalite::Cluster& cluster,
                                     const Context& ctx) {
  ReliabilityReport report;
  auto events = fetch_events(engine, cluster, ctx);
  std::set<topo::NodeId> nodes;
  std::int64_t total = 0;
  for (const auto& e : events) {
    report.counts_by_type[e.type] += e.count;
    total += e.count;
    nodes.insert(e.node);
    if (titanlog::event_info(e.type).severity == Severity::kFatal) {
      report.fatal_events += e.count;
    }
  }
  report.affected_nodes = static_cast<std::int64_t>(nodes.size());

  const double window_s = static_cast<double>(ctx.window.duration());
  report.mtbf_seconds = report.fatal_events > 0
                            ? window_s / static_cast<double>(report.fatal_events)
                            : window_s;
  const std::size_t node_pool =
      ctx.location ? topo::titan().nodes_in(*ctx.location).size()
                   : static_cast<std::size_t>(topo::TitanGeometry::kTotalNodes);
  const double node_hours =
      static_cast<double>(node_pool) * window_s / kSecondsPerHour;
  report.events_per_node_hour =
      node_hours > 0.0 ? static_cast<double>(total) / node_hours : 0.0;
  return report;
}

AppImpactReport app_impact(sparklite::Engine& engine,
                           const cassalite::Cluster& cluster,
                           const Context& ctx) {
  AppImpactReport report;
  auto jobs = fetch_jobs(engine, cluster, ctx);
  // Fatal events over the same window, indexed per node.
  Context fatal_ctx = ctx;
  fatal_ctx.types.clear();
  for (const auto& info : titanlog::event_catalog()) {
    if (info.severity == Severity::kFatal ||
        info.type == EventType::kMachineCheck ||
        info.type == EventType::kGpuFailure) {
      fatal_ctx.types.push_back(info.type);
    }
  }
  auto events = fetch_events(engine, cluster, fatal_ctx);
  std::map<topo::NodeId, std::vector<UnixSeconds>> by_node;
  for (const auto& e : events) by_node[e.node].push_back(e.ts);
  for (auto& [_, v] : by_node) std::sort(v.begin(), v.end());

  for (const auto& job : jobs) {
    ++report.jobs;
    if (job.failed()) ++report.failed_jobs;
    bool hit = false;
    for (const auto node : job.nodes) {
      const auto it = by_node.find(node);
      if (it == by_node.end()) continue;
      const auto lo =
          std::lower_bound(it->second.begin(), it->second.end(), job.start);
      if (lo != it->second.end() && *lo <= job.end) {
        hit = true;
        break;
      }
    }
    if (hit) {
      (job.failed() ? report.failed_with_event : report.ok_with_event)++;
    }
  }
  return report;
}

}  // namespace hpcla::analytics
