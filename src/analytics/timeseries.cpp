#include "analytics/timeseries.hpp"

#include <algorithm>
#include <cmath>

namespace hpcla::analytics {

std::vector<double> bin_series(const std::vector<titanlog::EventRecord>& events,
                               const TimeRange& range,
                               std::int64_t bin_seconds) {
  HPCLA_CHECK_MSG(bin_seconds > 0, "bin size must be positive");
  HPCLA_CHECK_MSG(!range.empty(), "bin range must be non-empty");
  const auto bins = static_cast<std::size_t>(
      (range.duration() + bin_seconds - 1) / bin_seconds);
  std::vector<double> out(bins, 0.0);
  for (const auto& e : events) {
    if (!range.contains(e.ts)) continue;
    const auto idx =
        static_cast<std::size_t>((e.ts - range.begin) / bin_seconds);
    out[idx] += static_cast<double>(e.count);
  }
  return out;
}

std::vector<double> event_series(sparklite::Engine& engine,
                                 const cassalite::Cluster& cluster,
                                 const Context& ctx, titanlog::EventType type,
                                 std::int64_t bin_seconds) {
  Context narrowed = ctx;
  narrowed.types = {type};
  auto events = fetch_events(engine, cluster, narrowed);
  return bin_series(events, ctx.window, bin_seconds);
}

std::vector<double> cross_correlation(const std::vector<double>& a,
                                      const std::vector<double>& b,
                                      std::size_t max_lag) {
  HPCLA_CHECK_MSG(a.size() == b.size(), "series length mismatch");
  const std::size_t n = a.size();
  std::vector<double> out(2 * max_lag + 1, 0.0);
  if (n == 0) return out;

  double mean_a = 0.0;
  double mean_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double var_a = 0.0;
  double var_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    var_a += (a[i] - mean_a) * (a[i] - mean_a);
    var_b += (b[i] - mean_b) * (b[i] - mean_b);
  }
  const double denom = std::sqrt(var_a * var_b);
  if (denom == 0.0) return out;

  for (std::int64_t lag = -static_cast<std::int64_t>(max_lag);
       lag <= static_cast<std::int64_t>(max_lag); ++lag) {
    double acc = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      const std::int64_t u = static_cast<std::int64_t>(t) + lag;
      if (u < 0 || u >= static_cast<std::int64_t>(n)) continue;
      acc += (a[t] - mean_a) * (b[static_cast<std::size_t>(u)] - mean_b);
    }
    out[static_cast<std::size_t>(lag + static_cast<std::int64_t>(max_lag))] =
        acc / denom;
  }
  return out;
}

std::int64_t peak_lag(const std::vector<double>& correlation,
                      std::size_t max_lag) {
  HPCLA_CHECK_MSG(correlation.size() == 2 * max_lag + 1,
                  "correlation vector size mismatch");
  const auto it = std::max_element(correlation.begin(), correlation.end());
  return static_cast<std::int64_t>(it - correlation.begin()) -
         static_cast<std::int64_t>(max_lag);
}

}  // namespace hpcla::analytics
