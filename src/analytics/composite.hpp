// Composite event types (paper §V, future work):
//
// "First, new and composite event types will need to be defined for
//  capturing the complete status of the system. This will involve event
//  mining techniques rather than text pattern matching."
//
// A CompositeRule names a *sequence* of base event types that must occur
// on the same scope (node / blade / cabinet / anywhere) within bounded
// gaps — e.g. "GPU DBE followed by GPU failure within 10 minutes on the
// same node". The detector mines a context's event stream for matches;
// matches are themselves events (with a location and a time) so they can
// feed every existing analytic.
#pragma once

#include <string>
#include <vector>

#include "analytics/context.hpp"
#include "analytics/queries.hpp"

namespace hpcla::analytics {

/// Scope at which the sequence must stay co-located.
enum class MatchScope { kNode, kBlade, kCabinet, kSystem };

std::string_view match_scope_name(MatchScope s) noexcept;
Result<MatchScope> match_scope_from_string(std::string_view name);

/// One step of a composite sequence: the type that must occur next, within
/// `max_gap_seconds` of the previous step.
struct CompositeStep {
  titanlog::EventType type = titanlog::EventType::kMachineCheck;
  std::int64_t max_gap_seconds = 600;
};

/// A named composite event definition.
struct CompositeRule {
  std::string name;
  MatchScope scope = MatchScope::kNode;
  /// At least two steps; the first step's max_gap is ignored.
  std::vector<CompositeStep> steps;
};

/// A detected composite occurrence.
struct CompositeMatch {
  std::string rule;
  /// Scope key of the match (node id for kNode, blade index for kBlade...).
  std::int64_t scope_key = 0;
  topo::NodeId last_node = topo::kInvalidNode;
  UnixSeconds start_ts = 0;  ///< first step's timestamp
  UnixSeconds end_ts = 0;    ///< last step's timestamp
  /// (ts, seq) of each matched step, in order.
  std::vector<std::pair<UnixSeconds, std::int64_t>> step_events;
};

/// Mines a sorted event stream for non-overlapping matches of one rule.
/// Greedy earliest-match semantics per scope key: a partial match is
/// extended by the earliest eligible next step; consumed events cannot be
/// reused by the same rule.
std::vector<CompositeMatch> detect_composites(
    const std::vector<titanlog::EventRecord>& events_sorted_by_ts,
    const CompositeRule& rule);

/// Convenience: fetch the context's events and run several rules.
std::vector<CompositeMatch> detect_composites(
    sparklite::Engine& engine, const cassalite::Cluster& cluster,
    const Context& ctx, const std::vector<CompositeRule>& rules);

/// A starter rule book of operationally meaningful sequences.
std::vector<CompositeRule> default_composite_rules();

}  // namespace hpcla::analytics
