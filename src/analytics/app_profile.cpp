#include "analytics/app_profile.hpp"

#include <algorithm>

namespace hpcla::analytics {

using titanlog::EventRecord;
using titanlog::JobRecord;

Json AppProfile::to_json() const {
  Json j = Json::object();
  j["app"] = app;
  j["runs"] = runs;
  j["failed_runs"] = failed_runs;
  j["failure_rate"] = failure_rate();
  j["node_hours"] = node_hours;
  Json counts = Json::object();
  for (const auto& [type, count] : event_counts) {
    counts[std::string(titanlog::event_id(type))] = count;
  }
  j["event_counts"] = std::move(counts);
  j["events_per_node_hour"] = total_rate();
  return j;
}

std::vector<AppProfile> build_app_profiles(sparklite::Engine& engine,
                                           const cassalite::Cluster& cluster,
                                           const Context& ctx) {
  auto jobs = fetch_jobs(engine, cluster, ctx);
  Context event_ctx;
  event_ctx.window = ctx.window;
  event_ctx.location = ctx.location;
  event_ctx.types = ctx.types;
  auto events = fetch_events(engine, cluster, event_ctx);

  // Interval index: node -> (start, end, job*) sorted by start.
  struct Span {
    UnixSeconds start;
    UnixSeconds end;
    const JobRecord* job;
  };
  std::map<topo::NodeId, std::vector<Span>> by_node;
  for (const auto& job : jobs) {
    for (const auto node : job.nodes) {
      by_node[node].push_back(Span{job.start, job.end, &job});
    }
  }
  for (auto& [_, spans] : by_node) {
    std::sort(spans.begin(), spans.end(),
              [](const Span& a, const Span& b) { return a.start < b.start; });
  }

  std::map<std::string, AppProfile> profiles;
  for (const auto& job : jobs) {
    auto& p = profiles[job.app_name];
    p.app = job.app_name;
    ++p.runs;
    p.failed_runs += job.failed() ? 1 : 0;
    // Node-hours clipped to the analysis window.
    const auto begin = std::max(job.start, ctx.window.begin);
    const auto end = std::min(job.end, ctx.window.end);
    if (end > begin) {
      p.node_hours += static_cast<double>(end - begin) / kSecondsPerHour *
                      static_cast<double>(job.nodes.size());
    }
  }
  for (const auto& e : events) {
    const auto it = by_node.find(e.node);
    if (it == by_node.end()) continue;
    for (const Span& span : it->second) {
      if (span.start > e.ts) break;
      if (e.ts < span.end) {
        auto& p = profiles[span.job->app_name];
        p.event_counts[e.type] += e.count;
        break;  // a node runs one job at a time
      }
    }
  }

  std::vector<AppProfile> out;
  out.reserve(profiles.size());
  for (auto& [_, p] : profiles) out.push_back(std::move(p));
  std::sort(out.begin(), out.end(), [](const AppProfile& a, const AppProfile& b) {
    return a.total_rate() > b.total_rate();
  });
  return out;
}

}  // namespace hpcla::analytics
