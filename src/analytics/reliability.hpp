// Reliability statistics over a context: failure counts, rates, MTBF, and
// application-impact measures (paper §I: "evaluate system reliability
// characteristics"; §V: application profiles vs fault events).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analytics/context.hpp"
#include "analytics/queries.hpp"

namespace hpcla::analytics {

struct ReliabilityReport {
  /// Occurrences per event type in the context.
  std::map<titanlog::EventType, std::int64_t> counts_by_type;
  /// Total fatal-severity occurrences.
  std::int64_t fatal_events = 0;
  /// Mean time between fatal events over the window, seconds
  /// (window duration when no fatal events occurred).
  double mtbf_seconds = 0.0;
  /// Events per node-hour across the context's nodes.
  double events_per_node_hour = 0.0;
  /// Distinct nodes that reported at least one event.
  std::int64_t affected_nodes = 0;
};

ReliabilityReport reliability_report(sparklite::Engine& engine,
                                     const cassalite::Cluster& cluster,
                                     const Context& ctx);

/// Application-impact: of the jobs overlapping the window, how many failed,
/// and how strongly failure correlates with fatal events on their nodes —
/// the correlation the paper's Fig 6 walkthrough motivates.
struct AppImpactReport {
  std::int64_t jobs = 0;
  std::int64_t failed_jobs = 0;
  std::int64_t failed_with_event = 0;  ///< failed jobs with a fatal event on
                                       ///< an allocated node during the run
  std::int64_t ok_with_event = 0;      ///< survived despite such an event

  [[nodiscard]] double failure_rate() const noexcept {
    return jobs ? static_cast<double>(failed_jobs) / static_cast<double>(jobs)
                : 0.0;
  }
};

AppImpactReport app_impact(sparklite::Engine& engine,
                           const cassalite::Cluster& cluster,
                           const Context& ctx);

}  // namespace hpcla::analytics
