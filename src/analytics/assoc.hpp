// Association-rule mining over event co-occurrence (paper §II-A):
//
// "The foundation of the analytics framework on such a data model will
//  support a variety of statistical or data mining techniques, such as
//  association rules [1], decision trees, cross correlation, Bayesian
//  network, etc., to be applied to the system log data."
//
// Transactions are (node, time-bucket) baskets of the event types observed
// there; rules A => B are scored with the classic support / confidence /
// lift measures. High-lift rules surface type pairs that co-occur on the
// same component far more often than chance — the "persistent behavioral
// patterns" the introduction promises.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analytics/context.hpp"
#include "analytics/queries.hpp"

namespace hpcla::analytics {

struct AssocConfig {
  /// Basket granularity: one transaction per (node, bucket).
  std::int64_t bucket_seconds = 600;
  /// Minimum fraction of transactions containing {A, B}.
  double min_support = 0.001;
  /// Minimum P(B | A).
  double min_confidence = 0.3;
};

/// One mined rule A => B.
struct AssocRule {
  titanlog::EventType lhs;
  titanlog::EventType rhs;
  std::int64_t pair_count = 0;   ///< transactions containing both
  double support = 0.0;          ///< pair_count / transactions
  double confidence = 0.0;       ///< pair_count / count(lhs)
  double lift = 0.0;             ///< confidence / P(rhs)

  [[nodiscard]] Json to_json() const;
};

/// Mines rules from an event list. Returns rules passing both thresholds,
/// sorted by lift (descending), ties by confidence.
std::vector<AssocRule> mine_association_rules(
    const std::vector<titanlog::EventRecord>& events, const AssocConfig& config);

/// Convenience: fetch the context's events first.
std::vector<AssocRule> mine_association_rules(sparklite::Engine& engine,
                                              const cassalite::Cluster& cluster,
                                              const Context& ctx,
                                              const AssocConfig& config = {});

}  // namespace hpcla::analytics
