#include "analytics/prediction.hpp"

#include <algorithm>
#include <deque>
#include <map>

namespace hpcla::analytics {

using titanlog::EventRecord;
using titanlog::EventType;
using titanlog::Severity;

double PredictionReport::mean_lead_seconds() const {
  double total = 0.0;
  std::int64_t n = 0;
  for (const auto& a : alarms) {
    if (a.hit) {
      total += static_cast<double>(a.lead_time_seconds);
      ++n;
    }
  }
  return n ? total / static_cast<double>(n) : 0.0;
}

namespace {

bool contains_type(const std::vector<EventType>& list, EventType t) {
  return std::find(list.begin(), list.end(), t) != list.end();
}

}  // namespace

PredictionReport evaluate_predictor(const std::vector<EventRecord>& events,
                                    const PredictorConfig& config) {
  // Resolve the default type sets.
  std::vector<EventType> precursors = config.precursors;
  std::vector<EventType> targets = config.targets;
  if (targets.empty()) {
    for (const auto& info : titanlog::event_catalog()) {
      if (info.severity == Severity::kFatal) targets.push_back(info.type);
    }
  }
  if (precursors.empty()) {
    for (const auto& info : titanlog::event_catalog()) {
      if (!contains_type(targets, info.type)) precursors.push_back(info.type);
    }
  }

  PredictionReport report;
  struct NodeState {
    std::deque<std::pair<UnixSeconds, std::int64_t>> window;  ///< (ts, count)
    std::int64_t windowed = 0;
    /// Index into report.alarms of the armed alarm, or -1.
    std::ptrdiff_t armed = -1;
    UnixSeconds armed_until = 0;
  };
  std::map<topo::NodeId, NodeState> nodes;

  for (const auto& e : events) {
    NodeState& st = nodes[e.node];

    // Expire armed alarms that timed out before this event.
    if (st.armed >= 0 && e.ts > st.armed_until) {
      st.armed = -1;
    }

    if (contains_type(targets, e.type)) {
      ++report.failures;
      if (st.armed >= 0) {
        ++report.failures_predicted;
        Alarm& alarm = report.alarms[static_cast<std::size_t>(st.armed)];
        if (!alarm.hit) {
          alarm.hit = true;
          alarm.lead_time_seconds = e.ts - alarm.raised_at;
          ++report.true_positives;
        }
        st.armed = -1;  // consumed
      }
      // A failure resets the precursor window (the component restarts).
      st.window.clear();
      st.windowed = 0;
      continue;
    }

    if (!contains_type(precursors, e.type)) continue;

    // Slide the window.
    st.window.emplace_back(e.ts, e.count);
    st.windowed += e.count;
    while (!st.window.empty() &&
           st.window.front().first < e.ts - config.window_seconds) {
      st.windowed -= st.window.front().second;
      st.window.pop_front();
    }

    if (st.windowed >= config.threshold && st.armed < 0) {
      Alarm alarm;
      alarm.node = e.node;
      alarm.raised_at = e.ts;
      alarm.precursor_count = st.windowed;
      st.armed = static_cast<std::ptrdiff_t>(report.alarms.size());
      st.armed_until = e.ts + config.lead_seconds;
      report.alarms.push_back(alarm);
    }
  }

  for (const auto& a : report.alarms) {
    report.false_positives += a.hit ? 0 : 1;
  }
  return report;
}

PredictionReport evaluate_predictor(sparklite::Engine& engine,
                                    const cassalite::Cluster& cluster,
                                    const Context& ctx,
                                    const PredictorConfig& config) {
  return evaluate_predictor(fetch_events(engine, cluster, ctx), config);
}

}  // namespace hpcla::analytics
