#include "analytics/heatmap.hpp"

#include <algorithm>

#include "common/stats.hpp"

namespace hpcla::analytics {

using topo::TitanGeometry;

std::array<std::int64_t, 200> HeatMap::cabinet_counts() const {
  std::array<std::int64_t, 200> out{};
  for (std::size_t n = 0; n < node_counts.size(); ++n) {
    out[static_cast<std::size_t>(
        topo::cabinet_of(static_cast<topo::NodeId>(n)))] += node_counts[n];
  }
  return out;
}

std::vector<std::int64_t> HeatMap::blade_counts() const {
  std::vector<std::int64_t> out(
      static_cast<std::size_t>(TitanGeometry::kTotalNodes /
                               TitanGeometry::kNodesPerBlade),
      0);
  for (std::size_t n = 0; n < node_counts.size(); ++n) {
    out[static_cast<std::size_t>(
        topo::blade_of(static_cast<topo::NodeId>(n)))] += node_counts[n];
  }
  return out;
}

std::vector<std::pair<topo::NodeId, std::int64_t>> HeatMap::anomalous_nodes(
    double k_sigma) const {
  RunningStats stats;
  for (auto c : node_counts) stats.add(static_cast<double>(c));
  const double threshold = stats.mean() + k_sigma * stats.stddev();
  std::vector<std::pair<topo::NodeId, std::int64_t>> out;
  for (std::size_t n = 0; n < node_counts.size(); ++n) {
    if (static_cast<double>(node_counts[n]) > threshold &&
        node_counts[n] > 0) {
      out.emplace_back(static_cast<topo::NodeId>(n), node_counts[n]);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

namespace {

HeatMap from_counts(std::vector<std::int64_t> counts) {
  HeatMap hm;
  hm.node_counts = std::move(counts);
  for (std::size_t n = 0; n < hm.node_counts.size(); ++n) {
    hm.total += hm.node_counts[n];
    if (hm.node_counts[n] > hm.peak) {
      hm.peak = hm.node_counts[n];
      hm.peak_node = static_cast<topo::NodeId>(n);
    }
  }
  return hm;
}

}  // namespace

HeatMap build_heatmap(sparklite::Engine& engine,
                      const cassalite::Cluster& cluster, const Context& ctx) {
  // The shuffle map stage fuses the scan, the per-node keying, and the
  // map-side combine into one pool stage; the collect() below runs the
  // per-bucket merges as a second stage.
  engine.set_next_stage_label("heatmap:scan+combine");
  auto events = event_dataset(engine, cluster, ctx);
  auto keyed = events.map([](const titanlog::EventRecord& e) {
    return std::make_pair(static_cast<std::int64_t>(e.node),
                          static_cast<std::int64_t>(e.count));
  });
  auto reduced = sparklite::reduce_by_key(
      keyed, [](std::int64_t a, std::int64_t b) { return a + b; });
  engine.set_next_stage_label("heatmap:merge");
  auto counts = reduced.collect();
  std::vector<std::int64_t> per_node(
      static_cast<std::size_t>(TitanGeometry::kTotalNodes), 0);
  for (const auto& [node, count] : counts) {
    per_node[static_cast<std::size_t>(node)] = count;
  }
  return from_counts(std::move(per_node));
}

HeatMap heatmap_from_counts(std::vector<std::int64_t> node_counts) {
  return from_counts(std::move(node_counts));
}

HeatMap heatmap_from_events(const std::vector<titanlog::EventRecord>& events) {
  std::vector<std::int64_t> per_node(
      static_cast<std::size_t>(TitanGeometry::kTotalNodes), 0);
  for (const auto& e : events) {
    per_node[static_cast<std::size_t>(e.node)] += e.count;
  }
  return from_counts(std::move(per_node));
}

}  // namespace hpcla::analytics
