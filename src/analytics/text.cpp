#include "analytics/text.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

namespace hpcla::analytics {

std::vector<std::string> tokenize(std::string_view message) {
  std::vector<std::string> out;
  std::string cur;
  bool has_alpha = false;
  const auto flush = [&] {
    if (cur.size() >= 2 && has_alpha) out.push_back(cur);
    cur.clear();
    has_alpha = false;
  };
  for (char raw : message) {
    const auto c = static_cast<unsigned char>(raw);
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_') {
      cur.push_back(static_cast<char>(c));
      has_alpha |= !(c >= '0' && c <= '9');
    } else if (c >= 'A' && c <= 'Z') {
      cur.push_back(static_cast<char>(c - 'A' + 'a'));
      has_alpha = true;
    } else {
      flush();
    }
  }
  flush();
  return out;
}

const std::set<std::string>& log_stopwords() {
  static const std::set<std::string> kStopwords = {
      "the",    "to",        "of",       "on",        "in",      "was",
      "is",     "for",       "with",     "and",       "at",      "by",
      "from",   "error",     "errors",   "failed",    "failure", "operation",
      "will",   "this",      "that",     "not",       "lustreerror",
      "atlas",  "node",      "detected", "exception", "wait",    "recovery",
      "progress", "using",   "service",  "list",      "available",
      "connection", "lost",  "request",  "client",    "slow",    "reply",
      "late",   "removing",  "respond",  "responding", "rc",     "status",
      "misc",   "addr",      "address",  "bank",      "syndrome"};
  return kStopwords;
}

namespace {

bool is_counted_term(const std::string& token) {
  return !log_stopwords().contains(token);
}

}  // namespace

std::vector<TermCount> word_count(sparklite::Engine& engine,
                                  const cassalite::Cluster& cluster,
                                  const Context& ctx, std::size_t top_k) {
  // Scan + tokenize + map-side combine fuse into the shuffle's map stage;
  // the per-bucket term merges parallelize on the collect() stage.
  engine.set_next_stage_label("wordcount:scan+tokenize+combine");
  auto words = event_dataset(engine, cluster, ctx)
                   .flat_map([](const titanlog::EventRecord& e) {
                     std::vector<std::pair<std::string, std::int64_t>> out;
                     for (auto& token : tokenize(e.message)) {
                       if (is_counted_term(token)) {
                         out.emplace_back(std::move(token), e.count);
                       }
                     }
                     return out;
                   });
  auto reduced = sparklite::reduce_by_key(
      words, [](std::int64_t a, std::int64_t b) { return a + b; });
  engine.set_next_stage_label("wordcount:merge");
  auto counts = reduced.collect();
  std::sort(counts.begin(), counts.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<TermCount> out;
  out.reserve(std::min(top_k, counts.size()));
  for (std::size_t i = 0; i < counts.size() && i < top_k; ++i) {
    out.push_back(TermCount{std::move(counts[i].first), counts[i].second});
  }
  return out;
}

std::vector<TermCount> word_count_messages(
    const std::vector<std::string>& messages, std::size_t top_k) {
  std::unordered_map<std::string, std::int64_t> counts;
  for (const auto& m : messages) {
    for (auto& token : tokenize(m)) {
      if (is_counted_term(token)) counts[std::move(token)] += 1;
    }
  }
  std::vector<TermCount> out;
  out.reserve(counts.size());
  for (auto& [term, count] : counts) out.push_back(TermCount{term, count});
  std::sort(out.begin(), out.end(), [](const TermCount& a, const TermCount& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.term < b.term;
  });
  if (out.size() > top_k) out.resize(top_k);
  return out;
}

std::vector<TfIdfTerm> tf_idf_top_terms(
    const std::vector<std::vector<std::string>>& documents,
    std::size_t top_k) {
  const std::size_t n_docs = documents.size();
  if (n_docs == 0) return {};
  // Document frequency per term.
  std::unordered_map<std::string, std::int64_t> df;
  std::vector<std::unordered_map<std::string, std::int64_t>> tf(n_docs);
  for (std::size_t d = 0; d < n_docs; ++d) {
    for (const auto& term : documents[d]) {
      if (!is_counted_term(term)) continue;
      if (tf[d][term]++ == 0) df[term]++;
    }
  }
  // Best score per term across documents (a term's bubble size).
  std::unordered_map<std::string, double> best;
  for (std::size_t d = 0; d < n_docs; ++d) {
    if (documents[d].empty()) continue;
    const auto doc_len = static_cast<double>(documents[d].size());
    for (const auto& [term, count] : tf[d]) {
      const double tf_v = static_cast<double>(count) / doc_len;
      const double idf_v =
          std::log(static_cast<double>(n_docs) /
                   (1.0 + static_cast<double>(df[term]))) + 1.0;
      const double score = tf_v * idf_v;
      auto [it, inserted] = best.try_emplace(term, score);
      if (!inserted) it->second = std::max(it->second, score);
    }
  }
  std::vector<TfIdfTerm> out;
  out.reserve(best.size());
  for (auto& [term, score] : best) out.push_back(TfIdfTerm{term, score});
  std::sort(out.begin(), out.end(), [](const TfIdfTerm& a, const TfIdfTerm& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.term < b.term;
  });
  if (out.size() > top_k) out.resize(top_k);
  return out;
}

std::vector<TfIdfTerm> storm_signature(sparklite::Engine& engine,
                                       const cassalite::Cluster& cluster,
                                       const Context& ctx,
                                       std::int64_t bucket_seconds,
                                       std::size_t top_k) {
  HPCLA_CHECK_MSG(bucket_seconds > 0, "bucket size must be positive");
  auto events = fetch_events(engine, cluster, ctx);
  const auto buckets = static_cast<std::size_t>(
      (ctx.window.duration() + bucket_seconds - 1) / bucket_seconds);
  std::vector<std::vector<std::string>> documents(buckets);
  std::vector<std::size_t> volume(buckets, 0);
  for (const auto& e : events) {
    const auto b =
        static_cast<std::size_t>((e.ts - ctx.window.begin) / bucket_seconds);
    auto tokens = tokenize(e.message);
    volume[b] += 1;
    documents[b].insert(documents[b].end(),
                        std::make_move_iterator(tokens.begin()),
                        std::make_move_iterator(tokens.end()));
  }
  // Score the highest-volume bucket against the corpus.
  const auto peak = static_cast<std::size_t>(
      std::max_element(volume.begin(), volume.end()) - volume.begin());
  auto all_terms = tf_idf_top_terms(documents, documents.size() * top_k);
  // Keep only terms present in the peak bucket, preserving score order.
  std::set<std::string> peak_terms(documents[peak].begin(),
                                   documents[peak].end());
  std::vector<TfIdfTerm> out;
  for (auto& t : all_terms) {
    if (peak_terms.contains(t.term)) {
      out.push_back(std::move(t));
      if (out.size() >= top_k) break;
    }
  }
  return out;
}

}  // namespace hpcla::analytics
