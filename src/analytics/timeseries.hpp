// Time-series extraction and correlation between event streams.
//
// The data model is "time series friendly" by design (paper §II-A); the
// temporal map and the event-correlation analytics (paper §III-C,
// Fig 7 top) work on binned occurrence counts.
#pragma once

#include <cstdint>
#include <vector>

#include "analytics/context.hpp"
#include "analytics/queries.hpp"

namespace hpcla::analytics {

/// Bins event occurrence counts into fixed windows across `range`.
/// The last partial bin is included. Counts are weighted by
/// EventRecord::count (coalesced occurrences).
std::vector<double> bin_series(const std::vector<titanlog::EventRecord>& events,
                               const TimeRange& range,
                               std::int64_t bin_seconds);

/// Convenience: fetch + bin one event type's series over a context window.
std::vector<double> event_series(sparklite::Engine& engine,
                                 const cassalite::Cluster& cluster,
                                 const Context& ctx, titanlog::EventType type,
                                 std::int64_t bin_seconds);

/// Normalized cross-correlation of two equal-length series at lags
/// -max_lag..+max_lag (in bins). Positive lag means `a` leads `b`.
/// result[max_lag + lag] = corr(a[t], b[t+lag]).
std::vector<double> cross_correlation(const std::vector<double>& a,
                                      const std::vector<double>& b,
                                      std::size_t max_lag);

/// Index of the lag with maximum correlation, as a signed lag in bins.
std::int64_t peak_lag(const std::vector<double>& correlation,
                      std::size_t max_lag);

}  // namespace hpcla::analytics
