#include "analytics/assoc.hpp"

#include <algorithm>
#include <array>
#include <map>

namespace hpcla::analytics {

using titanlog::EventType;
using titanlog::kEventTypeCount;

Json AssocRule::to_json() const {
  Json j = Json::object();
  j["lhs"] = std::string(titanlog::event_id(lhs));
  j["rhs"] = std::string(titanlog::event_id(rhs));
  j["pair_count"] = pair_count;
  j["support"] = support;
  j["confidence"] = confidence;
  j["lift"] = lift;
  return j;
}

std::vector<AssocRule> mine_association_rules(
    const std::vector<titanlog::EventRecord>& events,
    const AssocConfig& config) {
  HPCLA_CHECK_MSG(config.bucket_seconds > 0, "bucket_seconds must be > 0");

  // Build baskets: (node, bucket) -> bitmask of present types.
  std::map<std::pair<topo::NodeId, std::int64_t>, std::uint32_t> baskets;
  for (const auto& e : events) {
    const std::int64_t bucket = e.ts / config.bucket_seconds -
                                (e.ts % config.bucket_seconds < 0 ? 1 : 0);
    baskets[{e.node, bucket}] |=
        1u << static_cast<unsigned>(static_cast<std::uint8_t>(e.type));
  }
  const auto n = static_cast<double>(baskets.size());
  if (baskets.empty()) return {};

  // Singleton and pair counts (9 types -> tiny dense tables).
  std::array<std::int64_t, kEventTypeCount> single{};
  std::array<std::array<std::int64_t, kEventTypeCount>, kEventTypeCount>
      pair{};
  for (const auto& [_, mask] : baskets) {
    for (std::size_t a = 0; a < kEventTypeCount; ++a) {
      if (!(mask & (1u << a))) continue;
      ++single[a];
      for (std::size_t b = 0; b < kEventTypeCount; ++b) {
        if (b != a && (mask & (1u << b))) ++pair[a][b];
      }
    }
  }

  std::vector<AssocRule> out;
  for (std::size_t a = 0; a < kEventTypeCount; ++a) {
    if (single[a] == 0) continue;
    for (std::size_t b = 0; b < kEventTypeCount; ++b) {
      if (a == b || pair[a][b] == 0) continue;
      AssocRule rule;
      rule.lhs = static_cast<EventType>(a);
      rule.rhs = static_cast<EventType>(b);
      rule.pair_count = pair[a][b];
      rule.support = static_cast<double>(pair[a][b]) / n;
      rule.confidence =
          static_cast<double>(pair[a][b]) / static_cast<double>(single[a]);
      const double p_rhs = static_cast<double>(single[b]) / n;
      rule.lift = p_rhs > 0.0 ? rule.confidence / p_rhs : 0.0;
      if (rule.support >= config.min_support &&
          rule.confidence >= config.min_confidence) {
        out.push_back(rule);
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const AssocRule& x, const AssocRule& y) {
    if (x.lift != y.lift) return x.lift > y.lift;
    if (x.confidence != y.confidence) return x.confidence > y.confidence;
    return x.pair_count > y.pair_count;
  });
  return out;
}

std::vector<AssocRule> mine_association_rules(sparklite::Engine& engine,
                                              const cassalite::Cluster& cluster,
                                              const Context& ctx,
                                              const AssocConfig& config) {
  return mine_association_rules(fetch_events(engine, cluster, ctx), config);
}

}  // namespace hpcla::analytics
