#include "analytics/transfer_entropy.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

namespace hpcla::analytics {

std::vector<int> quantize(const std::vector<double>& series, int levels) {
  HPCLA_CHECK_MSG(levels >= 2, "quantization needs >= 2 levels");
  double max_v = 0.0;
  for (double v : series) max_v = std::max(max_v, v);
  std::vector<int> out(series.size(), 0);
  if (max_v <= 0.0) return out;
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double frac = std::clamp(series[i] / max_v, 0.0, 1.0);
    int level = static_cast<int>(frac * levels);
    out[i] = std::min(level, levels - 1);
  }
  return out;
}

double transfer_entropy_symbols(const std::vector<int>& x,
                                const std::vector<int>& y, int levels) {
  HPCLA_CHECK_MSG(x.size() == y.size(), "series length mismatch");
  if (x.size() < 2) return 0.0;
  const std::size_t n = x.size() - 1;  // transitions

  // Joint counts over (y_next, y_now, x_now) and marginals.
  std::map<std::tuple<int, int, int>, double> p_yyx;
  std::map<std::pair<int, int>, double> p_yy;   // (y_next, y_now)
  std::map<std::pair<int, int>, double> p_yx;   // (y_now, x_now)
  std::map<int, double> p_y;                    // y_now
  for (std::size_t t = 0; t < n; ++t) {
    const int yn = y[t + 1];
    const int yc = y[t];
    const int xc = x[t];
    p_yyx[{yn, yc, xc}] += 1.0;
    p_yy[{yn, yc}] += 1.0;
    p_yx[{yc, xc}] += 1.0;
    p_y[yc] += 1.0;
  }
  const double total = static_cast<double>(n);
  double te = 0.0;
  for (const auto& [key, c_yyx] : p_yyx) {
    const auto [yn, yc, xc] = key;
    const double joint = c_yyx / total;
    const double cond_full = c_yyx / p_yx[{yc, xc}];        // p(yn | yc, xc)
    const double cond_hist = p_yy[{yn, yc}] / p_y[yc];      // p(yn | yc)
    if (cond_full > 0.0 && cond_hist > 0.0) {
      te += joint * std::log2(cond_full / cond_hist);
    }
  }
  (void)levels;
  return std::max(te, 0.0);  // clamp tiny negative round-off
}

double transfer_entropy(const std::vector<double>& x,
                        const std::vector<double>& y, int levels) {
  return transfer_entropy_symbols(quantize(x, levels), quantize(y, levels),
                                  levels);
}

TransferEntropyResult transfer_entropy_pair(const std::vector<double>& x,
                                            const std::vector<double>& y,
                                            int levels) {
  TransferEntropyResult r;
  r.te_xy = transfer_entropy(x, y, levels);
  r.te_yx = transfer_entropy(y, x, levels);
  return r;
}

std::vector<double> transfer_entropy_profile(const std::vector<double>& x,
                                             const std::vector<double>& y,
                                             std::size_t max_shift,
                                             int levels) {
  std::vector<double> out;
  out.reserve(max_shift + 1);
  const auto xs = quantize(x, levels);
  const auto ys = quantize(y, levels);
  for (std::size_t s = 0; s <= max_shift; ++s) {
    if (s >= xs.size()) {
      out.push_back(0.0);
      continue;
    }
    // Delay x by s: pair x[t - s] with y[t].
    std::vector<int> xd(xs.begin(), xs.end() - static_cast<std::ptrdiff_t>(s));
    std::vector<int> yd(ys.begin() + static_cast<std::ptrdiff_t>(s), ys.end());
    out.push_back(transfer_entropy_symbols(xd, yd, levels));
  }
  return out;
}

}  // namespace hpcla::analytics
