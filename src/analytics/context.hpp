// Query contexts (paper §III-B).
//
// "Users interact with the framework by creating a *context*. A context is
//  selected on the basis of event type, application, location, user, time
//  period, or a combination of these, over which the system status is
//  defined and examined."
//
// A Context is the common input to every analytic: empty dimension = no
// restriction. JSON codecs implement the frontend protocol shape.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/json.hpp"
#include "titanlog/events.hpp"
#include "topo/cname.hpp"

namespace hpcla::analytics {

struct Context {
  /// Event types of interest; empty = all types.
  std::vector<titanlog::EventType> types;
  /// Location restriction (any level); nullopt = whole system.
  std::optional<topo::Coord> location;
  /// User restriction; empty = all users.
  std::vector<std::string> users;
  /// Application restriction; empty = all applications.
  std::vector<std::string> apps;
  /// Time period (half-open); required.
  TimeRange window;

  [[nodiscard]] bool wants_type(titanlog::EventType t) const noexcept {
    if (types.empty()) return true;
    for (auto x : types) {
      if (x == t) return true;
    }
    return false;
  }

  [[nodiscard]] bool wants_node(topo::NodeId node) const {
    if (!location) return true;
    return topo::contains(*location, topo::coord_of(node));
  }

  [[nodiscard]] bool wants_user(const std::string& user) const noexcept {
    if (users.empty()) return true;
    for (const auto& u : users) {
      if (u == user) return true;
    }
    return false;
  }

  [[nodiscard]] bool wants_app(const std::string& app) const noexcept {
    if (apps.empty()) return true;
    for (const auto& a : apps) {
      if (a == app) return true;
    }
    return false;
  }

  /// JSON shape:
  /// {"window":{"begin":..,"end":..}, "types":["MCE",...],
  ///  "location":"c3-17c1", "users":[...], "apps":[...]}
  [[nodiscard]] Json to_json() const;
  static Result<Context> from_json(const Json& j);
};

}  // namespace hpcla::analytics
