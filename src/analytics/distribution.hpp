// Event-occurrence distributions (paper Fig 5 bottom).
//
// "users can also get distributions of the event occurrences over
//  cabinets, blades, nodes, and applications" — grouped counts over a
// context, computed as a sparklite count-by-key.
#pragma once

#include <string>
#include <vector>

#include "analytics/context.hpp"
#include "analytics/queries.hpp"

namespace hpcla::analytics {

enum class GroupBy {
  kCabinet,
  kCage,
  kBlade,
  kNode,
  kEventType,
  kApplication,  ///< the application running on the node at event time
  kUser,         ///< the user of that application
};

Result<GroupBy> group_by_from_string(std::string_view name);
std::string_view group_by_name(GroupBy g) noexcept;

struct DistributionEntry {
  std::string label;      ///< e.g. "c3-17", "c3-17c1s5", "LAMMPS"
  std::int64_t count = 0;
};

/// Grouped occurrence counts over the context, descending by count;
/// groups with zero occurrences are omitted. For kApplication/kUser,
/// events on nodes with no running application fall into "(idle)".
std::vector<DistributionEntry> distribution(sparklite::Engine& engine,
                                            const cassalite::Cluster& cluster,
                                            const Context& ctx, GroupBy group);

/// Hourly counts across the window (the temporal-map histogram).
std::vector<std::pair<std::int64_t, std::int64_t>> hourly_distribution(
    sparklite::Engine& engine, const cassalite::Cluster& cluster,
    const Context& ctx);

/// Per-group quantiles of the coalesced burst size (EventRecord::count):
/// how bursty each cabinet/node/type is, not just how many events it saw.
struct BurstPercentiles {
  std::string label;
  std::uint64_t events = 0;  ///< records the sketch summarized
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Bounded-memory burst-size percentiles per group, descending by event
/// count. Each partition folds its records into one GK sketch per label
/// (common/quantile_sketch.hpp) and the shuffle merges sketches, so no
/// stage ever buffers raw samples; results carry the sketch's ±epsilon
/// rank-error guarantee.
std::vector<BurstPercentiles> burst_percentiles(
    sparklite::Engine& engine, const cassalite::Cluster& cluster,
    const Context& ctx, GroupBy group, double epsilon = 0.02);

}  // namespace hpcla::analytics
