#include "analytics/dtree.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

namespace hpcla::analytics {

namespace {

double gini(std::size_t pos, std::size_t total) {
  if (total == 0) return 0.0;
  const double p = static_cast<double>(pos) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

struct SplitChoice {
  int feature = -1;
  double threshold = 0.0;
  double impurity = 1.0;  ///< weighted child impurity
};

SplitChoice best_split(const std::vector<Sample>& samples,
                       const std::vector<std::size_t>& indices,
                       std::size_t min_leaf) {
  SplitChoice best;
  if (indices.empty()) return best;
  const std::size_t arity = samples[indices.front()].features.size();
  const std::size_t n = indices.size();

  std::vector<std::size_t> order(indices);
  for (std::size_t f = 0; f < arity; ++f) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return samples[a].features[f] < samples[b].features[f];
    });
    // Prefix positives; candidate thresholds between distinct values.
    std::size_t pos_left = 0;
    std::size_t pos_total = 0;
    for (const auto i : order) pos_total += samples[i].label ? 1 : 0;
    for (std::size_t k = 0; k + 1 < n; ++k) {
      pos_left += samples[order[k]].label ? 1 : 0;
      const double v = samples[order[k]].features[f];
      const double next = samples[order[k + 1]].features[f];
      if (v == next) continue;  // no boundary here
      const std::size_t left = k + 1;
      const std::size_t right = n - left;
      if (left < min_leaf || right < min_leaf) continue;
      const double impurity =
          (static_cast<double>(left) * gini(pos_left, left) +
           static_cast<double>(right) * gini(pos_total - pos_left, right)) /
          static_cast<double>(n);
      if (impurity < best.impurity) {
        best.feature = static_cast<int>(f);
        best.threshold = (v + next) / 2.0;
        best.impurity = impurity;
      }
    }
  }
  return best;
}

}  // namespace

std::unique_ptr<DecisionTree::Node> DecisionTree::build(
    const std::vector<Sample>& samples, std::vector<std::size_t> indices,
    const DTreeConfig& config, int depth) {
  auto node = std::make_unique<Node>();
  std::size_t pos = 0;
  for (const auto i : indices) pos += samples[i].label ? 1 : 0;
  node->prob = indices.empty()
                   ? 0.0
                   : static_cast<double>(pos) /
                         static_cast<double>(indices.size());

  const double purity = std::max(node->prob, 1.0 - node->prob);
  if (depth >= config.max_depth || indices.size() < 2 * config.min_samples_leaf ||
      purity >= config.purity_stop) {
    return node;  // leaf
  }
  const SplitChoice split =
      best_split(samples, indices, config.min_samples_leaf);
  if (split.feature < 0) return node;  // no admissible split
  // Only split if it actually reduces impurity.
  if (split.impurity >= gini(pos, indices.size()) - 1e-12) return node;

  std::vector<std::size_t> left;
  std::vector<std::size_t> right;
  for (const auto i : indices) {
    (samples[i].features[static_cast<std::size_t>(split.feature)] <
             split.threshold
         ? left
         : right)
        .push_back(i);
  }
  node->feature = split.feature;
  node->threshold = split.threshold;
  node->left = build(samples, std::move(left), config, depth + 1);
  node->right = build(samples, std::move(right), config, depth + 1);
  return node;
}

DecisionTree DecisionTree::train(const std::vector<Sample>& samples,
                                 std::vector<std::string> feature_names,
                                 DTreeConfig config) {
  HPCLA_CHECK_MSG(!samples.empty(), "cannot train on an empty set");
  for (const auto& s : samples) {
    HPCLA_CHECK_MSG(s.features.size() == feature_names.size(),
                    "feature arity mismatch");
  }
  DecisionTree tree;
  tree.feature_names_ = std::move(feature_names);
  std::vector<std::size_t> indices(samples.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  tree.root_ = build(samples, std::move(indices), config, 0);
  return tree;
}

double DecisionTree::predict_prob(const std::vector<double>& features) const {
  HPCLA_CHECK_MSG(root_ != nullptr, "tree not trained");
  HPCLA_CHECK_MSG(features.size() == feature_names_.size(),
                  "feature arity mismatch");
  const Node* node = root_.get();
  while (node->feature >= 0) {
    node = features[static_cast<std::size_t>(node->feature)] < node->threshold
               ? node->left.get()
               : node->right.get();
  }
  return node->prob;
}

int DecisionTree::node_depth(const Node& node) {
  if (node.feature < 0) return 0;
  return 1 + std::max(node_depth(*node.left), node_depth(*node.right));
}

std::size_t DecisionTree::node_leaves(const Node& node) {
  if (node.feature < 0) return 1;
  return node_leaves(*node.left) + node_leaves(*node.right);
}

int DecisionTree::depth() const noexcept { return root_ ? node_depth(*root_) : 0; }

std::size_t DecisionTree::leaf_count() const noexcept {
  return root_ ? node_leaves(*root_) : 0;
}

void DecisionTree::render_node(const Node& node,
                               const std::vector<std::string>& names,
                               int depth, std::string& out) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  if (node.feature < 0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%sleaf p(fail)=%.3f\n", indent.c_str(),
                  node.prob);
    out += buf;
    return;
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%sif %s < %.4g:\n", indent.c_str(),
                names[static_cast<std::size_t>(node.feature)].c_str(),
                node.threshold);
  out += buf;
  render_node(*node.left, names, depth + 1, out);
  std::snprintf(buf, sizeof(buf), "%selse:\n", indent.c_str());
  out += buf;
  render_node(*node.right, names, depth + 1, out);
}

std::string DecisionTree::render() const {
  std::string out;
  if (root_) render_node(*root_, feature_names_, 0, out);
  return out;
}

DecisionTree::Eval DecisionTree::evaluate(
    const std::vector<Sample>& samples) const {
  Eval e;
  for (const auto& s : samples) {
    const bool pred = predict(s.features);
    if (pred && s.label) ++e.tp;
    else if (pred && !s.label) ++e.fp;
    else if (!pred && !s.label) ++e.tn;
    else ++e.fn;
  }
  return e;
}

const std::vector<std::string>& job_failure_feature_names() {
  static const std::vector<std::string> kNames = {
      "log2_nodes", "duration_hours", "fatal_events_on_nodes",
      "nonfatal_events_on_nodes"};
  return kNames;
}

std::vector<Sample> job_failure_samples(sparklite::Engine& engine,
                                        const cassalite::Cluster& cluster,
                                        const Context& ctx) {
  auto jobs = fetch_jobs(engine, cluster, ctx);
  auto events = fetch_events(engine, cluster, ctx);

  // Per-node sorted event timestamps, split fatal / non-fatal.
  std::map<topo::NodeId, std::vector<UnixSeconds>> fatal;
  std::map<topo::NodeId, std::vector<UnixSeconds>> nonfatal;
  for (const auto& e : events) {
    const bool is_fatal = titanlog::event_info(e.type).severity ==
                          titanlog::Severity::kFatal ||
                          e.type == titanlog::EventType::kMachineCheck ||
                          e.type == titanlog::EventType::kGpuFailure;
    (is_fatal ? fatal : nonfatal)[e.node].push_back(e.ts);
  }
  for (auto& [_, v] : fatal) std::sort(v.begin(), v.end());
  for (auto& [_, v] : nonfatal) std::sort(v.begin(), v.end());

  const auto count_in = [](const std::map<topo::NodeId,
                                          std::vector<UnixSeconds>>& index,
                           topo::NodeId node, UnixSeconds a, UnixSeconds b) {
    const auto it = index.find(node);
    if (it == index.end()) return std::ptrdiff_t{0};
    const auto lo = std::lower_bound(it->second.begin(), it->second.end(), a);
    const auto hi = std::upper_bound(it->second.begin(), it->second.end(), b);
    return hi - lo;
  };

  std::vector<Sample> out;
  out.reserve(jobs.size());
  for (const auto& job : jobs) {
    Sample s;
    std::ptrdiff_t fatal_hits = 0;
    std::ptrdiff_t nonfatal_hits = 0;
    for (const auto node : job.nodes) {
      fatal_hits += count_in(fatal, node, job.start, job.end);
      nonfatal_hits += count_in(nonfatal, node, job.start, job.end);
    }
    s.features = {
        std::log2(static_cast<double>(std::max<std::size_t>(job.nodes.size(), 1))),
        static_cast<double>(job.duration()) / kSecondsPerHour,
        static_cast<double>(fatal_hits),
        static_cast<double>(nonfatal_hits),
    };
    s.label = job.failed();
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace hpcla::analytics
