// Transfer entropy between event time series (paper Fig 7 top).
//
// "the investigation of correlation between two event occurrences within a
//  selected time interval, which can provide a causal relationship between
//  the two, is also processed by the big data processing unit. Fig 7 (Top)
//  shows the transfer entropy plot of two events measured within a
//  selected time window."
//
// TE(X->Y) = sum p(y_{t+1}, y_t, x_t) log2[ p(y_{t+1}|y_t, x_t) /
//                                           p(y_{t+1}|y_t) ]
// estimated with the plug-in estimator over quantized series (history
// length 1). TE is directional: for a genuine X-drives-Y coupling,
// TE(X->Y) >> TE(Y->X).
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"

namespace hpcla::analytics {

/// Quantizes a series into `levels` symbols by equal-width bucketing over
/// [0, max]; with levels == 2 this is presence/absence.
std::vector<int> quantize(const std::vector<double>& series, int levels);

/// Transfer entropy TE(X->Y) in bits over pre-quantized symbol series.
/// Series must be the same length (>= 2 samples).
double transfer_entropy_symbols(const std::vector<int>& x,
                                const std::vector<int>& y, int levels);

/// Transfer entropy between raw binned series (quantizes internally).
double transfer_entropy(const std::vector<double>& x,
                        const std::vector<double>& y, int levels = 2);

/// Both directions at once — the decision pair the Fig 7 plot shows.
struct TransferEntropyResult {
  double te_xy = 0.0;  ///< TE(X -> Y)
  double te_yx = 0.0;  ///< TE(Y -> X)
  /// Net directionality: positive = X drives Y.
  [[nodiscard]] double net() const noexcept { return te_xy - te_yx; }
};
TransferEntropyResult transfer_entropy_pair(const std::vector<double>& x,
                                            const std::vector<double>& y,
                                            int levels = 2);

/// TE(X->Y) profile with X shifted by 0..max_shift bins — peaks at the
/// true coupling lag (in bins). profile[s] uses x delayed by s bins.
std::vector<double> transfer_entropy_profile(const std::vector<double>& x,
                                             const std::vector<double>& y,
                                             std::size_t max_shift,
                                             int levels = 2);

}  // namespace hpcla::analytics
