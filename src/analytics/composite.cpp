#include "analytics/composite.hpp"

#include <algorithm>
#include <map>

namespace hpcla::analytics {

using titanlog::EventRecord;
using titanlog::EventType;

std::string_view match_scope_name(MatchScope s) noexcept {
  switch (s) {
    case MatchScope::kNode: return "node";
    case MatchScope::kBlade: return "blade";
    case MatchScope::kCabinet: return "cabinet";
    case MatchScope::kSystem: return "system";
  }
  return "?";
}

Result<MatchScope> match_scope_from_string(std::string_view name) {
  if (name == "node") return MatchScope::kNode;
  if (name == "blade") return MatchScope::kBlade;
  if (name == "cabinet") return MatchScope::kCabinet;
  if (name == "system") return MatchScope::kSystem;
  return invalid_argument("unknown match scope '" + std::string(name) + "'");
}

namespace {

std::int64_t scope_key_of(const EventRecord& e, MatchScope scope) {
  switch (scope) {
    case MatchScope::kNode: return e.node;
    case MatchScope::kBlade: return topo::blade_of(e.node);
    case MatchScope::kCabinet: return topo::cabinet_of(e.node);
    case MatchScope::kSystem: return 0;
  }
  return 0;
}

/// In-flight partial match within one scope.
struct Partial {
  std::size_t next_step = 1;  ///< index of the step we are waiting for
  UnixSeconds last_ts = 0;
  UnixSeconds start_ts = 0;
  std::vector<std::pair<UnixSeconds, std::int64_t>> step_events;
};

}  // namespace

std::vector<CompositeMatch> detect_composites(
    const std::vector<EventRecord>& events, const CompositeRule& rule) {
  HPCLA_CHECK_MSG(rule.steps.size() >= 2,
                  "composite rule needs at least two steps");
  std::vector<CompositeMatch> out;
  // Active partial matches per scope key (at most a handful each: a new
  // first-step event only opens a partial when none is already waiting —
  // greedy earliest-match).
  std::map<std::int64_t, std::vector<Partial>> active;

  for (const auto& e : events) {
    const std::int64_t key = scope_key_of(e, rule.scope);
    auto& partials = active[key];

    // 1) Try to advance the earliest eligible partial waiting on this type.
    bool consumed = false;
    for (auto it = partials.begin(); it != partials.end();) {
      Partial& p = *it;
      const CompositeStep& want = rule.steps[p.next_step];
      if (e.ts - p.last_ts > want.max_gap_seconds) {
        // Expired: drop.
        it = partials.erase(it);
        continue;
      }
      if (!consumed && e.type == want.type) {
        p.step_events.emplace_back(e.ts, e.seq);
        p.last_ts = e.ts;
        ++p.next_step;
        consumed = true;
        if (p.next_step == rule.steps.size()) {
          CompositeMatch m;
          m.rule = rule.name;
          m.scope_key = key;
          m.last_node = e.node;
          m.start_ts = p.start_ts;
          m.end_ts = e.ts;
          m.step_events = std::move(p.step_events);
          out.push_back(std::move(m));
          it = partials.erase(it);
          continue;
        }
      }
      ++it;
    }

    // 2) A first-step event opens a new partial (even if it also advanced
    //    another partial matching the same type elsewhere in the sequence —
    //    consumed events are not reused, so skip in that case).
    if (!consumed && e.type == rule.steps.front().type) {
      Partial p;
      p.start_ts = e.ts;
      p.last_ts = e.ts;
      p.step_events.emplace_back(e.ts, e.seq);
      partials.push_back(std::move(p));
    }
  }
  return out;
}

std::vector<CompositeMatch> detect_composites(
    sparklite::Engine& engine, const cassalite::Cluster& cluster,
    const Context& ctx, const std::vector<CompositeRule>& rules) {
  // One fetch serves all rules; restrict to the union of referenced types.
  Context fetch_ctx = ctx;
  fetch_ctx.types.clear();
  for (const auto& rule : rules) {
    for (const auto& step : rule.steps) {
      if (std::find(fetch_ctx.types.begin(), fetch_ctx.types.end(),
                    step.type) == fetch_ctx.types.end()) {
        fetch_ctx.types.push_back(step.type);
      }
    }
  }
  auto events = fetch_events(engine, cluster, fetch_ctx);
  std::vector<CompositeMatch> out;
  for (const auto& rule : rules) {
    auto matches = detect_composites(events, rule);
    out.insert(out.end(), std::make_move_iterator(matches.begin()),
               std::make_move_iterator(matches.end()));
  }
  std::sort(out.begin(), out.end(),
            [](const CompositeMatch& a, const CompositeMatch& b) {
              if (a.end_ts != b.end_ts) return a.end_ts < b.end_ts;
              return a.rule < b.rule;
            });
  return out;
}

std::vector<CompositeRule> default_composite_rules() {
  std::vector<CompositeRule> rules;
  // GPU memory error escalating to a GPU failure on the same node.
  rules.push_back(CompositeRule{
      "gpu_dbe_then_failure",
      MatchScope::kNode,
      {{EventType::kGpuMemoryError, 0}, {EventType::kGpuFailure, 600}}});
  // Network fault followed by filesystem trouble anywhere (the classic
  // propagation chain of §III-C).
  rules.push_back(CompositeRule{
      "network_then_lustre",
      MatchScope::kNode,
      {{EventType::kNetworkError, 0}, {EventType::kLustreError, 120}}});
  // Memory errors escalating to a machine check and then a panic.
  rules.push_back(CompositeRule{
      "ecc_mce_panic",
      MatchScope::kNode,
      {{EventType::kMemoryEcc, 0},
       {EventType::kMachineCheck, 1800},
       {EventType::kKernelPanic, 1800}}});
  return rules;
}

}  // namespace hpcla::analytics
