#include "analytics/queries.hpp"

#include <algorithm>
#include <map>

namespace hpcla::analytics {

using model::decode_app_row;
using model::decode_event_location_row;
using model::decode_event_time_row;
using titanlog::EventRecord;
using titanlog::EventType;
using titanlog::JobRecord;

ScanPlan plan_event_scan(const Context& ctx) {
  const std::int64_t hours = ctx.window.last_hour() - ctx.window.first_hour() + 1;
  const std::size_t type_count =
      ctx.types.empty() ? titanlog::kEventTypeCount : ctx.types.size();
  const std::size_t time_keys = static_cast<std::size_t>(hours) * type_count;
  if (!ctx.location) return ScanPlan::kByTime;
  const std::size_t nodes = topo::titan().nodes_in(*ctx.location).size();
  const std::size_t location_keys = static_cast<std::size_t>(hours) * nodes;
  return location_keys < time_keys ? ScanPlan::kByLocation : ScanPlan::kByTime;
}

std::vector<std::string> event_partition_keys(const Context& ctx,
                                              ScanPlan plan) {
  std::vector<std::string> keys;
  const std::int64_t h0 = ctx.window.first_hour();
  const std::int64_t h1 = ctx.window.last_hour();
  if (plan == ScanPlan::kByTime) {
    std::vector<EventType> types(ctx.types);
    if (types.empty()) {
      const auto all = titanlog::all_event_types();
      types.assign(all.begin(), all.end());
    }
    keys.reserve(static_cast<std::size_t>(h1 - h0 + 1) * types.size());
    for (std::int64_t h = h0; h <= h1; ++h) {
      for (auto t : types) keys.push_back(model::event_time_key(h, t));
    }
  } else {
    const auto nodes = topo::titan().nodes_in(
        ctx.location.value_or(topo::Coord{}));
    keys.reserve(static_cast<std::size_t>(h1 - h0 + 1) * nodes.size());
    for (std::int64_t h = h0; h <= h1; ++h) {
      for (auto n : nodes) keys.push_back(model::event_location_key(h, n));
    }
  }
  return keys;
}

sparklite::Dataset<EventRecord> event_dataset(
    sparklite::Engine& engine, const cassalite::Cluster& cluster,
    const Context& ctx) {
  const ScanPlan plan = plan_event_scan(ctx);
  auto keys = event_partition_keys(ctx, plan);
  auto scan = sparklite::scan_table_keyed(
      engine, cluster,
      std::string(plan == ScanPlan::kByTime ? model::kEventByTime
                                            : model::kEventByLocation),
      std::move(keys));
  // Decode + context filter inside the scan tasks.
  Context filter = ctx;
  return scan.flat_map(
      [plan, filter](const std::pair<std::string, cassalite::Row>& kv) {
        std::vector<EventRecord> out;
        auto decoded = plan == ScanPlan::kByTime
                           ? decode_event_time_row(kv.first, kv.second)
                           : decode_event_location_row(kv.first, kv.second);
        if (!decoded.is_ok()) return out;  // skip corrupt rows
        EventRecord& e = decoded.value();
        if (!filter.window.contains(e.ts)) return out;
        if (!filter.wants_type(e.type)) return out;
        if (!filter.wants_node(e.node)) return out;
        out.push_back(std::move(e));
        return out;
      });
}

std::vector<EventRecord> fetch_events(sparklite::Engine& engine,
                                      const cassalite::Cluster& cluster,
                                      const Context& ctx) {
  auto events = event_dataset(engine, cluster, ctx).collect();
  std::sort(events.begin(), events.end(),
            [](const EventRecord& a, const EventRecord& b) {
              if (a.ts != b.ts) return a.ts < b.ts;
              return a.seq < b.seq;
            });
  return events;
}

std::vector<JobRecord> fetch_jobs(sparklite::Engine& engine,
                                  const cassalite::Cluster& cluster,
                                  const Context& ctx,
                                  std::int64_t lookback_hours) {
  // Planner: a user/app restriction makes the per-user / per-app tables
  // the cheaper access path; otherwise scan start-hour partitions.
  std::string table;
  std::vector<std::string> keys;
  if (!ctx.users.empty()) {
    table = std::string(model::kAppByUser);
    for (const auto& u : ctx.users) keys.push_back(model::app_user_key(u));
  } else if (!ctx.apps.empty()) {
    table = std::string(model::kAppByApp);
    for (const auto& a : ctx.apps) keys.push_back(model::app_app_key(a));
  } else {
    table = std::string(model::kAppByTime);
    const std::int64_t h0 = ctx.window.first_hour() - lookback_hours;
    const std::int64_t h1 = ctx.window.last_hour();
    for (std::int64_t h = h0; h <= h1; ++h) {
      keys.push_back(model::app_time_key(h));
    }
  }

  Context filter = ctx;
  auto jobs =
      sparklite::scan_table_keyed(engine, cluster, table, std::move(keys))
          .flat_map([filter](const std::pair<std::string, cassalite::Row>& kv) {
            std::vector<JobRecord> out;
            auto decoded = decode_app_row(kv.second);
            if (!decoded.is_ok()) return out;
            JobRecord& job = decoded.value();
            // Overlap with the window.
            if (job.end <= filter.window.begin ||
                job.start >= filter.window.end) {
              return out;
            }
            if (!filter.wants_user(job.user)) return out;
            if (!filter.wants_app(job.app_name)) return out;
            if (filter.location) {
              bool touches = false;
              for (const auto n : job.nodes) {
                if (filter.wants_node(n)) {
                  touches = true;
                  break;
                }
              }
              if (!touches) return out;
            }
            out.push_back(std::move(job));
            return out;
          })
          .collect();
  // Dedup (user/app scans may both be consulted in future plans) and order.
  std::sort(jobs.begin(), jobs.end(),
            [](const JobRecord& a, const JobRecord& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.apid < b.apid;
            });
  jobs.erase(std::unique(jobs.begin(), jobs.end(),
                         [](const JobRecord& a, const JobRecord& b) {
                           return a.apid == b.apid;
                         }),
             jobs.end());
  return jobs;
}

std::vector<JobRecord> apps_running_at(sparklite::Engine& engine,
                                       const cassalite::Cluster& cluster,
                                       UnixSeconds t,
                                       std::int64_t lookback_hours) {
  Context ctx;
  ctx.window = TimeRange{t, t + 1};
  auto jobs = fetch_jobs(engine, cluster, ctx, lookback_hours);
  // Overlap with [t, t+1) means running at t.
  return jobs;
}

std::vector<EventRecord> raw_log_view(sparklite::Engine& engine,
                                      const cassalite::Cluster& cluster,
                                      const Context& ctx, std::size_t limit) {
  auto events = fetch_events(engine, cluster, ctx);
  std::reverse(events.begin(), events.end());  // newest first
  if (events.size() > limit) events.resize(limit);
  return events;
}

std::vector<SynopsisEntry> fetch_synopsis(const cassalite::Cluster& cluster,
                                          const TimeRange& window) {
  std::vector<SynopsisEntry> out;
  for (std::int64_t h = window.first_hour(); h <= window.last_hour(); ++h) {
    cassalite::ReadQuery q;
    q.table = std::string(model::kEventSynopsis);
    q.partition_key = model::synopsis_key(h);
    auto r = cluster.select(q);
    if (!r.is_ok()) continue;
    for (const auto& row : r->rows) {
      if (row.key.parts.empty() || !row.key.parts[0].is_text()) continue;
      auto type = titanlog::event_type_from_id(row.key.parts[0].as_text());
      if (!type.is_ok()) continue;
      SynopsisEntry entry;
      entry.hour = h;
      entry.type = type.value();
      const auto* count = row.find(model::kColCount);
      const auto* first = row.find(model::kColFirstTs);
      const auto* last = row.find(model::kColLastTs);
      entry.count = count && count->is_int() ? count->as_int() : 0;
      entry.first_ts = first && first->is_int() ? first->as_int() : 0;
      entry.last_ts = last && last->is_int() ? last->as_int() : 0;
      out.push_back(entry);
    }
  }
  return out;
}

}  // namespace hpcla::analytics
