// Heat maps over the physical system map (paper Fig 5).
//
// "users can create a heat map representation of the occurrences of an
//  event type within the interval on the physical system map, which
//  illustrates whether the event occurrences were unusually higher (or
//  lower) in some parts of the system" — plus detection of the abnormal
//  nodes themselves.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "analytics/context.hpp"
#include "analytics/queries.hpp"

namespace hpcla::analytics {

/// Per-node occurrence counts over a context (the raw heat map), with
/// aggregation to coarser physical levels.
struct HeatMap {
  std::vector<std::int64_t> node_counts;  ///< size = kTotalNodes
  std::int64_t total = 0;
  std::int64_t peak = 0;                  ///< max per-node count
  topo::NodeId peak_node = topo::kInvalidNode;

  /// Counts rolled up to the 200 cabinets.
  [[nodiscard]] std::array<std::int64_t, 200> cabinet_counts() const;

  /// Counts rolled up to the 4800 blades.
  [[nodiscard]] std::vector<std::int64_t> blade_counts() const;

  /// Nodes whose count exceeds mean + k_sigma * stddev over nonzero-eligible
  /// population (all nodes). Returns (node, count) pairs, hottest first —
  /// the "abnormally high in some compute nodes" detector.
  [[nodiscard]] std::vector<std::pair<topo::NodeId, std::int64_t>>
  anomalous_nodes(double k_sigma = 3.0) const;
};

/// Builds a heat map by running a sparklite count-by-node over the
/// context's events (the paper computes these "by the big data processing
/// unit").
HeatMap build_heatmap(sparklite::Engine& engine,
                      const cassalite::Cluster& cluster, const Context& ctx);

/// Builds a heat map directly from records (for ground-truth comparison).
HeatMap heatmap_from_events(const std::vector<titanlog::EventRecord>& events);

/// Builds a heat map from a dense per-node count vector — the
/// materialized-view serving path (model::views::ViewCatalog::
/// heatmap_counts produces the vector without a scan).
HeatMap heatmap_from_counts(std::vector<std::int64_t> node_counts);

}  // namespace hpcla::analytics
