// Application profiles (paper §V, future work):
//
// "Second, the framework will need to develop application profiles in
//  terms of events occurred during its runs. This will help understand
//  correlations between application runtime characteristics and variations
//  observed in the system on account of faults and errors."
//
// An AppProfile aggregates, per application name, the events that landed
// on the application's nodes while it ran — normalized by node-hours so
// large/long jobs don't dominate — plus run/failure statistics.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analytics/context.hpp"
#include "analytics/queries.hpp"

namespace hpcla::analytics {

struct AppProfile {
  std::string app;
  std::int64_t runs = 0;
  std::int64_t failed_runs = 0;
  double node_hours = 0.0;
  /// Events on the app's nodes during its runs, by type.
  std::map<titanlog::EventType, std::int64_t> event_counts;

  [[nodiscard]] double failure_rate() const noexcept {
    return runs ? static_cast<double>(failed_runs) / static_cast<double>(runs)
                : 0.0;
  }
  /// Events of one type per node-hour of this application.
  [[nodiscard]] double rate(titanlog::EventType type) const {
    const auto it = event_counts.find(type);
    if (it == event_counts.end() || node_hours <= 0.0) return 0.0;
    return static_cast<double>(it->second) / node_hours;
  }
  /// All-type event rate per node-hour.
  [[nodiscard]] double total_rate() const {
    std::int64_t total = 0;
    for (const auto& [_, c] : event_counts) total += c;
    return node_hours > 0.0 ? static_cast<double>(total) / node_hours : 0.0;
  }

  [[nodiscard]] Json to_json() const;
};

/// Builds profiles for every application with runs overlapping the
/// context's window (restricted by the context's app/user filters).
/// Profiles are keyed by application name and sorted by total event rate,
/// highest first.
std::vector<AppProfile> build_app_profiles(sparklite::Engine& engine,
                                           const cassalite::Cluster& cluster,
                                           const Context& ctx);

}  // namespace hpcla::analytics
