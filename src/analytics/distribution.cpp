#include "analytics/distribution.hpp"

#include <algorithm>
#include <map>

#include "common/quantile_sketch.hpp"

namespace hpcla::analytics {

using titanlog::EventRecord;
using titanlog::JobRecord;

Result<GroupBy> group_by_from_string(std::string_view name) {
  if (name == "cabinet") return GroupBy::kCabinet;
  if (name == "cage") return GroupBy::kCage;
  if (name == "blade") return GroupBy::kBlade;
  if (name == "node") return GroupBy::kNode;
  if (name == "type") return GroupBy::kEventType;
  if (name == "application") return GroupBy::kApplication;
  if (name == "user") return GroupBy::kUser;
  return invalid_argument("unknown group_by '" + std::string(name) + "'");
}

std::string_view group_by_name(GroupBy g) noexcept {
  switch (g) {
    case GroupBy::kCabinet: return "cabinet";
    case GroupBy::kCage: return "cage";
    case GroupBy::kBlade: return "blade";
    case GroupBy::kNode: return "node";
    case GroupBy::kEventType: return "type";
    case GroupBy::kApplication: return "application";
    case GroupBy::kUser: return "user";
  }
  return "?";
}

namespace {

std::string location_label(topo::NodeId node, GroupBy group) {
  topo::Coord c = topo::coord_of(node);
  switch (group) {
    case GroupBy::kCabinet:
      c.cage = c.slot = c.node = -1;
      break;
    case GroupBy::kCage:
      c.slot = c.node = -1;
      break;
    case GroupBy::kBlade:
      c.node = -1;
      break;
    default:
      break;
  }
  return topo::format_cname(c);
}

/// Interval index: node -> jobs sorted by start, for event->app attribution.
class PlacementIndex {
 public:
  explicit PlacementIndex(const std::vector<JobRecord>& jobs) {
    for (const auto& job : jobs) {
      for (const auto node : job.nodes) {
        index_[node].push_back(&job);
      }
    }
    for (auto& [_, v] : index_) {
      std::sort(v.begin(), v.end(), [](const JobRecord* a, const JobRecord* b) {
        return a->start < b->start;
      });
    }
  }

  /// Job running on `node` at `ts`, or nullptr.
  [[nodiscard]] const JobRecord* at(topo::NodeId node, UnixSeconds ts) const {
    const auto it = index_.find(node);
    if (it == index_.end()) return nullptr;
    // Few jobs per node in any window: linear scan is fine and exact.
    for (const JobRecord* job : it->second) {
      if (job->start > ts) break;
      if (ts < job->end) return job;
    }
    return nullptr;
  }

 private:
  std::map<topo::NodeId, std::vector<const JobRecord*>> index_;
};

}  // namespace

std::vector<DistributionEntry> distribution(sparklite::Engine& engine,
                                            const cassalite::Cluster& cluster,
                                            const Context& ctx,
                                            GroupBy group) {
  std::vector<std::pair<std::string, std::int64_t>> counted;

  if (group == GroupBy::kApplication || group == GroupBy::kUser) {
    // Attribution needs the placements: fetch jobs overlapping the window,
    // then label each event with the job covering (node, ts).
    Context job_ctx;
    job_ctx.window = ctx.window;
    job_ctx.location = ctx.location;
    auto jobs_keeper = std::make_shared<std::vector<JobRecord>>(
        fetch_jobs(engine, cluster, job_ctx));
    auto index = std::make_shared<PlacementIndex>(*jobs_keeper);

    engine.set_next_stage_label("distribution:attribute+combine");
    auto labeled = event_dataset(engine, cluster, ctx)
                       .map([index, jobs_keeper, group](const EventRecord& e) {
                         const JobRecord* job = index->at(e.node, e.ts);
                         std::string label =
                             job ? (group == GroupBy::kApplication
                                        ? job->app_name
                                        : job->user)
                                 : std::string("(idle)");
                         return std::make_pair(std::move(label),
                                               static_cast<std::int64_t>(e.count));
                       });
    auto reduced = sparklite::reduce_by_key(
        labeled, [](std::int64_t a, std::int64_t b) { return a + b; });
    engine.set_next_stage_label("distribution:merge");
    counted = reduced.collect();
  } else {
    engine.set_next_stage_label("distribution:scan+combine");
    auto keyed = event_dataset(engine, cluster, ctx)
                     .map([group](const EventRecord& e) {
                       std::string label =
                           group == GroupBy::kEventType
                               ? std::string(titanlog::event_id(e.type))
                               : location_label(e.node, group);
                       return std::make_pair(std::move(label),
                                             static_cast<std::int64_t>(e.count));
                     });
    auto reduced = sparklite::reduce_by_key(
        keyed, [](std::int64_t a, std::int64_t b) { return a + b; });
    engine.set_next_stage_label("distribution:merge");
    counted = reduced.collect();
  }

  std::vector<DistributionEntry> out;
  out.reserve(counted.size());
  for (auto& [label, count] : counted) {
    out.push_back(DistributionEntry{std::move(label), count});
  }
  std::sort(out.begin(), out.end(),
            [](const DistributionEntry& a, const DistributionEntry& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.label < b.label;
            });
  return out;
}

std::vector<std::pair<std::int64_t, std::int64_t>> hourly_distribution(
    sparklite::Engine& engine, const cassalite::Cluster& cluster,
    const Context& ctx) {
  engine.set_next_stage_label("hourly:scan+combine");
  auto keyed = event_dataset(engine, cluster, ctx)
                   .map([](const EventRecord& e) {
                     return std::make_pair(hour_bucket(e.ts),
                                           static_cast<std::int64_t>(e.count));
                   });
  auto reduced = sparklite::reduce_by_key(
      keyed, [](std::int64_t a, std::int64_t b) { return a + b; });
  engine.set_next_stage_label("hourly:merge");
  auto counted = reduced.collect();
  std::sort(counted.begin(), counted.end());
  return counted;
}

std::vector<BurstPercentiles> burst_percentiles(
    sparklite::Engine& engine, const cassalite::Cluster& cluster,
    const Context& ctx, GroupBy group, double epsilon) {
  // Attribution groups need the placement index, exactly as distribution().
  std::shared_ptr<std::vector<JobRecord>> jobs_keeper;
  std::shared_ptr<PlacementIndex> index;
  if (group == GroupBy::kApplication || group == GroupBy::kUser) {
    Context job_ctx;
    job_ctx.window = ctx.window;
    job_ctx.location = ctx.location;
    jobs_keeper = std::make_shared<std::vector<JobRecord>>(
        fetch_jobs(engine, cluster, job_ctx));
    index = std::make_shared<PlacementIndex>(*jobs_keeper);
  }
  auto label_of = [index, jobs_keeper, group](const EventRecord& e) {
    if (group == GroupBy::kApplication || group == GroupBy::kUser) {
      const JobRecord* job = index->at(e.node, e.ts);
      return job ? (group == GroupBy::kApplication ? job->app_name : job->user)
                 : std::string("(idle)");
    }
    if (group == GroupBy::kEventType) {
      return std::string(titanlog::event_id(e.type));
    }
    return location_label(e.node, group);
  };

  // Map side folds each partition into one sketch per label; the shuffle
  // then merges sketches. Raw burst sizes are never buffered anywhere —
  // per-task residency is O(labels / epsilon), independent of event count.
  engine.set_next_stage_label("burst:sketch");
  auto sketched =
      event_dataset(engine, cluster, ctx)
          .map_partitions([label_of, epsilon](std::vector<EventRecord> in) {
            std::map<std::string, QuantileSketch> local;
            for (const auto& e : in) {
              auto [it, _] = local.try_emplace(label_of(e),
                                               QuantileSketch(epsilon));
              it->second.add(static_cast<double>(e.count));
            }
            std::vector<std::pair<std::string, QuantileSketch>> out;
            out.reserve(local.size());
            for (auto& [label, sketch] : local) {
              out.emplace_back(label, std::move(sketch));
            }
            return out;
          });
  auto reduced = sparklite::reduce_by_key(
      sketched, [](QuantileSketch a, QuantileSketch b) {
        a.merge(b);
        return a;
      });
  engine.set_next_stage_label("burst:merge");

  std::vector<BurstPercentiles> out;
  for (auto& [label, sketch] : reduced.collect()) {
    BurstPercentiles row;
    row.label = std::move(label);
    row.events = sketch.count();
    row.p50 = sketch.quantile(0.50);
    row.p95 = sketch.quantile(0.95);
    row.p99 = sketch.quantile(0.99);
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(),
            [](const BurstPercentiles& a, const BurstPercentiles& b) {
              if (a.events != b.events) return a.events > b.events;
              return a.label < b.label;
            });
  return out;
}

}  // namespace hpcla::analytics
