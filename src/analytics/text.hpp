// Text analytics over raw log messages (paper §III-C, Fig 7 bottom).
//
// "Once properly filtered, each Lustre event message can be transformed
//  into a set of words ... Such transformations typically involve word
//  counts and/or term frequency-inverse document frequency (TF-IDF) of log
//  messages. Note here a Lustre message is treated as a document. ... We
//  found that a simple word counts, which is rapidly executed by Spark,
//  can locate the source of the problem."
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "analytics/context.hpp"
#include "analytics/queries.hpp"

namespace hpcla::analytics {

/// Tokenizes a log message: lowercased maximal [a-z0-9_] runs, length >= 2,
/// pure decimal numbers dropped (they are addresses/counters, not terms —
/// alphanumeric ids like "ost0042" survive).
std::vector<std::string> tokenize(std::string_view message);

/// Boilerplate terms of the log domain excluded from counting ("error",
/// "failed", "operation", ...), so counts surface *identifiers*.
const std::set<std::string>& log_stopwords();

struct TermCount {
  std::string term;
  std::int64_t count = 0;
};

/// Distributed word count over a context's event messages: the Fig 7
/// root-cause idiom. Returns the top_k most frequent non-stopword terms.
std::vector<TermCount> word_count(sparklite::Engine& engine,
                                  const cassalite::Cluster& cluster,
                                  const Context& ctx, std::size_t top_k);

/// Word count over pre-fetched messages (driver-side variant).
std::vector<TermCount> word_count_messages(
    const std::vector<std::string>& messages, std::size_t top_k);

struct TfIdfTerm {
  std::string term;
  double score = 0.0;
};

/// TF-IDF with *documents = time buckets* of messages: a term scores high
/// when it saturates one bucket (a storm window) but is rare across the
/// corpus — which is precisely how a faulty component's id behaves against
/// background Lustre chatter.
std::vector<TfIdfTerm> tf_idf_top_terms(
    const std::vector<std::vector<std::string>>& documents, std::size_t top_k);

/// Convenience: bucket a context's events into `bucket_seconds` documents
/// and return the top TF-IDF terms of the highest-volume bucket.
std::vector<TfIdfTerm> storm_signature(sparklite::Engine& engine,
                                       const cassalite::Cluster& cluster,
                                       const Context& ctx,
                                       std::int64_t bucket_seconds,
                                       std::size_t top_k);

}  // namespace hpcla::analytics
