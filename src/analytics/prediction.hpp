// Failure prediction from precursor events (paper §IV: "models for failure
// prediction ... leverage the spatial and temporal correlation between
// historical failures, or trends of non-fatal events preceding failures";
// §V lists predictive models as the framework's direction).
//
// A deliberately simple, fully evaluated baseline: per node, a sliding
// window of non-fatal *precursor* counts; when the windowed count crosses
// a threshold, the node is flagged for `lead_seconds`. Evaluation replays
// a labeled stream and reports precision/recall/lead time against the
// actual fatal events — the methodology of the cited prediction papers,
// runnable on the synthetic workload's injected escalations.
#pragma once

#include <cstdint>
#include <vector>

#include "analytics/context.hpp"
#include "analytics/queries.hpp"

namespace hpcla::analytics {

struct PredictorConfig {
  /// Precursor (non-fatal) types watched; empty = all non-fatal types.
  std::vector<titanlog::EventType> precursors;
  /// Fatal types predicted; empty = catalog fatal severity only.
  std::vector<titanlog::EventType> targets;
  /// Sliding window over which precursors accumulate.
  std::int64_t window_seconds = 1800;
  /// Windowed precursor count (weighted by EventRecord::count) that trips
  /// an alarm.
  std::int64_t threshold = 3;
  /// How long an alarm stays armed; a fatal event within this horizon
  /// counts as a true positive.
  std::int64_t lead_seconds = 1800;
};

/// One raised alarm.
struct Alarm {
  topo::NodeId node = topo::kInvalidNode;
  UnixSeconds raised_at = 0;
  std::int64_t precursor_count = 0;
  /// Filled during evaluation.
  bool hit = false;
  std::int64_t lead_time_seconds = 0;  ///< raise -> failure, when hit
};

struct PredictionReport {
  std::vector<Alarm> alarms;
  std::int64_t failures = 0;          ///< fatal events in the stream
  std::int64_t failures_predicted = 0;///< preceded by an armed alarm
  std::int64_t true_positives = 0;    ///< alarms that hit
  std::int64_t false_positives = 0;

  [[nodiscard]] double precision() const noexcept {
    const auto total = true_positives + false_positives;
    return total ? static_cast<double>(true_positives) /
                       static_cast<double>(total)
                 : 0.0;
  }
  [[nodiscard]] double recall() const noexcept {
    return failures ? static_cast<double>(failures_predicted) /
                          static_cast<double>(failures)
                    : 0.0;
  }
  /// Mean raise->failure lead among true positives, seconds.
  [[nodiscard]] double mean_lead_seconds() const;
};

/// Replays a time-sorted event stream through the predictor and scores it.
PredictionReport evaluate_predictor(
    const std::vector<titanlog::EventRecord>& events_sorted_by_ts,
    const PredictorConfig& config);

/// Convenience: fetch the context's events first.
PredictionReport evaluate_predictor(sparklite::Engine& engine,
                                    const cassalite::Cluster& cluster,
                                    const Context& ctx,
                                    const PredictorConfig& config);

}  // namespace hpcla::analytics
