// Decision trees (paper §II-A lists them among the data-mining techniques
// the data model is meant to support; §V asks for "machine learning
// algorithms" over application/event correlations).
//
// A small CART implementation for binary classification over numeric
// features (Gini impurity, axis-aligned splits), plus the domain adapter
// the paper motivates: classifying *job failure* from the conditions a job
// ran under (allocation size, duration, and the events that hit its nodes
// while it ran).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analytics/context.hpp"
#include "analytics/queries.hpp"

namespace hpcla::analytics {

/// One labeled observation.
struct Sample {
  std::vector<double> features;
  bool label = false;
};

struct DTreeConfig {
  int max_depth = 4;
  std::size_t min_samples_leaf = 8;
  /// Stop splitting when a node is at least this pure.
  double purity_stop = 0.98;
};

/// Binary CART classifier.
class DecisionTree {
 public:
  /// Trains on `samples` (all with the same feature arity).
  /// `feature_names` label the columns for render(); must match arity.
  static DecisionTree train(const std::vector<Sample>& samples,
                            std::vector<std::string> feature_names,
                            DTreeConfig config = DTreeConfig());

  /// Probability of the positive class at the matching leaf.
  [[nodiscard]] double predict_prob(const std::vector<double>& features) const;

  /// Hard decision at 0.5.
  [[nodiscard]] bool predict(const std::vector<double>& features) const {
    return predict_prob(features) >= 0.5;
  }

  [[nodiscard]] int depth() const noexcept;
  [[nodiscard]] std::size_t leaf_count() const noexcept;

  /// Indented text rendering of the learned tree.
  [[nodiscard]] std::string render() const;

  /// Classification quality on a labeled set.
  struct Eval {
    std::int64_t tp = 0, fp = 0, tn = 0, fn = 0;
    [[nodiscard]] double accuracy() const noexcept {
      const auto total = tp + fp + tn + fn;
      return total ? static_cast<double>(tp + tn) / static_cast<double>(total)
                   : 0.0;
    }
    [[nodiscard]] double precision() const noexcept {
      return tp + fp ? static_cast<double>(tp) / static_cast<double>(tp + fp)
                     : 0.0;
    }
    [[nodiscard]] double recall() const noexcept {
      return tp + fn ? static_cast<double>(tp) / static_cast<double>(tp + fn)
                     : 0.0;
    }
  };
  [[nodiscard]] Eval evaluate(const std::vector<Sample>& samples) const;

 private:
  struct Node {
    // Internal: feature/threshold; leaf: probability.
    int feature = -1;           ///< -1 = leaf
    double threshold = 0.0;     ///< goes left when feature value < threshold
    double prob = 0.0;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
  };

  static std::unique_ptr<Node> build(const std::vector<Sample>& samples,
                                     std::vector<std::size_t> indices,
                                     const DTreeConfig& config, int depth);
  static void render_node(const Node& node,
                          const std::vector<std::string>& names,
                          int depth, std::string& out);
  static int node_depth(const Node& node);
  static std::size_t node_leaves(const Node& node);

  std::unique_ptr<Node> root_;
  std::vector<std::string> feature_names_;
};

/// Feature names of job_failure_samples, in order.
const std::vector<std::string>& job_failure_feature_names();

/// Builds a labeled dataset from the jobs and events of a context:
/// features = [log2(nodes), duration_hours, fatal events on the job's
/// nodes during the run, non-fatal events likewise]; label = job failed.
std::vector<Sample> job_failure_samples(sparklite::Engine& engine,
                                        const cassalite::Cluster& cluster,
                                        const Context& ctx);

}  // namespace hpcla::analytics
