// Spatio-temporal queries over the data model.
//
// The planner mirrors the paper's dual-schema design (Fig 1): a context
// restricted by *type* scans event_by_time partitions (hour × type); a
// context restricted to a *small location* scans event_by_location
// partitions (hour × node). Whichever enumerates fewer partitions wins.
// Multi-partition scans run as sparklite datasets with locality hints.
#pragma once

#include <string>
#include <vector>

#include "analytics/context.hpp"
#include "cassalite/cluster.hpp"
#include "model/tables.hpp"
#include "sparklite/cassalite_source.hpp"
#include "sparklite/dataset.hpp"
#include "titanlog/record.hpp"

namespace hpcla::analytics {

/// Which physical table a context scan will use.
enum class ScanPlan { kByTime, kByLocation };

/// Chooses the cheaper event table for a context (exposed for tests and
/// the Fig 1 bench).
ScanPlan plan_event_scan(const Context& ctx);

/// Partition keys the context touches under the given plan.
std::vector<std::string> event_partition_keys(const Context& ctx,
                                              ScanPlan plan);

/// Lazy dataset of the context's events (decoded, window/location/type
/// filtered). The heavy lifting — decode + filter — runs in sparklite
/// tasks co-located with the data.
sparklite::Dataset<titanlog::EventRecord> event_dataset(
    sparklite::Engine& engine, const cassalite::Cluster& cluster,
    const Context& ctx);

/// Materialized convenience wrapper (sorted by ts, then seq).
std::vector<titanlog::EventRecord> fetch_events(
    sparklite::Engine& engine, const cassalite::Cluster& cluster,
    const Context& ctx);

/// Jobs matching a context. A job matches when its [start, end) overlaps
/// the window, it touches the location (if any), and user/app match.
/// `lookback_hours` bounds how far before the window a still-running job
/// may have started.
std::vector<titanlog::JobRecord> fetch_jobs(
    sparklite::Engine& engine, const cassalite::Cluster& cluster,
    const Context& ctx, std::int64_t lookback_hours = 48);

/// Applications running at one instant, with their placements — the
/// Fig 6 "application placement on the physical system map" query.
std::vector<titanlog::JobRecord> apps_running_at(
    sparklite::Engine& engine, const cassalite::Cluster& cluster,
    UnixSeconds t, std::int64_t lookback_hours = 48);

/// Raw-log tabular view (paper §III-B "the tabular map of raw log
/// entries"): newest-first event rows, bounded by `limit`.
std::vector<titanlog::EventRecord> raw_log_view(
    sparklite::Engine& engine, const cassalite::Cluster& cluster,
    const Context& ctx, std::size_t limit);

/// Per-hour (hour, type) -> count summaries from eventsynopsis — the fast
/// path behind the frontend's temporal map.
struct SynopsisEntry {
  std::int64_t hour = 0;
  titanlog::EventType type = titanlog::EventType::kMachineCheck;
  std::int64_t count = 0;
  UnixSeconds first_ts = 0;
  UnixSeconds last_ts = 0;
};
std::vector<SynopsisEntry> fetch_synopsis(const cassalite::Cluster& cluster,
                                          const TimeRange& window);

}  // namespace hpcla::analytics
