// Tests for the incrementally-maintained materialized views (DESIGN.md
// §12): reader correctness against ground truth, epoch-based invalidation
// semantics, and partial-write handling.
#include <gtest/gtest.h>

#include <vector>

#include "analytics/heatmap.hpp"
#include "model/views/views.hpp"
#include "titanlog/record.hpp"
#include "topo/machine.hpp"

namespace hpcla::model::views {
namespace {

using titanlog::EventRecord;
using titanlog::EventType;

constexpr UnixSeconds kT0 = 1489449600;  // hour-aligned

EventRecord ev(UnixSeconds ts, EventType type, topo::NodeId node,
               std::int64_t count = 1) {
  EventRecord e;
  e.ts = ts;
  e.type = type;
  e.node = node;
  e.count = count;
  return e;
}

std::vector<EventRecord> sample_events() {
  return {
      ev(kT0 + 10, EventType::kMachineCheck, 100, 2),
      ev(kT0 + 20, EventType::kMachineCheck, 100),
      ev(kT0 + 30, EventType::kMachineCheck, 250),
      ev(kT0 + 40, EventType::kKernelPanic, 250),
      ev(kT0 + 3600 + 5, EventType::kMachineCheck, 100, 3),
      ev(kT0 + 3600 + 6, EventType::kNetworkError, 4000),
  };
}

TEST(ViewCatalogTest, AlignedRequiresHourBoundaries) {
  EXPECT_TRUE(ViewCatalog::aligned(TimeRange{kT0, kT0 + 3600}));
  EXPECT_TRUE(ViewCatalog::aligned(TimeRange{kT0, kT0 + 7200}));
  EXPECT_FALSE(ViewCatalog::aligned(TimeRange{kT0 + 1, kT0 + 3600}));
  EXPECT_FALSE(ViewCatalog::aligned(TimeRange{kT0, kT0 + 3599}));
  EXPECT_FALSE(ViewCatalog::aligned(TimeRange{kT0, kT0}));  // empty
}

TEST(ViewCatalogTest, HeatmapCountsMatchGroundTruth) {
  ViewCatalog views;
  const auto events = sample_events();
  for (const auto& e : events) views.apply(e);

  const TimeRange window{kT0, kT0 + 7200};
  ViewQuery q{window, {}, std::nullopt};
  const auto counts = views.heatmap_counts(q);
  const auto truth = analytics::heatmap_from_events(events);
  ASSERT_EQ(counts.size(), truth.node_counts.size());
  EXPECT_EQ(counts, truth.node_counts);
  EXPECT_EQ(counts[100], 6);  // 2 + 1 + 3
  EXPECT_EQ(counts[250], 2);
}

TEST(ViewCatalogTest, ReadersFilterByTypeAndLocation) {
  ViewCatalog views;
  for (const auto& e : sample_events()) views.apply(e);
  const TimeRange window{kT0, kT0 + 7200};

  ViewQuery by_type{window, {EventType::kMachineCheck}, std::nullopt};
  const auto counts = views.heatmap_counts(by_type);
  EXPECT_EQ(counts[100], 6);
  EXPECT_EQ(counts[250], 1);  // the kernel panic is excluded
  EXPECT_EQ(counts[4000], 0);

  // Location: restrict to node 100 itself (node-level coord).
  ViewQuery by_loc{window, {}, topo::coord_of(100)};
  const auto local = views.heatmap_counts(by_loc);
  EXPECT_EQ(local[100], 6);
  EXPECT_EQ(local[250], 0);
}

TEST(ViewCatalogTest, HourlyCountsAscendingAndSparse) {
  ViewCatalog views;
  for (const auto& e : sample_events()) views.apply(e);
  // Window covers 3 hours but only the first two have events: the empty
  // hour is omitted, matching the engine's reduce-by-key output.
  ViewQuery q{TimeRange{kT0, kT0 + 3 * 3600}, {}, std::nullopt};
  const auto hourly = views.hourly_counts(q);
  ASSERT_EQ(hourly.size(), 2u);
  EXPECT_EQ(hourly[0].first, kT0 / 3600);
  EXPECT_EQ(hourly[0].second, 5);  // 2+1+1+1
  EXPECT_EQ(hourly[1].first, kT0 / 3600 + 1);
  EXPECT_EQ(hourly[1].second, 4);  // 3+1
}

TEST(ViewCatalogTest, TypeCountsRankedAndTruncated) {
  ViewCatalog views;
  for (const auto& e : sample_events()) views.apply(e);
  ViewQuery q{TimeRange{kT0, kT0 + 7200}, {}, std::nullopt};
  const auto all = views.type_counts(q);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].first, std::string(titanlog::event_id(
                              EventType::kMachineCheck)));
  EXPECT_EQ(all[0].second, 7);
  // Ties (1 apiece) break ascending by label.
  EXPECT_LT(all[1].first, all[2].first);

  const auto top1 = views.type_counts(q, 1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(top1[0].second, 7);
}

TEST(ViewCatalogTest, HourSeriesIsDense) {
  ViewCatalog views;
  for (const auto& e : sample_events()) views.apply(e);
  ViewQuery q{TimeRange{kT0, kT0 + 3 * 3600},
              {EventType::kMachineCheck},
              std::nullopt};
  const auto series = views.hour_series(q);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0], 4.0);
  EXPECT_DOUBLE_EQ(series[1], 3.0);
  EXPECT_DOUBLE_EQ(series[2], 0.0);  // dense: the empty hour is a zero bin
}

TEST(ViewCatalogTest, BurstPercentilesMatchSketchGroundTruth) {
  ViewCatalog views;
  // One type with a skewed burst-size distribution spread over two hours:
  // 99 bursts of size 1 and one of size 100.
  for (int i = 0; i < 99; ++i) {
    views.apply(ev(kT0 + i, EventType::kMachineCheck, 100 + i % 7, 1));
  }
  views.apply(ev(kT0 + 3600, EventType::kMachineCheck, 100, 100));
  views.apply(ev(kT0 + 10, EventType::kKernelPanic, 250, 5));

  ViewQuery q{TimeRange{kT0, kT0 + 7200}, {}, std::nullopt};
  const auto rows = views.burst_percentiles(q);
  ASSERT_EQ(rows.size(), 2u);
  // Descending by events, then label.
  EXPECT_EQ(rows[0].label, "MCE");
  EXPECT_EQ(rows[0].events, 100u);
  EXPECT_EQ(rows[1].events, 1u);
  // Rank error 2*eps = 4%: p50 of {1 x99, 100} is 1; p99 admits the tail.
  EXPECT_DOUBLE_EQ(rows[0].p50, 1.0);
  EXPECT_GE(rows[0].p99, 1.0);
  EXPECT_LE(rows[0].p99, 100.0);
  // Percentiles are monotone by construction.
  EXPECT_LE(rows[0].p50, rows[0].p95);
  EXPECT_LE(rows[0].p95, rows[0].p99);
  // Single-sample type: all percentiles collapse to the sample.
  EXPECT_DOUBLE_EQ(rows[1].p50, 5.0);
  EXPECT_DOUBLE_EQ(rows[1].p99, 5.0);

  // Type filter applies.
  ViewQuery only{TimeRange{kT0, kT0 + 7200},
                 {EventType::kKernelPanic},
                 std::nullopt};
  const auto filtered = views.burst_percentiles(only);
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered[0].label, "KernelPanic");

  // Window filter applies: the 100-burst lives in hour 2.
  ViewQuery first_hour{TimeRange{kT0, kT0 + 3600}, {}, std::nullopt};
  const auto early = views.burst_percentiles(first_hour);
  ASSERT_FALSE(early.empty());
  EXPECT_EQ(early[0].events, 99u);
  EXPECT_DOUBLE_EQ(early[0].p99, 1.0);
}

TEST(ViewCatalogTest, SketchTuplesReportedAndPartialWritesSkipSketch) {
  ViewCatalog views;
  EXPECT_EQ(views.stats().sketch_tuples, 0u);
  for (const auto& e : sample_events()) views.apply(e);
  EXPECT_GT(views.stats().sketch_tuples, 0u);

  // A partial write bumps epochs but must not add a sample.
  const auto before = views.burst_percentiles(
      ViewQuery{TimeRange{kT0, kT0 + 7200}, {}, std::nullopt});
  const auto epoch = views.global_epoch();
  views.apply(ev(kT0 + 50, EventType::kMachineCheck, 100, 9), false);
  EXPECT_GT(views.global_epoch(), epoch);
  const auto after = views.burst_percentiles(
      ViewQuery{TimeRange{kT0, kT0 + 7200}, {}, std::nullopt});
  ASSERT_EQ(after.size(), before.size());
  EXPECT_EQ(after[0].events, before[0].events);
}

TEST(ViewCatalogTest, WindowEpochChangesOnlyForCoveredHours) {
  ViewCatalog views;
  const TimeRange window{kT0, kT0 + 3600};
  const auto e0 = views.window_epoch(window);
  views.apply(ev(kT0 + 100, EventType::kMachineCheck, 1));
  const auto e1 = views.window_epoch(window);
  EXPECT_GT(e1, e0);
  // Ingest into a different hour leaves this window's fingerprint alone.
  views.apply(ev(kT0 + 7200 + 100, EventType::kMachineCheck, 1));
  EXPECT_EQ(views.window_epoch(window), e1);
  // But the covering wider window sees it.
  EXPECT_GT(views.window_epoch(TimeRange{kT0, kT0 + 3 * 3600}), e1);
}

TEST(ViewCatalogTest, PartialWritesBumpEpochWithoutCounting) {
  ViewCatalog views;
  const TimeRange window{kT0, kT0 + 3600};
  const auto e0 = views.window_epoch(window);
  views.apply(ev(kT0 + 100, EventType::kMachineCheck, 5), /*counted=*/false);
  EXPECT_GT(views.window_epoch(window), e0);
  ViewQuery q{window, {}, std::nullopt};
  EXPECT_EQ(views.heatmap_counts(q)[1], 0);
  const auto s = views.stats();
  EXPECT_EQ(s.applied, 0u);
  EXPECT_EQ(s.partial, 1u);
}

TEST(ViewCatalogTest, HugeWindowFallsBackToGlobalEpoch) {
  ViewCatalog views;
  // A window wider than kMaxEpochHours uses the global epoch: any write
  // anywhere invalidates, which is coarse but never stale.
  const TimeRange huge{0, (ViewCatalog::kMaxEpochHours + 10) * 3600};
  const auto e0 = views.window_epoch(huge);
  views.apply(ev(kT0 + 100, EventType::kMachineCheck, 1));
  EXPECT_GT(views.window_epoch(huge), e0);
  EXPECT_EQ(views.window_epoch(huge), views.global_epoch());
}

TEST(ViewCatalogTest, StatsCountHoursAndTiles) {
  ViewCatalog views;
  for (const auto& e : sample_events()) views.apply(e);
  const auto s = views.stats();
  EXPECT_EQ(s.applied, 6u);
  EXPECT_EQ(s.hours, 2u);
  EXPECT_EQ(s.tiles, 4u);  // h0: MCE+panic; h1: MCE+network
}

}  // namespace
}  // namespace hpcla::model::views
