// Tests for the telemetry layer: histogram bucketing and percentile
// accuracy, lock-free recording under concurrency (TSan target), registry
// snapshots and collectors, and the span tracer (context propagation,
// eviction, slow log, virtual clock).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/faultsim.hpp"
#include "common/telemetry.hpp"

namespace hpcla::telemetry {
namespace {

// ------------------------------------------------------------- histograms

TEST(LatencyHistogramTest, BucketMidpointRoundTrip) {
  // Values below 4 are exact; above, the midpoint estimate stays within
  // the log-linear bound (4 sub-buckets per power of two -> <= 12.5%).
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull}) {
    EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_midpoint(
                         LatencyHistogram::bucket_index(v)),
                     static_cast<double>(v));
  }
  for (std::uint64_t v = 4; v < 20'000'000; v = v * 5 / 4 + 1) {
    const auto idx = LatencyHistogram::bucket_index(v);
    ASSERT_LT(idx, LatencyHistogram::kBuckets);
    const double mid = LatencyHistogram::bucket_midpoint(idx);
    EXPECT_LE(std::abs(mid - static_cast<double>(v)),
              0.125 * static_cast<double>(v))
        << "v=" << v << " idx=" << idx << " mid=" << mid;
  }
}

TEST(LatencyHistogramTest, BucketIndexIsMonotone) {
  std::size_t prev = 0;
  for (std::uint64_t v = 0; v < 100'000; ++v) {
    const auto idx = LatencyHistogram::bucket_index(v);
    EXPECT_GE(idx, prev) << "v=" << v;
    prev = idx;
  }
}

double exact_percentile(std::vector<std::uint64_t> sorted, double q) {
  // Nearest-rank, matching the histogram's definition.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(sorted.size()) +
                                    0.5));
  return static_cast<double>(sorted[rank - 1]);
}

TEST(LatencyHistogramTest, PercentilesTrackExactValues) {
  LatencyHistogram hist;
  std::vector<std::uint64_t> values;
  // Deterministic long-tailed distribution: mostly small, a heavy tail.
  std::uint64_t x = 12345;
  for (int i = 0; i < 20'000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;  // LCG
    const std::uint64_t v = 10 + (x >> 52) + ((x >> 60) == 0 ? 5000 : 0);
    values.push_back(v);
    hist.record(v);
  }
  const HistogramSnapshot snap = hist.snapshot();
  ASSERT_EQ(snap.count, values.size());
  std::uint64_t sum = 0;
  std::uint64_t lo = ~0ull;
  std::uint64_t hi = 0;
  for (auto v : values) {
    sum += v;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_EQ(snap.sum_us, sum);
  EXPECT_EQ(snap.min_us, lo);
  EXPECT_EQ(snap.max_us, hi);

  std::sort(values.begin(), values.end());
  const auto near = [](double got, double want) {
    EXPECT_LE(std::abs(got - want), 0.15 * want + 1.0)
        << "got " << got << " want " << want;
  };
  near(snap.p50_us, exact_percentile(values, 0.50));
  near(snap.p95_us, exact_percentile(values, 0.95));
  near(snap.p99_us, exact_percentile(values, 0.99));
}

TEST(LatencyHistogramTest, EmptySnapshotIsZero) {
  LatencyHistogram hist;
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum_us, 0u);
  EXPECT_EQ(snap.min_us, 0u);
  EXPECT_EQ(snap.max_us, 0u);
  EXPECT_DOUBLE_EQ(snap.p99_us, 0.0);
  EXPECT_DOUBLE_EQ(snap.mean_us(), 0.0);
}

// ------------------------------------------------ concurrency (TSan target)

TEST(TelemetryConcurrencyTest, CountersAndHistogramsAreExactUnderThreads) {
  Counter& ctr = registry().counter("test.concurrency.counter");
  LatencyHistogram& hist = registry().histogram("test.concurrency.hist");
  const std::uint64_t before_ctr = ctr.value();
  const std::uint64_t before_hist = hist.snapshot().count;

  constexpr int kThreads = 8;
  constexpr int kOps = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ctr, &hist, t] {
      for (int i = 0; i < kOps; ++i) {
        ctr.add(1);
        hist.record(static_cast<std::uint64_t>(t * 100 + i % 97));
        if (i % 4096 == 0) (void)hist.snapshot();  // reader vs writers
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(ctr.value() - before_ctr,
            static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_EQ(hist.snapshot().count - before_hist,
            static_cast<std::uint64_t>(kThreads) * kOps);
}

// ---------------------------------------------------------------- registry

TEST(MetricRegistryTest, SnapshotMergesInstrumentsAndCollectors) {
  MetricRegistry& reg = registry();
  reg.counter("test.registry.counter").add(7);
  reg.gauge("test.registry.gauge").set(-3);
  reg.histogram("test.registry.hist").record(42);

  // Two collectors contributing the same name: values sum.
  CollectorHandle a = reg.register_collector([](MetricSink& sink) {
    sink.counter("test.registry.collected", 10);
    sink.gauge("test.registry.collected_gauge", 1.5);
  });
  CollectorHandle b = reg.register_collector(
      [](MetricSink& sink) { sink.counter("test.registry.collected", 5); });

  RegistrySnapshot snap = reg.snapshot();
  EXPECT_GE(snap.counters.at("test.registry.counter"), 7u);
  EXPECT_EQ(snap.gauges.at("test.registry.gauge"), -3.0);
  EXPECT_EQ(snap.histograms.at("test.registry.hist").count, 1u);
  EXPECT_EQ(snap.counters.at("test.registry.collected"), 15u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.registry.collected_gauge"), 1.5);

  // Deregistration removes the contribution.
  b.reset();
  snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("test.registry.collected"), 10u);
  a.reset();
  snap = reg.snapshot();
  EXPECT_EQ(snap.counters.count("test.registry.collected"), 0u);
}

TEST(MetricRegistryTest, InstrumentReferencesAreStable) {
  Counter& first = registry().counter("test.registry.stable");
  Counter& second = registry().counter("test.registry.stable");
  EXPECT_EQ(&first, &second);
}

TEST(MetricRegistryTest, PrometheusTextRendersAllKinds) {
  registry().counter("test.prom.counter").add(1);
  registry().gauge("test.prom.gauge").set(2);
  registry().histogram("test.prom.hist").record(100);
  const std::string text = prometheus_text(registry().snapshot());
  EXPECT_NE(text.find("# HELP test_prom_counter test.prom.counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_counter counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_hist histogram"), std::string::npos);
  // Native cumulative histogram series, not quantile summary rows.
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\""), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_sum"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_count"), std::string::npos);
  EXPECT_EQ(text.find("test_prom_hist{quantile"), std::string::npos);
}

TEST(MetricRegistryTest, PrometheusGoldenOutput) {
  // Hand-built snapshot -> byte-exact exposition. A histogram with two
  // recorded values (10 and 100) exposes exactly its two non-empty
  // buckets as cumulative counts, then +Inf / _sum / _count.
  RegistrySnapshot snap;
  snap.counters["test.golden.counter"] = 42;
  snap.gauges["test.golden.gauge"] = 1.5;
  HistogramSnapshot h;
  h.count = 2;
  h.sum_us = 110;
  h.min_us = 10;
  h.max_us = 100;
  h.cumulative_buckets = {{11.0, 1}, {103.0, 2}};
  snap.histograms["test.golden.hist"] = h;
  const std::string expected =
      "# HELP test_golden_counter test.golden.counter (monotonic)\n"
      "# TYPE test_golden_counter counter\n"
      "test_golden_counter 42\n"
      "# HELP test_golden_gauge test.golden.gauge (last value)\n"
      "# TYPE test_golden_gauge gauge\n"
      "test_golden_gauge 1.5\n"
      "# HELP test_golden_hist test.golden.hist latency (microseconds)\n"
      "# TYPE test_golden_hist histogram\n"
      "test_golden_hist_bucket{le=\"11\"} 1\n"
      "test_golden_hist_bucket{le=\"103\"} 2\n"
      "test_golden_hist_bucket{le=\"+Inf\"} 2\n"
      "test_golden_hist_sum 110\n"
      "test_golden_hist_count 2\n";
  EXPECT_EQ(prometheus_text(snap), expected);
}

TEST(MetricRegistryTest, PrometheusLabelEscaping) {
  EXPECT_EQ(prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(prometheus_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(prometheus_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_escape_label("a\nb"), "a\\nb");
}

TEST(MetricRegistryTest, HistogramBucketsAreCumulativeAndBounded) {
  LatencyHistogram hist;
  hist.record(10);
  hist.record(10);
  hist.record(5000);
  const HistogramSnapshot snap = hist.snapshot();
  ASSERT_EQ(snap.cumulative_buckets.size(), 2u);
  EXPECT_EQ(snap.cumulative_buckets[0].second, 2u);
  EXPECT_EQ(snap.cumulative_buckets[1].second, 3u);
  // Each bound is the largest value still landing in its bucket, and the
  // recorded values respect their bounds.
  EXPECT_GE(snap.cumulative_buckets[0].first, 10.0);
  EXPECT_GE(snap.cumulative_buckets[1].first, 5000.0);
  EXPECT_LT(snap.cumulative_buckets[0].first,
            snap.cumulative_buckets[1].first);
  // Bounds line up with bucket_upper of the value's bucket.
  EXPECT_DOUBLE_EQ(
      snap.cumulative_buckets[0].first,
      static_cast<double>(
          LatencyHistogram::bucket_upper(LatencyHistogram::bucket_index(10))));
}

// ------------------------------------------------------------------ tracer

TEST(TracerTest, RootChildAndCrossThreadPropagation) {
  Tracer& tr = tracer();
  tr.clear();
  std::uint64_t tid = 0;
  std::uint64_t root_span = 0;
  {
    Span root = Span::root("test.root");
    ASSERT_TRUE(root.active());
    tid = root.trace_id();
    root_span = root.context().span_id;
    root.tag("k", "v");
    {
      Span child("test.child");
      ASSERT_TRUE(child.active());
      EXPECT_EQ(child.trace_id(), tid);
    }
    // Cross-thread: capture the context, reinstall it inside the task.
    const TraceContext ctx = current();
    std::thread worker([ctx] {
      EXPECT_FALSE(current().active());  // fresh thread: no context
      ScopedContext guard(ctx);
      Span remote("test.remote");
      EXPECT_TRUE(remote.active());
    });
    worker.join();
  }
  const auto spans = tr.trace(tid);
  ASSERT_EQ(spans.size(), 3u);
  int roots = 0;
  for (const auto& s : spans) {
    if (s.name == "test.root") {
      ++roots;
      EXPECT_EQ(s.parent_id, 0u);
      ASSERT_EQ(s.tags.size(), 1u);
      EXPECT_EQ(s.tags[0].first, "k");
      EXPECT_EQ(s.tags[0].second, "v");
    } else {
      EXPECT_EQ(s.parent_id, root_span) << s.name;
    }
  }
  EXPECT_EQ(roots, 1);
}

TEST(TracerTest, ChildWithoutActiveTraceIsInert) {
  Span orphan("test.orphan");
  EXPECT_FALSE(orphan.active());
  EXPECT_EQ(orphan.trace_id(), 0u);
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer& tr = tracer();
  tr.clear();
  tr.set_enabled(false);
  std::uint64_t tid = 0;
  {
    Span root = Span::root("test.disabled");
    EXPECT_FALSE(root.active());
    tid = root.trace_id();
  }
  tr.set_enabled(true);
  EXPECT_TRUE(tr.trace(tid).empty());
}

TEST(TracerTest, OldestTraceEvictedWhenSinkFull) {
  Tracer& tr = tracer();
  tr.clear();
  std::uint64_t first = 0;
  std::uint64_t last = 0;
  for (std::size_t i = 0; i < Tracer::kMaxTraces + 8; ++i) {
    Span root = Span::root("test.evict");
    if (i == 0) first = root.trace_id();
    last = root.trace_id();
  }
  EXPECT_TRUE(tr.trace(first).empty()) << "oldest trace should be evicted";
  EXPECT_EQ(tr.trace(last).size(), 1u);
  tr.clear();
}

TEST(TracerTest, SlowLogKeepsTopKSlowestFirst) {
  Tracer& tr = tracer();
  tr.clear();
  const std::int64_t saved = tr.slow_threshold_us();
  tr.set_slow_threshold_us(1000);
  {
    Span root = Span::root("test.slowlog");
    const TraceContext ctx = current();
    emit_span(ctx, "test.fast", 0, 500);    // below threshold: not logged
    emit_span(ctx, "test.slow_a", 0, 2000);
    emit_span(ctx, "test.slow_b", 0, 9000);
    emit_span(ctx, "test.slow_c", 0, 4000);
  }
  const auto slow = tr.slow_ops();
  ASSERT_GE(slow.size(), 3u);
  EXPECT_EQ(slow[0].name, "test.slow_b");
  EXPECT_EQ(slow[1].name, "test.slow_c");
  EXPECT_EQ(slow[2].name, "test.slow_a");
  for (const auto& s : slow) {
    EXPECT_GE(s.duration_us, 1000);
    EXPECT_NE(s.name, "test.fast");
  }
  tr.set_slow_threshold_us(saved);
  tr.clear();
}

TEST(TracerTest, SimClockMakesTimestampsDeterministic) {
  Tracer& tr = tracer();
  tr.clear();
  SimClock clock;
  clock.advance_ms(250);
  tr.set_sim_clock(&clock);
  std::uint64_t tid = 0;
  {
    Span root = Span::root("test.simclock");
    tid = root.trace_id();
    EXPECT_EQ(root.start_us(), 250'000);
    clock.advance_ms(30);
  }
  tr.set_sim_clock(nullptr);
  const auto spans = tr.trace(tid);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].start_us, 250'000);
  EXPECT_EQ(spans[0].duration_us, 30'000);
  tr.clear();
}

// --------------------------------------------------- tail sampling + export

/// Restores startup tracer configuration on scope exit.
struct TracerConfigGuard {
  ~TracerConfigGuard() {
    tracer().configure(TracerOptions::from_env());
    tracer().clear();
  }
};

TEST(TailSamplingTest, SlowAndErroredTracesAlwaysKept) {
  Tracer& tr = tracer();
  TracerConfigGuard guard;
  tr.clear();
  TracerOptions opts;
  opts.slow_threshold_us = 1000;
  opts.normal_reservoir = 0;  // drop every normal trace
  tr.configure(opts);

  std::vector<std::uint64_t> slow_ids;
  std::vector<std::uint64_t> errored_ids;
  std::vector<std::uint64_t> normal_ids;
  for (int i = 0; i < 16; ++i) {
    {
      Span root = Span::root("test.tail.slow");
      root.set_duration_us(5000);
      slow_ids.push_back(root.trace_id());
    }
    {
      Span root = Span::root("test.tail.errored");
      root.tag("error", "boom");
      root.set_duration_us(10);
      errored_ids.push_back(root.trace_id());
    }
    {
      Span root = Span::root("test.tail.normal");
      root.set_duration_us(10);
      normal_ids.push_back(root.trace_id());
    }
  }
  for (auto id : slow_ids) {
    EXPECT_EQ(tr.trace(id).size(), 1u) << "slow trace must be kept";
  }
  for (auto id : errored_ids) {
    EXPECT_EQ(tr.trace(id).size(), 1u) << "errored trace must be kept";
  }
  for (auto id : normal_ids) {
    EXPECT_TRUE(tr.trace(id).empty()) << "normal trace must be sampled out";
  }
}

TEST(TailSamplingTest, ErrorStatusTagMarksTraceErrored) {
  Tracer& tr = tracer();
  TracerConfigGuard guard;
  tr.clear();
  TracerOptions opts;
  opts.normal_reservoir = 0;
  tr.configure(opts);
  std::uint64_t tid = 0;
  {
    Span root = Span::root("test.tail.status");
    root.tag("status", "error");
    tid = root.trace_id();
  }
  EXPECT_EQ(tr.trace(tid).size(), 1u);
  auto drained = tr.drain_completed();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_TRUE(drained[0].errored);
  EXPECT_FALSE(drained[0].slow);
}

TEST(TailSamplingTest, NormalTracesBoundedByReservoir) {
  Tracer& tr = tracer();
  TracerConfigGuard guard;
  tr.clear();
  TracerOptions opts;
  opts.slow_threshold_us = 0;  // nothing is slow
  opts.normal_reservoir = 4;
  tr.configure(opts);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 64; ++i) {
    Span root = Span::root("test.tail.reservoir");
    root.set_duration_us(10);
    ids.push_back(root.trace_id());
  }
  std::size_t resident = 0;
  for (auto id : ids) {
    resident += tr.trace(id).empty() ? 0 : 1;
  }
  EXPECT_LE(resident, 4u);
  EXPECT_GT(resident, 0u);
}

TEST(TailSamplingTest, ReservoirSamplingIsDeterministic) {
  Tracer& tr = tracer();
  TracerConfigGuard guard;
  const auto run = [&tr] {
    tr.clear();
    TracerOptions opts;
    opts.slow_threshold_us = 0;
    opts.normal_reservoir = 4;
    tr.configure(opts);
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 64; ++i) {
      Span root = Span::root("test.tail.replay");
      root.set_duration_us(10);
      ids.push_back(root.trace_id());
    }
    // Which of the 64 (by position) survived — trace ids differ between
    // runs, positions must not.
    std::vector<int> kept;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (!tr.trace(ids[i]).empty()) kept.push_back(static_cast<int>(i));
    }
    return kept;
  };
  EXPECT_EQ(run(), run());
}

TEST(TailSamplingTest, ChildSpansBufferUntilRootCloses) {
  Tracer& tr = tracer();
  TracerConfigGuard guard;
  tr.clear();
  tr.configure(TracerOptions{});
  std::uint64_t tid = 0;
  {
    Span root = Span::root("test.tail.buffered");
    tid = root.trace_id();
    {
      Span child("test.tail.child");
      (void)child;
    }
    // Root still open: nothing visible, nothing drainable yet.
    EXPECT_TRUE(tr.trace(tid).empty());
    EXPECT_TRUE(tr.drain_completed().empty());
  }
  EXPECT_EQ(tr.trace(tid).size(), 2u);
  auto drained = tr.drain_completed();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].trace_id, tid);
  EXPECT_EQ(drained[0].root_name, "test.tail.buffered");
  ASSERT_EQ(drained[0].spans.size(), 2u);
  EXPECT_EQ(drained[0].spans.back().name, "test.tail.buffered");
  // Drain moves traces out; a second drain is empty.
  EXPECT_TRUE(tr.drain_completed().empty());
}

TEST(TailSamplingTest, DrainRespectsMaxAndOrder) {
  Tracer& tr = tracer();
  TracerConfigGuard guard;
  tr.clear();
  tr.configure(TracerOptions{});
  for (int i = 0; i < 5; ++i) {
    Span root = Span::root("test.tail.drain" + std::to_string(i));
  }
  auto first = tr.drain_completed(2);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].root_name, "test.tail.drain0");
  EXPECT_EQ(first[1].root_name, "test.tail.drain1");
  auto rest = tr.drain_completed();
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[2].root_name, "test.tail.drain4");
}

TEST(TailSamplingTest, SlowlogRowsCarryRootOpTag) {
  Tracer& tr = tracer();
  TracerConfigGuard guard;
  tr.clear();
  TracerOptions opts;
  opts.slow_threshold_us = 1000;
  tr.configure(opts);
  {
    Span root = Span::root("test.tail.slowop");
    emit_span(root.context(), "test.tail.inner", 0, 2000);
    root.set_duration_us(3000);
  }
  const auto slow = tr.slow_ops();
  ASSERT_GE(slow.size(), 2u);
  for (const auto& s : slow) {
    bool has_op = false;
    for (const auto& [k, v] : s.tags) {
      if (k == "op") {
        has_op = true;
        EXPECT_EQ(v, "test.tail.slowop");
      }
    }
    EXPECT_TRUE(has_op) << s.name;
  }
}

TEST(TailSamplingTest, SlowlogCapacityIsConfigurable) {
  Tracer& tr = tracer();
  TracerConfigGuard guard;
  tr.clear();
  TracerOptions opts;
  opts.slow_threshold_us = 1000;
  opts.slowlog_capacity = 3;
  tr.configure(opts);
  for (int i = 0; i < 10; ++i) {
    Span root = Span::root("test.tail.cap");
    root.set_duration_us(2000 + i * 100);
  }
  EXPECT_EQ(tr.slow_ops().size(), 3u);
  // Slowest first, so the largest durations survived the trim.
  EXPECT_EQ(tr.slow_ops()[0].duration_us, 2900);
}

TEST(SuppressScopeTest, SuppressesSpansAndEmit) {
  Tracer& tr = tracer();
  TracerConfigGuard guard;
  tr.clear();
  tr.configure(TracerOptions{});
  EXPECT_FALSE(suppressed());
  std::uint64_t tid = 0;
  {
    SuppressScope scope;
    EXPECT_TRUE(suppressed());
    Span root = Span::root("test.suppressed");
    EXPECT_FALSE(root.active());
    tid = root.trace_id();
    emit_span(TraceContext{1234, 1}, "test.suppressed.emit", 0, 10);
  }
  EXPECT_FALSE(suppressed());
  EXPECT_EQ(tid, 0u);
  EXPECT_TRUE(tr.drain_completed().empty());
  // Nesting: two scopes, suppression holds until both close.
  {
    SuppressScope outer;
    {
      SuppressScope inner;
      EXPECT_TRUE(suppressed());
    }
    EXPECT_TRUE(suppressed());
  }
  EXPECT_FALSE(suppressed());
}

TEST(TracerOptionsTest, FromEnvReadsKnobs) {
  ::setenv("HPCLA_SLOW_OP_US", "1234", 1);
  ::setenv("HPCLA_SLOWLOG_CAP", "7", 1);
  const TracerOptions opts = TracerOptions::from_env();
  EXPECT_EQ(opts.slow_threshold_us, 1234);
  EXPECT_EQ(opts.slowlog_capacity, 7u);
  ::unsetenv("HPCLA_SLOW_OP_US");
  ::unsetenv("HPCLA_SLOWLOG_CAP");
  const TracerOptions defaults = TracerOptions::from_env();
  EXPECT_EQ(defaults.slow_threshold_us, 50'000);
  EXPECT_EQ(defaults.slowlog_capacity, 32u);
}

TEST(TracerOptionsTest, FromEnvRejectsGarbage) {
  ::setenv("HPCLA_SLOW_OP_US", "not-a-number", 1);
  ::setenv("HPCLA_SLOWLOG_CAP", "-5", 1);
  const TracerOptions opts = TracerOptions::from_env();
  EXPECT_EQ(opts.slow_threshold_us, 50'000);
  EXPECT_EQ(opts.slowlog_capacity, 32u);
  ::unsetenv("HPCLA_SLOW_OP_US");
  ::unsetenv("HPCLA_SLOWLOG_CAP");
}

TEST(TracerTest, ExplicitDurationOverridesMeasurement) {
  Tracer& tr = tracer();
  tr.clear();
  std::uint64_t tid = 0;
  {
    Span root = Span::root("test.explicit");
    tid = root.trace_id();
    root.set_duration_us(123'456);
  }
  const auto spans = tr.trace(tid);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].duration_us, 123'456);
  tr.clear();
}

}  // namespace
}  // namespace hpcla::telemetry
