#include "common/status.hpp"

#include <gtest/gtest.h>

namespace hpcla {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  EXPECT_EQ(invalid_argument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(not_found("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(already_exists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(failed_precondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(timeout("x").code(), StatusCode::kTimeout);
  EXPECT_EQ(resource_exhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(internal_error("x").code(), StatusCode::kInternal);
  EXPECT_EQ(not_found("missing table").message(), "missing table");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(not_found("key k").to_string(), "NOT_FOUND: key k");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(not_found("a"), not_found("a"));
  EXPECT_FALSE(not_found("a") == not_found("b"));
  EXPECT_FALSE(not_found("a") == invalid_argument("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = not_found("gone");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
  EXPECT_THROW((void)r.value(), BadResultAccess);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, ConstructingFromOkStatusThrows) {
  EXPECT_THROW(Result<int>{Status::ok()}, BadResultAccess);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string(1000, 'x');
  std::string taken = std::move(r).value();
  EXPECT_EQ(taken.size(), 1000u);
}

Status fails_then_propagates(bool fail) {
  HPCLA_RETURN_IF_ERROR(fail ? timeout("deadline") : Status::ok());
  return Status::ok();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(fails_then_propagates(false).is_ok());
  EXPECT_EQ(fails_then_propagates(true).code(), StatusCode::kTimeout);
}

TEST(CheckTest, CheckThrowsWithLocation) {
  try {
    HPCLA_CHECK_MSG(1 == 2, "math is broken");
    FAIL() << "expected throw";
  } catch (const BadResultAccess& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("math is broken"), std::string::npos);
  }
}

TEST(CheckTest, CheckPassesSilently) {
  EXPECT_NO_THROW(HPCLA_CHECK(2 + 2 == 4));
}

TEST(StatusCodeTest, AllNamesDistinct) {
  EXPECT_EQ(status_code_name(StatusCode::kOk), "OK");
  EXPECT_EQ(status_code_name(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_EQ(status_code_name(StatusCode::kCorruption), "CORRUPTION");
}

}  // namespace
}  // namespace hpcla
