// Tests for gossip membership: rumor spread, failure suspicion, recovery,
// the classic O(log N) convergence property, and message-drop injection.
#include "cassalite/gossip.hpp"

#include <gtest/gtest.h>

#include "common/faultsim.hpp"

namespace hpcla::cassalite {
namespace {

GossipOptions opts(std::size_t nodes, std::uint64_t seed = 1) {
  GossipOptions o;
  o.node_count = nodes;
  o.fanout = 2;
  o.suspect_after_rounds = 6;
  o.seed = seed;
  return o;
}

TEST(GossipTest, HealthyClusterConverges) {
  Gossiper g(opts(16));
  g.run(20);
  EXPECT_TRUE(g.converged());
  // Everyone knows a recent heartbeat of everyone.
  for (std::size_t o = 0; o < 16; ++o) {
    for (std::size_t t = 0; t < 16; ++t) {
      EXPECT_FALSE(g.suspects(o, t)) << o << " suspects " << t;
      if (o != t) {
        EXPECT_GT(g.known_heartbeat(o, t), 0);
      }
    }
  }
}

TEST(GossipTest, DeadNodeSuspectedByAllWithinWindow) {
  Gossiper g(opts(16));
  g.run(10);
  ASSERT_TRUE(g.converged());
  g.kill(5);
  // Within suspect_after_rounds + a small spread margin, every live node
  // suspects node 5 — and nobody else.
  g.run(12);
  EXPECT_EQ(g.suspicion_count(5), 15u);
  for (std::size_t t = 0; t < 16; ++t) {
    if (t == 5) continue;
    EXPECT_EQ(g.suspicion_count(t), 0u) << "false positive on " << t;
  }
}

TEST(GossipTest, RevivedNodeRejoins) {
  Gossiper g(opts(12));
  g.run(10);
  g.kill(3);
  g.run(12);
  ASSERT_EQ(g.suspicion_count(3), 11u);
  g.revive(3);
  g.run(10);
  EXPECT_EQ(g.suspicion_count(3), 0u);
  EXPECT_TRUE(g.converged());
}

TEST(GossipTest, DeadObserverHoldsStaleView) {
  Gossiper g(opts(8));
  g.run(10);
  g.kill(0);
  const auto hb_before = g.known_heartbeat(0, 1);
  g.run(10);
  // Node 0 learned nothing while dead.
  EXPECT_EQ(g.known_heartbeat(0, 1), hb_before);
  // And the live nodes' view of each other kept advancing.
  EXPECT_GT(g.known_heartbeat(1, 2), hb_before);
}

TEST(GossipTest, SelfIsNeverSuspected) {
  Gossiper g(opts(4));
  g.run(30);
  for (std::size_t n = 0; n < 4; ++n) EXPECT_FALSE(g.suspects(n, n));
}

TEST(GossipTest, RumorSpreadIsLogarithmic) {
  // A freshly revived node's new generation must reach everyone within
  // c*log2(N) rounds — gossip's signature property. We check the spread of
  // node 0's resurrection heartbeat.
  for (std::size_t nodes : {8u, 32u, 128u}) {
    Gossiper g(opts(nodes, /*seed=*/7));
    g.run(5);
    g.kill(0);
    g.run(8);
    g.revive(0);
    const std::int64_t resurrection_hb = g.known_heartbeat(0, 0);
    // Generous constant: fanout 2, bidirectional merges.
    std::size_t rounds = 0;
    const std::size_t budget = 6 * static_cast<std::size_t>(
        std::ceil(std::log2(static_cast<double>(nodes)))) + 6;
    while (rounds < budget) {
      g.step();
      ++rounds;
      std::size_t informed = 0;
      for (std::size_t o = 0; o < nodes; ++o) {
        informed += g.known_heartbeat(o, 0) >= resurrection_hb ? 1 : 0;
      }
      if (informed == nodes) break;
    }
    std::size_t informed = 0;
    for (std::size_t o = 0; o < nodes; ++o) {
      informed += g.known_heartbeat(o, 0) >= resurrection_hb ? 1 : 0;
    }
    EXPECT_EQ(informed, nodes) << "spread incomplete for N=" << nodes
                               << " after " << rounds << " rounds";
  }
}

class GossipManyFailuresTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GossipManyFailuresTest, MinoritySuspectedExactly) {
  const std::size_t kills = GetParam();
  Gossiper g(opts(16, /*seed=*/kills + 1));
  g.run(10);
  for (std::size_t k = 0; k < kills; ++k) g.kill(k);
  g.run(14);
  for (std::size_t t = 0; t < 16; ++t) {
    const std::size_t expected = t < kills ? 16 - kills : 0;
    EXPECT_EQ(g.suspicion_count(t), expected) << "target " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Kills, GossipManyFailuresTest,
                         ::testing::Values(1, 3, 5, 7));

// ----------------------------------------------------------- drop injection

TEST(GossipFaultTest, PartialDropsSlowButDontStopConvergence) {
  // Rounds for a revived node's resurrection heartbeat to reach everyone,
  // with an optional injector dropping exchanges in flight.
  const auto spread_rounds = [](FaultInjector* injector) {
    Gossiper g(opts(16, /*seed=*/9));
    if (injector != nullptr) g.set_fault_injector(injector);
    g.run(5);
    g.kill(0);
    g.run(8);
    g.revive(0);
    const std::int64_t resurrection_hb = g.known_heartbeat(0, 0);
    for (std::size_t rounds = 1; rounds <= 200; ++rounds) {
      g.step();
      std::size_t informed = 0;
      for (std::size_t o = 0; o < 16; ++o) {
        informed += g.known_heartbeat(o, 0) >= resurrection_hb ? 1 : 0;
      }
      if (informed == 16) return rounds;
    }
    return static_cast<std::size_t>(0);  // never spread
  };

  const std::size_t clean_rounds = spread_rounds(nullptr);
  ASSERT_GT(clean_rounds, 0u);

  // 40% of exchanges lost in flight: gossip's redundancy still spreads the
  // rumor everywhere, just in more rounds.
  FaultOptions fopts;
  fopts.seed = 5;
  fopts.gossip_drop_rate = 0.4;
  FaultInjector injector(16, fopts);
  const std::size_t lossy_rounds = spread_rounds(&injector);
  ASSERT_GT(lossy_rounds, 0u) << "rumor never fully spread under 40% loss";
  EXPECT_GE(lossy_rounds, clean_rounds);
  EXPECT_GT(injector.counts().gossip_drops, 0u);
}

TEST(GossipFaultTest, TotalLossLooksLikeEveryoneDied) {
  // Drop rate 1.0: no exchange ever merges, so heartbeats never propagate
  // and after the suspicion window every node suspects every other node —
  // a full partition is indistinguishable from total failure.
  FaultOptions fopts;
  fopts.gossip_drop_rate = 1.0;
  FaultInjector injector(8, fopts);
  Gossiper g(opts(8));
  g.set_fault_injector(&injector);
  g.run(static_cast<std::size_t>(opts(8).suspect_after_rounds) + 4);
  EXPECT_FALSE(g.converged());
  for (std::size_t t = 0; t < 8; ++t) {
    EXPECT_EQ(g.suspicion_count(t), 7u) << "target " << t;
  }
}

TEST(GossipFaultTest, DropsDelaySuspicionOfARealDeath) {
  // With lossy links the rumor of a death spreads slower: after the same
  // number of rounds, fewer nodes suspect the dead node than in the
  // lossless run (deterministic at these seeds).
  const auto suspicions_after = [](FaultInjector* injector) {
    Gossiper g(opts(16, /*seed=*/3));
    if (injector != nullptr) g.set_fault_injector(injector);
    g.run(10);
    g.kill(5);
    g.run(8);  // suspect_after_rounds + 2: mid-spread, not fully unanimous
    return g.suspicion_count(5);
  };
  FaultOptions fopts;
  fopts.seed = 17;
  fopts.gossip_drop_rate = 0.6;
  FaultInjector injector(16, fopts);
  const std::size_t lossless = suspicions_after(nullptr);
  const std::size_t lossy = suspicions_after(&injector);
  EXPECT_GT(lossless, 0u);
  EXPECT_LE(lossy, lossless);
  // Either way the cluster eventually reaches unanimous suspicion.
  Gossiper g(opts(16, /*seed=*/3));
  FaultInjector injector2(16, fopts);
  g.set_fault_injector(&injector2);
  g.run(10);
  g.kill(5);
  g.run(60);
  EXPECT_EQ(g.suspicion_count(5), 15u);
}

// -------------------------------------------------- asymmetric partitions

TEST(GossipFaultTest, AsymmetricLinkCutSuspectsOnlyTheUnreachableDirection) {
  // One-way drop 0->1 on a two-node cluster. Exchanges initiated by node 0
  // die at the SYN; exchanges initiated by node 1 deliver its digest to
  // node 0 but the ACK back to node 1 is lost. Rumors therefore flow
  // 1 -> 0 only: node 0 keeps a fresh view of node 1 while node 1 never
  // hears from node 0 — suspicion must be exactly one-sided.
  FaultOptions fopts;
  FaultInjector injector(2, fopts);  // no clock: virtual now stays 0
  injector.partition_link(0, 1, 0, INT64_MAX / 2);

  GossipOptions o;
  o.node_count = 2;
  o.fanout = 1;
  o.suspect_after_rounds = 4;
  o.seed = 21;
  Gossiper g(o);
  g.set_fault_injector(&injector);
  g.run(30);

  EXPECT_FALSE(g.suspects(0, 1)) << "healthy direction falsely suspected";
  EXPECT_GT(g.known_heartbeat(0, 1), 0);
  EXPECT_TRUE(g.suspects(1, 0)) << "cut direction never suspected";
  EXPECT_GT(injector.counts().partition_drops, 0u);
}

TEST(GossipFaultTest, HealedAsymmetricLinkClearsSuspicion) {
  FaultOptions fopts;
  FaultInjector injector(2, fopts);
  injector.partition_link(0, 1, 0, INT64_MAX / 2);
  GossipOptions o;
  o.node_count = 2;
  o.fanout = 1;
  o.suspect_after_rounds = 4;
  o.seed = 22;
  Gossiper g(o);
  g.set_fault_injector(&injector);
  g.run(20);
  ASSERT_TRUE(g.suspects(1, 0));

  injector.heal_partitions();
  g.run(10);
  EXPECT_FALSE(g.suspects(1, 0));
  EXPECT_TRUE(g.converged());
}

// ------------------------------------------------------- elastic membership

TEST(GossipTest, JoiningNodeGetsAGracePeriodBeforeSuspicion) {
  Gossiper g(opts(8));
  g.run(20);  // long past suspect_after_rounds: heartbeats are all large
  ASSERT_TRUE(g.converged());

  const std::size_t joiner = g.add_node();
  EXPECT_EQ(joiner, 8u);
  // Nobody suspects the newcomer just because its heartbeat is still
  // unknown — the suspicion window is anchored at its join round.
  for (std::size_t o = 0; o < 8; ++o) {
    EXPECT_FALSE(g.suspects(o, joiner)) << "observer " << o;
  }

  // Within the grace window its rumors spread and the cluster converges
  // with the newcomer as a first-class member.
  g.run(12);
  for (std::size_t o = 0; o <= 8; ++o) {
    EXPECT_FALSE(g.suspects(o, joiner)) << "observer " << o;
    if (o != joiner) EXPECT_GT(g.known_heartbeat(o, joiner), 0);
  }
  EXPECT_EQ(g.suspicion_count(joiner), 0u);

  // The joiner also learned about everyone else.
  for (std::size_t t = 0; t < 8; ++t) {
    EXPECT_FALSE(g.suspects(joiner, t)) << "target " << t;
    EXPECT_GT(g.known_heartbeat(joiner, t), 0);
  }
}

TEST(GossipTest, JoinerIsSuspectedIfItNeverSpeaks) {
  // The grace period is finite: a node that joins and then immediately
  // dies (never gossips once) is suspected after the window elapses.
  Gossiper g(opts(8));
  g.run(10);
  const std::size_t joiner = g.add_node();
  g.kill(joiner);
  g.run(static_cast<std::size_t>(opts(8).suspect_after_rounds) + 6);
  EXPECT_EQ(g.suspicion_count(joiner), 8u);
}

}  // namespace
}  // namespace hpcla::cassalite
