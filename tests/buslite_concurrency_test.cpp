// Race-hunting tests for the sharded buslite broker (DESIGN.md §8).
//
// These are written to be run under ThreadSanitizer (the CI tsan job
// builds and runs this binary): real threads, real interleavings, and
// assertions on the invariants the lock-free fetch path promises —
// per-partition offsets stay dense, fetched batches have no gaps or
// duplicates even while retention trims underneath the reader, and
// group commits from many threads never corrupt the committed map.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "buslite/broker.hpp"

namespace hpcla::buslite {
namespace {

TEST(BrokerConcurrencyTest, ConcurrentProducersSamePartitionDenseOffsets) {
  Broker b;
  ASSERT_TRUE(b.create_topic("t", {.partitions = 1}).is_ok());
  constexpr int kThreads = 4;
  constexpr int kEach = 500;
  std::vector<std::thread> producers;
  // Every producer uses the same key so all contention lands on one
  // partition mutex — the worst case for the sharded design.
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&b, t] {
      for (int i = 0; i < kEach; ++i) {
        auto r = b.produce("t", "hot-key", std::to_string(t * kEach + i), i);
        ASSERT_TRUE(r.is_ok());
      }
    });
  }
  for (auto& th : producers) th.join();

  ASSERT_EQ(b.end_offset("t", 0).value(), kThreads * kEach);
  auto batch = b.fetch("t", 0, 0, kThreads * kEach + 10);
  ASSERT_TRUE(batch.is_ok());
  ASSERT_EQ(batch->size(), static_cast<std::size_t>(kThreads * kEach));
  // Offsets dense and every produced value present exactly once.
  std::set<std::string> values;
  for (std::size_t i = 0; i < batch->size(); ++i) {
    EXPECT_EQ((*batch)[i].offset, static_cast<std::int64_t>(i));
    EXPECT_TRUE(values.insert((*batch)[i].value).second);
  }
  EXPECT_EQ(values.size(), static_cast<std::size_t>(kThreads * kEach));
}

TEST(BrokerConcurrencyTest, ConcurrentProducersDistinctPartitions) {
  Broker b;
  constexpr int kParts = 4;
  ASSERT_TRUE(b.create_topic("t", {.partitions = kParts}).is_ok());
  // One distinct-key producer per thread: mostly disjoint partitions, so
  // this exercises the uncontended fast path plus the shared topic-map
  // snapshot loads.
  constexpr int kThreads = 4;
  constexpr int kEach = 500;
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&b, t] {
      for (int i = 0; i < kEach; ++i) {
        ASSERT_TRUE(
            b.produce("t", "key-" + std::to_string(t), "v", i).is_ok());
      }
    });
  }
  for (auto& th : producers) th.join();
  std::int64_t total = 0;
  for (int p = 0; p < kParts; ++p) total += b.end_offset("t", p).value();
  EXPECT_EQ(total, kThreads * kEach);
  const auto m = b.metrics();
  EXPECT_EQ(m.produces, static_cast<std::uint64_t>(kThreads * kEach));
}

TEST(BrokerConcurrencyTest, FetchRacesRetentionTrim) {
  Broker b;
  ASSERT_TRUE(
      b.create_topic("t", {.partitions = 1, .retention_messages = 300})
          .is_ok());
  constexpr std::int64_t kTotal = 20000;
  std::atomic<bool> done{false};
  // Single producer: offset i always carries value std::to_string(i), so
  // readers can verify content against offset no matter where the
  // retention floor is when their fetch lands.
  std::thread producer([&b, &done] {
    for (std::int64_t i = 0; i < kTotal; ++i) {
      ASSERT_TRUE(b.produce("t", "k", std::to_string(i), i).is_ok());
    }
    done.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&b, &done] {
      std::int64_t next = 0;
      while (true) {
        const bool finished = done.load(std::memory_order_acquire);
        auto batch = b.fetch("t", 0, next, 64);
        ASSERT_TRUE(batch.is_ok());
        if (batch->empty()) {
          if (finished) break;
          continue;
        }
        // The batch may start past `next` (trim clamps forward) but must
        // itself be dense, in order, and content-correct.
        EXPECT_GE(batch->front().offset, next);
        std::int64_t expect = batch->front().offset;
        for (const auto& m : *batch) {
          EXPECT_EQ(m.offset, expect);
          EXPECT_EQ(m.value, std::to_string(expect));
          ++expect;
        }
        next = expect;
      }
    });
  }
  producer.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(b.end_offset("t", 0).value(), kTotal);
  EXPECT_EQ(b.begin_offset("t", 0).value(), kTotal - 300);
  EXPECT_GT(b.metrics().messages_trimmed, 0u);
}

TEST(BrokerConcurrencyTest, ConcurrentGroupCommits) {
  Broker b;
  constexpr int kParts = 8;
  ASSERT_TRUE(b.create_topic("t", {.partitions = kParts}).is_ok());
  constexpr int kThreads = 4;
  constexpr int kRounds = 250;
  std::vector<std::thread> committers;
  for (int t = 0; t < kThreads; ++t) {
    committers.emplace_back([&b, t] {
      const std::string group = "g" + std::to_string(t);
      for (int i = 1; i <= kRounds; ++i) {
        // Each thread owns its own group, hammering every partition —
        // adjacent (group, partition) keys land on different commit
        // shards, concurrent same-shard commits on different keys.
        for (int p = 0; p < kParts; ++p) {
          ASSERT_TRUE(b.commit(group, "t", p, i).is_ok());
          auto c = b.committed(group, "t", p);
          ASSERT_TRUE(c.is_ok());
          // Own group: nobody else writes it, so reads see our last write.
          EXPECT_EQ(c.value(), i);
        }
      }
    });
  }
  for (auto& th : committers) th.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int p = 0; p < kParts; ++p) {
      EXPECT_EQ(b.committed("g" + std::to_string(t), "t", p).value(), kRounds);
    }
  }
  EXPECT_EQ(b.metrics().commits,
            static_cast<std::uint64_t>(kThreads * kRounds * kParts));
}

TEST(BrokerConcurrencyTest, ProducersRaceConsumersEndToEnd) {
  Broker b;
  ASSERT_TRUE(b.create_topic("t", {.partitions = 4}).is_ok());
  constexpr int kThreads = 3;
  constexpr int kEach = 1000;
  std::atomic<int> producers_left{kThreads};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&b, &producers_left, t] {
      for (int i = 0; i < kEach; ++i) {
        ASSERT_TRUE(b.produce("t", "key-" + std::to_string(t),
                              std::to_string(i), i)
                        .is_ok());
      }
      producers_left.fetch_sub(1, std::memory_order_release);
    });
  }
  // Consumer-group members drain while producers are still appending;
  // per-key values must come out strictly increasing (per-partition order)
  // and the union must be complete once the producers finish.
  std::atomic<std::uint64_t> consumed_total{0};
  constexpr int kMembers = 2;
  for (int m = 0; m < kMembers; ++m) {
    workers.emplace_back([&b, &producers_left, &consumed_total, m] {
      Consumer c(b, "g", "t", m, kMembers);
      std::map<std::string, int> last_by_key;
      while (true) {
        const bool finished =
            producers_left.load(std::memory_order_acquire) == 0;
        auto batch = c.poll(128);
        if (batch.empty()) {
          if (finished) break;
          continue;
        }
        for (auto& msg : batch) {
          const int v = std::stoi(msg.value);
          auto it = last_by_key.find(msg.key);
          if (it != last_by_key.end()) EXPECT_GT(v, it->second);
          last_by_key[msg.key] = v;
        }
        consumed_total.fetch_add(batch.size(), std::memory_order_relaxed);
      }
      c.commit();
    });
  }
  for (auto& th : workers) th.join();
  EXPECT_EQ(consumed_total.load(),
            static_cast<std::uint64_t>(kThreads * kEach));
  const auto m = b.metrics();
  EXPECT_EQ(m.produces, static_cast<std::uint64_t>(kThreads * kEach));
  EXPECT_EQ(m.messages_fetched, static_cast<std::uint64_t>(kThreads * kEach));
  EXPECT_GT(m.fetches, 0u);
}

}  // namespace
}  // namespace hpcla::buslite
