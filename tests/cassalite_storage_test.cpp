// Tests for memtable, sstable, bloom filter, commit log, and the per-node
// storage engine (flush, compaction, merge-on-read, crash recovery).
#include <gtest/gtest.h>

#include "cassalite/bloom.hpp"
#include "cassalite/commitlog.hpp"
#include "cassalite/memtable.hpp"
#include "cassalite/sstable.hpp"
#include "cassalite/storage_engine.hpp"
#include "common/rng.hpp"

namespace hpcla::cassalite {
namespace {

Row make_row(std::int64_t ts, std::int64_t seq, const std::string& msg,
             std::int64_t write_ts = 0) {
  Row r;
  r.key = ClusteringKey::of({Value(ts), Value(seq)});
  r.set("msg", msg);
  r.write_ts = write_ts;
  return r;
}

// ------------------------------------------------------------------- bloom

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bf(1000);
  for (int i = 0; i < 1000; ++i) bf.insert("key-" + std::to_string(i));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bf.may_contain("key-" + std::to_string(i)));
  }
}

TEST(BloomFilterTest, LowFalsePositiveRate) {
  BloomFilter bf(1000, 10);
  for (int i = 0; i < 1000; ++i) bf.insert("key-" + std::to_string(i));
  int fp = 0;
  for (int i = 0; i < 10000; ++i) {
    fp += bf.may_contain("absent-" + std::to_string(i)) ? 1 : 0;
  }
  EXPECT_LT(fp, 500);  // ~1% expected; generous bound
}

TEST(BloomFilterTest, TinyFilterStillCorrect) {
  BloomFilter bf(0);  // degenerate sizing clamps to minimum
  bf.insert("a");
  EXPECT_TRUE(bf.may_contain("a"));
}

// ---------------------------------------------------------------- memtable

TEST(MemtableTest, RowsSortedWithinPartition) {
  Memtable mt;
  mt.put("p", make_row(30, 0, "c"));
  mt.put("p", make_row(10, 0, "a"));
  mt.put("p", make_row(20, 0, "b"));
  std::vector<Row> rows;
  mt.read("p", {}, rows);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].find("msg")->as_text(), "a");
  EXPECT_EQ(rows[1].find("msg")->as_text(), "b");
  EXPECT_EQ(rows[2].find("msg")->as_text(), "c");
}

TEST(MemtableTest, SliceBounds) {
  Memtable mt;
  for (std::int64_t ts = 0; ts < 10; ++ts) {
    mt.put("p", make_row(ts, 0, "m" + std::to_string(ts)));
  }
  ClusteringSlice slice;
  slice.lower = ClusteringKey::of({Value(3)});
  slice.upper = ClusteringKey::of({Value(7)});
  std::vector<Row> rows;
  mt.read("p", slice, rows);
  ASSERT_EQ(rows.size(), 4u);  // ts 3,4,5,6 (keys {3,0}..{6,0} < {7})
  EXPECT_EQ(rows.front().key.parts[0].as_int(), 3);
  EXPECT_EQ(rows.back().key.parts[0].as_int(), 6);
}

TEST(MemtableTest, LastWriteWinsOnSameClusteringKey) {
  Memtable mt;
  mt.put("p", make_row(1, 0, "old", /*write_ts=*/1));
  mt.put("p", make_row(1, 0, "new", /*write_ts=*/2));
  mt.put("p", make_row(1, 0, "stale", /*write_ts=*/1));  // older: ignored
  std::vector<Row> rows;
  mt.read("p", {}, rows);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].find("msg")->as_text(), "new");
}

TEST(MemtableTest, PartitionsIsolated) {
  Memtable mt;
  mt.put("p1", make_row(1, 0, "x"));
  mt.put("p2", make_row(1, 0, "y"));
  std::vector<Row> rows;
  mt.read("p1", {}, rows);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].find("msg")->as_text(), "x");
  EXPECT_EQ(mt.partition_count(), 2u);
  EXPECT_EQ(mt.row_count(), 2u);
}

TEST(MemtableTest, MemoryGrowsAndDrainResets) {
  Memtable mt;
  EXPECT_EQ(mt.memory_bytes(), 0u);
  mt.put("p", make_row(1, 0, std::string(1000, 'x')));
  EXPECT_GT(mt.memory_bytes(), 1000u);
  auto drained = mt.drain();
  EXPECT_EQ(drained.size(), 1u);
  EXPECT_TRUE(mt.empty());
  EXPECT_EQ(mt.memory_bytes(), 0u);
}

TEST(MemtableTest, ReadMissingPartitionIsEmpty) {
  Memtable mt;
  std::vector<Row> rows;
  mt.read("absent", {}, rows);
  EXPECT_TRUE(rows.empty());
}

// ----------------------------------------------------------------- sstable

SSTablePtr build_sstable(std::uint64_t gen,
                         std::vector<std::pair<std::string, std::vector<Row>>>
                             parts) {
  std::vector<SSTable::Partition> ps;
  for (auto& [k, rows] : parts) ps.push_back(SSTable::Partition{k, rows});
  return std::make_shared<const SSTable>(gen, std::move(ps));
}

TEST(SSTableTest, ReadSlice) {
  auto sst = build_sstable(
      1, {{"p", {make_row(1, 0, "a"), make_row(2, 0, "b"), make_row(3, 0, "c")}}});
  ClusteringSlice slice;
  slice.lower = ClusteringKey::of({Value(2)});
  std::vector<Row> rows;
  EXPECT_TRUE(sst->read("p", slice, rows));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].find("msg")->as_text(), "b");
}

TEST(SSTableTest, BloomRejectsAbsentPartition) {
  auto sst = build_sstable(1, {{"present", {make_row(1, 0, "a")}}});
  std::vector<Row> rows;
  // Probe many absent keys: bloom must reject nearly all of them; any
  // accepted probe must still return no rows.
  int rejected = 0;
  for (int i = 0; i < 100; ++i) {
    const bool accepted = sst->read("absent-" + std::to_string(i), {}, rows);
    rejected += accepted ? 0 : 1;
  }
  EXPECT_TRUE(rows.empty());
  EXPECT_GT(rejected, 90);
}

TEST(SSTableTest, CountsRows) {
  auto sst = build_sstable(3, {{"a", {make_row(1, 0, "x")}},
                               {"b", {make_row(1, 0, "y"), make_row(2, 0, "z")}}});
  EXPECT_EQ(sst->generation(), 3u);
  EXPECT_EQ(sst->partition_count(), 2u);
  EXPECT_EQ(sst->row_count(), 3u);
}

TEST(CompactionTest, MergesAndReconciles) {
  auto old_run = build_sstable(
      1, {{"p", {make_row(1, 0, "old-1", 10), make_row(2, 0, "keep-2", 11)}}});
  auto new_run = build_sstable(
      2, {{"p", {make_row(1, 0, "new-1", 20)}}, {"q", {make_row(5, 0, "q5", 12)}}});
  auto merged = compact(3, {old_run, new_run});
  EXPECT_EQ(merged->partition_count(), 2u);
  EXPECT_EQ(merged->row_count(), 3u);

  std::vector<Row> rows;
  EXPECT_TRUE(merged->read("p", {}, rows));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].find("msg")->as_text(), "new-1");  // write_ts 20 wins
  EXPECT_EQ(rows[1].find("msg")->as_text(), "keep-2");
}

// --------------------------------------------------------------- commitlog

TEST(CommitLogTest, AppendReplayTruncate) {
  CommitLog log;
  WriteCommand c1{"t", "p1", make_row(1, 0, "a")};
  WriteCommand c2{"t", "p2", make_row(2, 0, "b")};
  EXPECT_EQ(log.append(c1), 1u);
  EXPECT_EQ(log.append(c2), 2u);
  EXPECT_EQ(log.last_lsn(), 2u);

  auto all = log.replay(0);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].partition_key, "p1");

  auto tail = log.replay(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].partition_key, "p2");

  log.truncate(1);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.replay(0).size(), 1u);
}

// ---------------------------------------------------------- storage engine

WriteCommand cmd(const std::string& pk, std::int64_t ts, std::int64_t seq,
                 const std::string& msg) {
  return WriteCommand{"events", pk, make_row(ts, seq, msg)};
}

TEST(StorageEngineTest, WriteThenRead) {
  StorageEngine eng;
  eng.apply(cmd("h1|MCE", 100, 0, "mce on c0-0c0s0n0"));
  eng.apply(cmd("h1|MCE", 101, 0, "mce on c0-0c0s1n2"));
  eng.apply(cmd("h2|MCE", 200, 0, "later"));

  ReadQuery q;
  q.table = "events";
  q.partition_key = "h1|MCE";
  auto result = eng.read(q);
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0].key.parts[0].as_int(), 100);
}

TEST(StorageEngineTest, ReadUnknownTableOrPartition) {
  StorageEngine eng;
  ReadQuery q;
  q.table = "nope";
  q.partition_key = "p";
  EXPECT_TRUE(eng.read(q).rows.empty());
  eng.apply(cmd("p", 1, 0, "x"));
  q.table = "events";
  q.partition_key = "other";
  EXPECT_TRUE(eng.read(q).rows.empty());
}

TEST(StorageEngineTest, LimitAndReverse) {
  StorageEngine eng;
  for (std::int64_t ts = 0; ts < 10; ++ts) {
    eng.apply(cmd("p", ts, 0, "m" + std::to_string(ts)));
  }
  ReadQuery q;
  q.table = "events";
  q.partition_key = "p";
  q.limit = 3;
  auto asc = eng.read(q);
  ASSERT_EQ(asc.rows.size(), 3u);
  EXPECT_TRUE(asc.truncated);
  EXPECT_EQ(asc.rows[0].key.parts[0].as_int(), 0);

  q.reverse = true;
  auto desc = eng.read(q);
  ASSERT_EQ(desc.rows.size(), 3u);
  EXPECT_EQ(desc.rows[0].key.parts[0].as_int(), 9);
}

TEST(StorageEngineTest, FlushAndMergeOnRead) {
  StorageOptions opts;
  opts.memtable_flush_bytes = 1;  // flush after every write
  StorageEngine eng(opts);
  eng.apply(cmd("p", 1, 0, "a"));
  eng.apply(cmd("p", 2, 0, "b"));
  eng.apply(cmd("p", 3, 0, "c"));
  EXPECT_GE(eng.metrics().memtable_flushes, 3u);

  ReadQuery q;
  q.table = "events";
  q.partition_key = "p";
  auto result = eng.read(q);
  ASSERT_EQ(result.rows.size(), 3u);  // merged across runs, still sorted
  EXPECT_EQ(result.rows[0].find("msg")->as_text(), "a");
  EXPECT_EQ(result.rows[2].find("msg")->as_text(), "c");
}

TEST(StorageEngineTest, OverwriteAcrossRunsLastWriteWins) {
  StorageOptions opts;
  opts.memtable_flush_bytes = 1;
  StorageEngine eng(opts);
  WriteCommand old_cmd{"events", "p", make_row(1, 0, "old", 0)};
  old_cmd.row.write_ts = 5;
  eng.apply(old_cmd);  // flushed to sstable
  WriteCommand new_cmd{"events", "p", make_row(1, 0, "new", 0)};
  new_cmd.row.write_ts = 9;
  eng.apply(new_cmd);

  ReadQuery q;
  q.table = "events";
  q.partition_key = "p";
  auto result = eng.read(q);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].find("msg")->as_text(), "new");
}

TEST(StorageEngineTest, CompactionCollapsesRuns) {
  StorageOptions opts;
  opts.memtable_flush_bytes = 1;
  opts.compaction_threshold = 4;
  StorageEngine eng(opts);
  for (std::int64_t i = 0; i < 16; ++i) {
    eng.apply(cmd("p", i, 0, "m" + std::to_string(i)));
  }
  EXPECT_GE(eng.metrics().compactions, 1u);
  ReadQuery q;
  q.table = "events";
  q.partition_key = "p";
  EXPECT_EQ(eng.read(q).rows.size(), 16u);
}

TEST(StorageEngineTest, PartitionKeysUnionAcrossRuns) {
  StorageOptions opts;
  opts.memtable_flush_bytes = 1;
  StorageEngine eng(opts);
  eng.apply(cmd("flushed", 1, 0, "x"));
  opts = StorageOptions{};  // default: stays in memtable
  eng.apply(cmd("inmem", 2, 0, "y"));
  auto keys = eng.partition_keys("events");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "flushed");
  EXPECT_EQ(keys[1], "inmem");
}

TEST(StorageEngineTest, CrashLosesNothingThanksToCommitLog) {
  StorageEngine eng;  // default flush threshold: everything sits in memtable
  for (std::int64_t i = 0; i < 100; ++i) {
    eng.apply(cmd("p", i, 0, "m" + std::to_string(i)));
  }
  const std::size_t replayed = eng.crash_and_recover();
  EXPECT_EQ(replayed, 100u);

  ReadQuery q;
  q.table = "events";
  q.partition_key = "p";
  auto result = eng.read(q);
  ASSERT_EQ(result.rows.size(), 100u);
  EXPECT_EQ(result.rows[42].find("msg")->as_text(), "m42");
}

TEST(StorageEngineTest, CrashAfterFlushReplaysOnlyTail) {
  StorageOptions opts;
  opts.memtable_flush_bytes = 1u << 10;
  StorageEngine eng(opts);
  for (std::int64_t i = 0; i < 50; ++i) {
    eng.apply(cmd("p", i, 0, std::string(100, 'x')));
  }
  eng.flush_all();
  eng.apply(cmd("p", 100, 0, "after-flush"));
  const std::size_t replayed = eng.crash_and_recover();
  EXPECT_LE(replayed, 2u);  // only the unflushed tail

  ReadQuery q;
  q.table = "events";
  q.partition_key = "p";
  EXPECT_EQ(eng.read(q).rows.size(), 51u);
}

TEST(StorageEngineTest, ApproximateRows) {
  StorageEngine eng;
  EXPECT_EQ(eng.approximate_rows("events"), 0u);
  for (std::int64_t i = 0; i < 10; ++i) eng.apply(cmd("p", i, 0, "m"));
  EXPECT_EQ(eng.approximate_rows("events"), 10u);
}

TEST(StorageEngineTest, MetricsProgress) {
  StorageEngine eng;
  eng.apply(cmd("p", 1, 0, "x"));
  ReadQuery q;
  q.table = "events";
  q.partition_key = "p";
  (void)eng.read(q);
  auto m = eng.metrics();
  EXPECT_EQ(m.writes, 1u);
  EXPECT_EQ(m.reads, 1u);
}

// Property sweep: N random writes across P partitions always read back
// complete and sorted, for several flush thresholds.
class StorageEnginePropertyTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StorageEnginePropertyTest, RandomWorkloadReadsBackSorted) {
  StorageOptions opts;
  opts.memtable_flush_bytes = GetParam();
  opts.compaction_threshold = 3;
  StorageEngine eng(opts);
  Rng rng(GetParam());
  constexpr int kWrites = 500;
  constexpr int kPartitions = 7;
  std::vector<int> per_partition(kPartitions, 0);
  for (int i = 0; i < kWrites; ++i) {
    const int p = static_cast<int>(rng.next_below(kPartitions));
    // Unique clustering key per write: (random ts, i).
    eng.apply(WriteCommand{
        "events", "part-" + std::to_string(p),
        make_row(static_cast<std::int64_t>(rng.next_below(1000)), i, "m")});
    per_partition[p]++;
  }
  for (int p = 0; p < kPartitions; ++p) {
    ReadQuery q;
    q.table = "events";
    q.partition_key = "part-" + std::to_string(p);
    auto result = eng.read(q);
    EXPECT_EQ(result.rows.size(), static_cast<std::size_t>(per_partition[p]));
    for (std::size_t i = 1; i < result.rows.size(); ++i) {
      EXPECT_TRUE(result.rows[i - 1].key < result.rows[i].key ||
                  result.rows[i - 1].key == result.rows[i].key);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FlushThresholds, StorageEnginePropertyTest,
                         ::testing::Values(1, 256, 4096, 1u << 20));

}  // namespace
}  // namespace hpcla::cassalite
