// Equivalence tests for the two-stage parallel shuffle (DESIGN.md §9):
// every wide operation must produce results identical to the sequential
// seed semantics — deterministic (sorted-by-key buckets, stable sorts) —
// for any worker count and any partition count, including empty, skewed,
// and single-key inputs. Also covers the shuffle observability surface
// (ShuffleRecord counts, skew, render_history), the lazy-lineage contract
// (no work and no records until an action; map stage once per wide op;
// labels pinned across deferral), and take()'s early exit.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "sparklite/dataset.hpp"
#include "sparklite/engine.hpp"

namespace hpcla::sparklite {
namespace {

Engine::Options opts(std::size_t workers) {
  Engine::Options o;
  o.workers = workers;
  return o;
}

using KV = std::pair<std::string, std::int64_t>;

/// Reference semantics: sequential driver-side reduce, sorted by key.
std::vector<KV> reference_reduce(const std::vector<KV>& data) {
  std::map<std::string, std::int64_t> totals;
  for (const auto& [k, v] : data) totals[k] += v;
  return {totals.begin(), totals.end()};
}

std::vector<KV> test_input(const char* shape) {
  std::vector<KV> data;
  const std::string s(shape);
  if (s == "empty") return data;
  if (s == "single_key") {
    for (int i = 0; i < 57; ++i) data.emplace_back("only", 1);
    return data;
  }
  if (s == "skewed") {
    // One dominant key plus a thin tail — the skew-metric design point.
    for (int i = 0; i < 4000; ++i) data.emplace_back("hot", 1);
    for (int i = 0; i < 40; ++i) {
      data.emplace_back("cold-" + std::to_string(i % 8), 1);
    }
    return data;
  }
  // mixed: many keys, deterministic pseudo-random multiplicity.
  for (int i = 0; i < 1000; ++i) {
    data.emplace_back("k" + std::to_string((i * 7919) % 131),
                      static_cast<std::int64_t>(i % 5 + 1));
  }
  return data;
}

class ShuffleEquivalenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ShuffleEquivalenceTest, ReduceByKeyMatchesReferenceAcrossPartitions) {
  const auto data = test_input(GetParam());
  const auto expected = reference_reduce(data);
  for (std::size_t parts = 1; parts <= 8; ++parts) {
    for (const std::size_t buckets : {std::size_t{0}, std::size_t{1},
                                      std::size_t{3}, std::size_t{8}}) {
      Engine e(opts(4));
      auto ds = Dataset<KV>::parallelize(e, data, parts);
      auto got = reduce_by_key(
                     ds, [](std::int64_t a, std::int64_t b) { return a + b; },
                     buckets)
                     .collect();
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, expected) << GetParam() << " parts=" << parts
                               << " buckets=" << buckets;
    }
  }
}

TEST_P(ShuffleEquivalenceTest, ResultsByteIdenticalAcrossWorkerCounts) {
  // Same partitioning, different parallelism: collect() must be
  // byte-identical (bucket layout and per-bucket order are functions of
  // the data, not the thread count).
  const auto data = test_input(GetParam());
  std::vector<std::vector<KV>> runs;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    Engine e(opts(workers));
    auto ds = Dataset<KV>::parallelize(e, data, 5);
    runs.push_back(
        reduce_by_key(ds, [](std::int64_t a, std::int64_t b) { return a + b; },
                      4)
            .collect());
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST_P(ShuffleEquivalenceTest, GroupByKeyGathersEveryValueInUpstreamOrder) {
  const auto data = test_input(GetParam());
  for (std::size_t parts = 1; parts <= 8; parts += 2) {
    Engine e(opts(4));
    auto ds = Dataset<KV>::parallelize(e, data, parts);
    auto grouped = group_by_key(ds, 4).collect();
    // Per key: value count and sum match; values from earlier elements of
    // the input appear before later ones when both land in one partition.
    std::map<std::string, std::int64_t> sums;
    std::size_t total = 0;
    for (const auto& [k, vs] : grouped) {
      for (auto v : vs) sums[k] += v;
      total += vs.size();
    }
    EXPECT_EQ(total, data.size());
    EXPECT_EQ(std::vector<KV>(sums.begin(), sums.end()),
              reference_reduce(data));
    // parts == 1 preserves the full input order per key.
    if (parts == 1) {
      std::unordered_map<std::string, std::vector<std::int64_t>> expected;
      for (const auto& [k, v] : data) expected[k].push_back(v);
      for (const auto& [k, vs] : grouped) EXPECT_EQ(vs, expected[k]) << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShuffleEquivalenceTest,
                         ::testing::Values("mixed", "empty", "single_key",
                                           "skewed"));

TEST(ShuffleJoinTest, CoPartitionedJoinMatchesReferenceAcrossPartitions) {
  std::vector<KV> left;
  std::vector<std::pair<std::string, std::string>> right;
  for (int i = 0; i < 300; ++i) {
    left.emplace_back("k" + std::to_string(i % 17), i);
  }
  for (int i = 0; i < 40; ++i) {
    right.emplace_back("k" + std::to_string(i % 23),
                       "r" + std::to_string(i));
  }
  // Reference: nested loops over the raw inputs.
  using Out = std::pair<std::string, std::pair<std::int64_t, std::string>>;
  std::vector<Out> expected;
  for (const auto& [lk, lv] : left) {
    for (const auto& [rk, rv] : right) {
      if (lk == rk) expected.emplace_back(lk, std::make_pair(lv, rv));
    }
  }
  std::sort(expected.begin(), expected.end());
  for (std::size_t lparts = 1; lparts <= 8; lparts += 3) {
    for (const std::size_t buckets : {std::size_t{1}, std::size_t{4}}) {
      Engine e(opts(4));
      auto lds = Dataset<KV>::parallelize(e, left, lparts);
      auto rds = Dataset<std::pair<std::string, std::string>>::parallelize(
          e, right, 3);
      auto got = join(lds, rds, buckets).collect();
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, expected) << "lparts=" << lparts
                               << " buckets=" << buckets;
    }
  }
}

TEST(ShuffleJoinTest, JoinIsDeterministicWithoutSorting) {
  // Two identical runs produce the identical byte sequence: bucket order,
  // sorted keys within a bucket, upstream value order.
  std::vector<KV> left{{"a", 1}, {"b", 2}, {"a", 3}, {"c", 4}};
  std::vector<KV> right{{"a", 10}, {"a", 11}, {"c", 12}};
  Engine e1(opts(4));
  Engine e2(opts(1));
  auto run = [&](Engine& e) {
    auto l = Dataset<KV>::parallelize(e, left, 2);
    auto r = Dataset<KV>::parallelize(e, right, 2);
    return join(l, r, 3).collect();
  };
  EXPECT_EQ(run(e1), run(e2));
}

TEST(ShuffleSortTest, RangePartitionedSortMatchesStableSort) {
  std::vector<int> data;
  for (int i = 0; i < 2000; ++i) data.push_back((i * 7919) % 257);
  for (std::size_t parts = 1; parts <= 8; parts += 2) {
    for (const std::size_t buckets : {std::size_t{1}, std::size_t{4},
                                      std::size_t{8}}) {
      Engine e(opts(4));
      auto ds = Dataset<int>::parallelize(e, data, parts);
      auto got = sort_by(ds, [](const int& v) { return v; }, buckets);
      EXPECT_EQ(got.partition_count(), buckets);
      auto expected = data;
      std::stable_sort(expected.begin(), expected.end());
      EXPECT_EQ(got.collect(), expected) << "parts=" << parts
                                         << " buckets=" << buckets;
    }
  }
}

TEST(ShuffleSortTest, SortIsStableForEqualKeys) {
  // Sort pairs by first only: seconds must keep input order per key, and
  // the result must match the sequential stable_sort exactly.
  std::vector<std::pair<int, int>> data;
  for (int i = 0; i < 500; ++i) data.emplace_back(i % 7, i);
  Engine e(opts(4));
  auto ds = Dataset<std::pair<int, int>>::parallelize(e, data, 6);
  auto got =
      sort_by(ds, [](const std::pair<int, int>& v) { return v.first; }, 4)
          .collect();
  auto expected = data;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  EXPECT_EQ(got, expected);
}

TEST(ShuffleSortTest, AllEqualKeysAndTinyInputs) {
  Engine e(opts(2));
  auto same = Dataset<int>::parallelize(e, std::vector<int>(100, 7), 4);
  EXPECT_EQ(sort_by(same, [](const int& v) { return v; }, 4).collect(),
            std::vector<int>(100, 7));
  auto empty = Dataset<int>::parallelize(e, {}, 4);
  EXPECT_TRUE(
      sort_by(empty, [](const int& v) { return v; }, 4).collect().empty());
  auto one = Dataset<int>::parallelize(e, {42}, 4);
  EXPECT_EQ(sort_by(one, [](const int& v) { return v; }, 4).collect(),
            std::vector<int>{42});
}

// ------------------------------------------------------ shuffle metrics

TEST(ShuffleMetricsTest, RecordsBucketsCountsAndSkew) {
  Engine e(opts(4));
  auto data = test_input("skewed");
  auto ds = Dataset<KV>::parallelize(e, data, 4);
  auto reduced = reduce_by_key(
      ds, [](std::int64_t a, std::int64_t b) { return a + b; }, 8);
  // The map-side scatter is deferred into the lineage: nothing has run and
  // nothing has been recorded until an action consumes the dataset.
  EXPECT_TRUE(e.shuffle_history().empty());
  EXPECT_EQ(e.metrics().stages, 0u);
  (void)reduced.collect();
  auto history = e.shuffle_history();
  ASSERT_EQ(history.size(), 1u);
  const auto& rec = *history[0];
  EXPECT_EQ(rec.label, "reduce_by_key");
  EXPECT_EQ(rec.map_tasks, 4u);
  EXPECT_EQ(rec.buckets, 8u);
  // Map-side combine collapses each partition to its distinct keys:
  // 9 keys spread over 4 upstream partitions bounds the scattered records.
  EXPECT_GE(rec.records, 9u);
  EXPECT_LE(rec.records, 4u * 9u);
  EXPECT_GE(rec.max_bucket, 1u);
  // One dominant key out of 9 over 8 buckets: visibly skewed.
  EXPECT_GT(rec.skew, 1.0);
  EXPECT_EQ(e.metrics().shuffles, 1u);
  EXPECT_EQ(e.metrics().shuffle_records, rec.records);
  // The deferred map stage ran exactly once; the action added its merge
  // stage on top (scan+combine+scatter fused, then the reduce stage).
  EXPECT_EQ(e.metrics().stages, 2u);
}

TEST(ShuffleMetricsTest, MapStageRunsOncePerWideOpAcrossActions) {
  Engine e(opts(4));
  auto ds = Dataset<KV>::parallelize(e, test_input("mixed"), 4);
  auto reduced = reduce_by_key(
      ds, [](std::int64_t a, std::int64_t b) { return a + b; }, 4);
  const auto first = reduced.collect();
  const auto stages_after_first = e.metrics().stages;
  // Re-running the action recomputes only the lazy reduce side: the bucket
  // matrix is shared state, so exactly one extra stage per action.
  EXPECT_EQ(reduced.collect(), first);
  EXPECT_EQ(e.metrics().stages, stages_after_first + 1);
  EXPECT_EQ(e.metrics().shuffles, 1u);
}

TEST(ShuffleMetricsTest, LazyShuffleRunsThroughNarrowTransforms) {
  // A narrow transform of a shuffled dataset inherits the deferred map
  // stage; consuming the derived dataset triggers it.
  Engine e(opts(2));
  auto ds = Dataset<KV>::parallelize(e, test_input("mixed"), 3);
  auto doubled =
      reduce_by_key(ds, [](std::int64_t a, std::int64_t b) { return a + b; })
          .map([](const KV& kv) {
            return std::make_pair(kv.first, kv.second * 2);
          });
  EXPECT_TRUE(e.shuffle_history().empty());
  auto got = doubled.collect();
  std::sort(got.begin(), got.end());
  auto expected = reference_reduce(test_input("mixed"));
  for (auto& [k, v] : expected) v *= 2;
  EXPECT_EQ(got, expected);
  EXPECT_EQ(e.shuffle_history().size(), 1u);
}

TEST(ShuffleMetricsTest, StageLabelsSurviveDeferredExecution) {
  // The caller labels the scan before the wide op and the merge before the
  // action; the deferred map stage must claim the first label and re-park
  // the second, so the history shows both in order.
  Engine e(opts(2));
  auto ds = Dataset<KV>::parallelize(e, test_input("mixed"), 3);
  e.set_next_stage_label("job:scan+combine");
  auto reduced = reduce_by_key(
      ds, [](std::int64_t a, std::int64_t b) { return a + b; }, 2);
  e.set_next_stage_label("job:merge");
  (void)reduced.collect();
  std::vector<std::string> labels;
  for (const auto& s : e.stage_history()) labels.push_back(s.label);
  EXPECT_EQ(labels, (std::vector<std::string>{"job:scan+combine",
                                              "job:merge"}));
}

TEST(ShuffleMetricsTest, UnlabeledFusedStageNamesItself) {
  Engine e(opts(2));
  auto ds = Dataset<KV>::parallelize(e, test_input("mixed"), 3);
  (void)reduce_by_key(ds, [](std::int64_t a, std::int64_t b) { return a + b; })
      .collect();
  const auto history = e.stage_history();
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].label, "reduce_by_key:fused");
}

TEST(ShuffleMetricsTest, RenderHistoryShowsShuffleTable) {
  Engine e(opts(2));
  auto ds = Dataset<KV>::parallelize(e, test_input("mixed"), 3);
  (void)reduce_by_key(ds, [](std::int64_t a, std::int64_t b) { return a + b; })
      .collect();
  const auto art = e.render_history();
  EXPECT_NE(art.find("shuffle"), std::string::npos);
  EXPECT_NE(art.find("reduce_by_key"), std::string::npos);
  EXPECT_NE(art.find("skew"), std::string::npos);
}

TEST(ShuffleMetricsTest, JoinAndSortRecordShuffles) {
  Engine e(opts(2));
  auto l = Dataset<KV>::parallelize(e, {{"a", 1}}, 1);
  auto r = Dataset<KV>::parallelize(e, {{"a", 2}}, 1);
  (void)join(l, r).collect();
  auto ints = Dataset<int>::parallelize(e, {3, 1, 2}, 2);
  (void)sort_by(ints, [](const int& v) { return v; }).collect();
  std::vector<std::string> labels;
  for (const auto& rec : e.shuffle_history()) labels.push_back(rec->label);
  EXPECT_EQ(labels, (std::vector<std::string>{"join:left", "join:right",
                                              "sort_by"}));
}

// ------------------------------------------------------------- take()

TEST(TakeTest, StopsComputingOnceSatisfied) {
  Engine e(opts(2));
  std::atomic<int> computes{0};
  std::vector<Dataset<int>::Partition> parts;
  for (int p = 0; p < 8; ++p) {
    parts.push_back({[&computes, p](const TaskContext&) {
                       computes++;
                       return std::vector<int>{p * 2, p * 2 + 1};
                     },
                     -1});
  }
  Dataset<int> ds(e, std::move(parts));
  EXPECT_EQ(ds.take(3), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(computes.load(), 2);  // partitions 0 and 1 only
  computes = 0;
  EXPECT_TRUE(ds.take(0).empty());
  EXPECT_EQ(computes.load(), 0);
  EXPECT_EQ(ds.take(100).size(), 16u);  // fewer than asked: whole dataset
}

TEST(TakeTest, TakeOverShuffledLineage) {
  Engine e(opts(4));
  auto ds = Dataset<KV>::parallelize(e, test_input("mixed"), 6);
  auto reduced = reduce_by_key(
      ds, [](std::int64_t a, std::int64_t b) { return a + b; }, 8);
  auto first = reduced.take(5);
  EXPECT_EQ(first.size(), 5u);
  // take() preserves partition order: the same elements lead collect().
  auto all = reduced.collect();
  EXPECT_TRUE(std::equal(first.begin(), first.end(), all.begin()));
}

}  // namespace
}  // namespace hpcla::sparklite
