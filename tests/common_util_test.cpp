// Tests for hash, rng, strings, stats, thread_pool, logging.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/hash.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"

namespace hpcla {
namespace {

// ----------------------------------------------------------------- hashing

TEST(HashTest, Murmur3IsDeterministic) {
  EXPECT_EQ(murmur3_64("hello"), murmur3_64("hello"));
  EXPECT_NE(murmur3_64("hello"), murmur3_64("hellp"));
  EXPECT_NE(murmur3_64("hello", 1), murmur3_64("hello", 2));
}

TEST(HashTest, Murmur3HandlesAllTailLengths) {
  // Exercise every switch case (len % 16 in 0..15) plus a multi-block input.
  std::set<std::uint64_t> seen;
  std::string s;
  for (int len = 0; len <= 40; ++len) {
    seen.insert(murmur3_64(s));
    s.push_back(static_cast<char>('a' + len % 26));
  }
  EXPECT_EQ(seen.size(), 41u);  // no collisions on this trivial family
}

TEST(HashTest, TokensSpreadAcrossSignRange) {
  int neg = 0;
  int pos = 0;
  for (int i = 0; i < 1000; ++i) {
    Token t = token_for_key("key-" + std::to_string(i));
    (t < 0 ? neg : pos)++;
  }
  EXPECT_GT(neg, 300);
  EXPECT_GT(pos, 300);
}

TEST(HashTest, Fnv1aConstexpr) {
  constexpr std::uint64_t h = fnv1a_64("abc");
  EXPECT_EQ(h, fnv1a_64("abc"));
  EXPECT_NE(fnv1a_64("abc"), fnv1a_64("abd"));
}

// --------------------------------------------------------------------- rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng r(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    auto v = r.uniform_int(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, PoissonMeanApproximatelyCorrect) {
  Rng r(11);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 20000; ++i) {
    small.add(static_cast<double>(r.poisson(3.0)));
    large.add(static_cast<double>(r.poisson(100.0)));
  }
  EXPECT_NEAR(small.mean(), 3.0, 0.1);
  EXPECT_NEAR(large.mean(), 100.0, 1.0);
}

TEST(RngTest, ExponentialMean) {
  Rng r(13);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.exponential(0.5));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
}

TEST(RngTest, ZipfIsSkewedTowardLowRanks) {
  Rng r(17);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) counts[r.zipf(10, 1.2)]++;
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[4]);
  EXPECT_GT(counts[0], 4 * counts[9]);
}

TEST(RngTest, WeightedPickRespectsWeights) {
  Rng r(19);
  std::vector<double> w{1.0, 0.0, 9.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 10000; ++i) counts[r.weighted_pick(w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0] * 5);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(23);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(RngTest, HexStringFormat) {
  Rng r(29);
  auto s = r.hex_string(16);
  EXPECT_EQ(s.size(), 16u);
  for (char c : s) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
  }
}

// ----------------------------------------------------------------- strings

TEST(StringsTest, SplitPreservesEmptyFields) {
  auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitWhitespaceDropsEmpty) {
  auto parts = split_whitespace("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\r\n"), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(StringsTest, CaseAndAffixes) {
  EXPECT_EQ(to_lower("LustreError"), "lustreerror");
  EXPECT_TRUE(starts_with("c12-3c0s4n1", "c12"));
  EXPECT_FALSE(starts_with("c1", "c12"));
  EXPECT_TRUE(ends_with("error.log", ".log"));
  EXPECT_FALSE(ends_with("log", "error.log"));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join(std::vector<std::string>{"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join(std::vector<std::string>{}, ","), "");
}

TEST(StringsTest, ParseInt) {
  long long v = 0;
  EXPECT_TRUE(parse_int("123", v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(parse_int("-9223372036854775808", v));
  EXPECT_EQ(v, INT64_MIN);
  EXPECT_TRUE(parse_int("9223372036854775807", v));
  EXPECT_EQ(v, INT64_MAX);
  EXPECT_FALSE(parse_int("9223372036854775808", v));
  EXPECT_FALSE(parse_int("", v));
  EXPECT_FALSE(parse_int("-", v));
  EXPECT_FALSE(parse_int("12x", v));
  EXPECT_FALSE(parse_int("1 2", v));
}

TEST(StringsTest, FormatCount) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(-1234567), "-1,234,567");
}

// ------------------------------------------------------------------- stats

TEST(StatsTest, RunningStatsBasics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.cv(), 0.4, 1e-12);
}

TEST(StatsTest, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  Rng r(31);
  for (int i = 0; i < 1000; ++i) {
    double x = r.normal(10, 3);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StatsTest, MergeWithEmpty) {
  RunningStats a;
  RunningStats empty;
  a.add(5.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(StatsTest, Percentiles) {
  PercentileTracker p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_DOUBLE_EQ(p.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.percentile(1.0), 100.0);
  EXPECT_NEAR(p.percentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(p.percentile(0.99), 99.0, 1.0);
  PercentileTracker none;
  EXPECT_DOUBLE_EQ(none.percentile(0.5), 0.0);
}

TEST(StatsTest, RepeatedPercentileQueriesDoNotRescan) {
  PercentileTracker p;
  for (int i = 0; i < 1000; ++i) p.add(i);
  EXPECT_EQ(p.sort_passes(), 0u);
  (void)p.percentile(0.5);
  (void)p.percentile(0.9);
  (void)p.percentile(0.99);
  EXPECT_EQ(p.sort_passes(), 1u) << "queries on unchanged data must reuse "
                                    "the sorted buffer";
  // New samples invalidate the sorted state exactly once...
  p.add(-1.0);
  p.add(2000.0);
  EXPECT_DOUBLE_EQ(p.percentile(0.0), -1.0);
  EXPECT_DOUBLE_EQ(p.percentile(1.0), 2000.0);
  EXPECT_EQ(p.sort_passes(), 2u);
  // ...and interleaved add/query keeps answers correct (the historical bug:
  // add() left the stale sorted flag set, so later queries read garbage).
  (void)p.percentile(0.5);
  EXPECT_EQ(p.sort_passes(), 2u);
}

TEST(StatsTest, HistogramBinning) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);
  h.add(1.9);
  h.add(2.0);
  h.add(9.99);
  h.add(10.0);   // clamps to last bin
  h.add(-5.0);   // clamps to first bin
  EXPECT_EQ(h.bin(0), 3u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.bin(4), 2u);
  EXPECT_EQ(h.total(), 6u);
  auto [lo, hi] = h.bin_range(1);
  EXPECT_DOUBLE_EQ(lo, 2.0);
  EXPECT_DOUBLE_EQ(hi, 4.0);
}

TEST(StatsTest, HistogramWeights) {
  Histogram h(0.0, 1.0, 1);
  h.add(0.5, 10);
  EXPECT_EQ(h.bin(0), 10u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(StatsTest, HistogramAsciiRender) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5, 4);
  h.add(1.5, 2);
  auto art = h.render_ascii(10);
  EXPECT_NE(art.find("##########"), std::string::npos);  // full bar
  EXPECT_NE(art.find("#####\n"), std::string::npos);     // half bar
}

TEST(StatsTest, HistogramRejectsBadConfig) {
  EXPECT_ANY_THROW(Histogram(0.0, 0.0, 4));
  EXPECT_ANY_THROW(Histogram(0.0, 1.0, 0));
}

TEST(StatsTest, PearsonCorrelation) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  std::vector<double> z{5, 4, 3, 2, 1};
  std::vector<double> c{7, 7, 7, 7, 7};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(x, z), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(pearson_correlation(x, c), 0.0);
}

// ------------------------------------------------------------- thread pool

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 50) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPoolTest, WaitIdleDrainsQueue) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) pool.post([&] { done++; });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.post([&] { done++; });
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPoolTest, StealsFromBlockedWorkersQueue) {
  ThreadPool pool(2);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  // Park one worker on the gate. External posts round-robin across the two
  // deques, so roughly half of the following tasks land on the parked
  // worker's deque — the free worker must steal them to finish.
  pool.post([gate] { gate.wait(); });
  std::atomic<int> done{0};
  constexpr int kTasks = 100;
  for (int i = 0; i < kTasks; ++i) pool.post([&done] { done++; });
  while (done.load() < kTasks) std::this_thread::yield();
  EXPECT_GT(pool.steals(), 0u);
  release.set_value();
  pool.wait_idle();
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(4, [&](std::size_t) {
    // Inner loops run inline on the caller when the pool is saturated.
    for (int j = 0; j < 10; ++j) count++;
  });
  EXPECT_EQ(count.load(), 40);
}

// ----------------------------------------------------------------- logging

TEST(LoggingTest, LevelGate) {
  auto prev = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  HPCLA_LOG(kDebug) << "should be suppressed";
  set_log_level(prev);
}

}  // namespace
}  // namespace hpcla
