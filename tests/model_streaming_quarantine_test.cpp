// Poison-record quarantine: undecodable bus messages are forwarded to the
// dead-letter topic byte-for-byte (offline inspection + replay) instead of
// being silently dropped, and the good records still ingest.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/faultsim.hpp"
#include "model/ingest.hpp"
#include "model/keys.hpp"
#include "model/streaming_ingest.hpp"
#include "model/tables.hpp"

namespace hpcla::model {
namespace {

using cassalite::Cluster;
using cassalite::ClusterOptions;
using cassalite::ReadQuery;
using titanlog::EventRecord;
using titanlog::EventType;

constexpr UnixSeconds kT0 = 1489449600;  // 2017-03-14 00:00:00 UTC

struct Fixture {
  Cluster cluster{[] {
    ClusterOptions o;
    o.node_count = 4;
    o.replication_factor = 2;
    return o;
  }()};
  sparklite::Engine engine{sparklite::EngineOptions{.workers = 4}};

  Fixture() { HPCLA_CHECK(create_data_model(cluster).is_ok()); }
};

EventRecord event(UnixSeconds ts, EventType type, topo::NodeId node,
                  std::int64_t seq) {
  EventRecord e;
  e.ts = ts;
  e.type = type;
  e.node = node;
  e.seq = seq;
  e.message = "m";
  return e;
}

/// All messages currently on `topic`, in (partition, offset) order.
std::vector<buslite::Message> drain_topic(const buslite::Broker& broker,
                                          const std::string& topic) {
  std::vector<buslite::Message> out;
  const auto parts = broker.partition_count(topic);
  if (!parts.is_ok()) return out;
  for (int p = 0; p < parts.value(); ++p) {
    auto fetched = broker.fetch(topic, p, 0, 1u << 20);
    if (!fetched.is_ok()) continue;
    for (auto& m : fetched.value()) out.push_back(std::move(m));
  }
  return out;
}

TEST(QuarantineTest, DeadLetterTopicNaming) {
  EXPECT_EQ(dead_letter_topic("events"), "events.dlq");
}

TEST(QuarantineTest, HandCorruptedMessagesLandOnDlqByteForByte) {
  Fixture f;
  buslite::Broker broker;
  ASSERT_TRUE(broker.create_topic("events", {.partitions = 2}).is_ok());
  // Two distinct corruptions plus one good record.
  ASSERT_TRUE(broker.produce("events", "c0-0c0s0n0", "not json at all", 1000)
                  .is_ok());
  ASSERT_TRUE(
      broker.produce("events", "c1-0c0s0n1", R"({"ts": 12})", 2000).is_ok());
  EventPublisher pub(broker, "events");
  ASSERT_TRUE(pub.publish(event(kT0, EventType::kMachineCheck, 3, 0)).is_ok());

  StreamingIngestor ingestor(f.cluster, f.engine, broker, "events");
  const auto report = ingestor.process_available();
  EXPECT_EQ(report.decode_failures, 2u);
  EXPECT_EQ(report.quarantined, 2u);
  EXPECT_EQ(report.events_written, 1u);

  // The DLQ preserves key, payload bytes, and timestamp of each reject.
  const auto dlq = drain_topic(broker, dead_letter_topic("events"));
  ASSERT_EQ(dlq.size(), 2u);
  std::set<std::string> payloads;
  for (const auto& m : dlq) payloads.insert(m.value);
  EXPECT_EQ(payloads,
            (std::set<std::string>{"not json at all", R"({"ts": 12})"}));
  for (const auto& m : dlq) {
    if (m.value == "not json at all") {
      EXPECT_EQ(m.key, "c0-0c0s0n0");
      EXPECT_EQ(m.timestamp, 1000);
    } else {
      EXPECT_EQ(m.key, "c1-0c0s0n1");
      EXPECT_EQ(m.timestamp, 2000);
    }
  }
}

TEST(QuarantineTest, InjectedPoisonQuarantinesButGoodRecordsIngest) {
  Fixture f;
  buslite::Broker broker;
  ASSERT_TRUE(broker.create_topic("events", {.partitions = 4}).is_ok());

  FaultOptions fopts;
  fopts.seed = 11;
  fopts.poison_rate = 0.2;
  FaultInjector injector(f.cluster.node_count(), fopts);

  EventPublisher pub(broker, "events");
  pub.set_fault_injector(&injector);
  constexpr int kRecords = 200;
  for (int i = 0; i < kRecords; ++i) {
    // Distinct (node, second) so nothing coalesces: clean arithmetic below.
    ASSERT_TRUE(
        pub.publish(event(kT0 + i, EventType::kLustreError, 100 + i, i))
            .is_ok());
  }
  const std::uint64_t poisoned = injector.counts().poisoned_records;
  ASSERT_GT(poisoned, 0u);
  ASSERT_LT(poisoned, static_cast<std::uint64_t>(kRecords));

  StreamingIngestor ingestor(f.cluster, f.engine, broker, "events");
  (void)ingestor.process_available();
  const auto& totals = ingestor.totals();
  EXPECT_EQ(totals.messages_in, static_cast<std::uint64_t>(kRecords));
  EXPECT_EQ(totals.decode_failures, poisoned);
  EXPECT_EQ(totals.quarantined, poisoned);
  EXPECT_EQ(totals.events_written,
            static_cast<std::uint64_t>(kRecords) - poisoned);

  // Every poisoned record is on the DLQ; every clean one is queryable.
  EXPECT_EQ(drain_topic(broker, dead_letter_topic("events")).size(), poisoned);
  std::uint64_t rows = 0;
  for (int i = 0; i < kRecords; ++i) {
    ReadQuery q;
    q.table = std::string(kEventByLocation);
    q.partition_key = event_location_key(hour_bucket(kT0 + i), 100 + i);
    const auto r = f.cluster.select(q);
    ASSERT_TRUE(r.is_ok());
    rows += r->rows.size();
  }
  EXPECT_EQ(rows, static_cast<std::uint64_t>(kRecords) - poisoned);

  // Offsets committed: a second poll quarantines nothing new.
  const auto again = ingestor.process_available();
  EXPECT_EQ(again.messages_in, 0u);
  EXPECT_EQ(again.quarantined, 0u);
}

TEST(QuarantineTest, QuarantinedMessagesAreReplayable) {
  // The DLQ contract: a fixed upstream can re-publish quarantined payloads.
  // Simulate with a truncation that is decodable after repair... simplest
  // honest version: replay the *original* payload once the producer bug is
  // fixed — here, re-publish the good JSON and verify ingestion catches up.
  Fixture f;
  buslite::Broker broker;
  ASSERT_TRUE(broker.create_topic("events", {.partitions = 1}).is_ok());

  const EventRecord good = event(kT0 + 5, EventType::kGpuMemoryError, 7, 1);
  std::string payload = good.to_json().dump();
  std::string truncated = payload.substr(0, payload.size() / 2);
  ASSERT_TRUE(broker.produce("events", "c0-0c0s0n7", truncated, 5000).is_ok());

  StreamingIngestor ingestor(f.cluster, f.engine, broker, "events");
  EXPECT_EQ(ingestor.process_available().quarantined, 1u);
  EXPECT_EQ(ingestor.totals().events_written, 0u);

  // Quarantined bytes match what was sent — the replay source of truth.
  const auto dlq = drain_topic(broker, dead_letter_topic("events"));
  ASSERT_EQ(dlq.size(), 1u);
  EXPECT_EQ(dlq[0].value, truncated);

  // "Fixed producer" replays the full payload onto the main topic.
  ASSERT_TRUE(broker.produce("events", "c0-0c0s0n7", payload, 5000).is_ok());
  EXPECT_EQ(ingestor.process_available().events_written, 1u);
  ReadQuery q;
  q.table = std::string(kEventByLocation);
  q.partition_key = event_location_key(hour_bucket(kT0 + 5), 7);
  const auto r = f.cluster.select(q);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->rows.size(), 1u);
}

}  // namespace
}  // namespace hpcla::model
