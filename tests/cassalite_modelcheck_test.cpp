// Model-checking property tests: the cassalite storage engine and cluster
// must agree with a trivially-correct in-memory reference model under long
// randomized operation sequences — writes, overwrites, flushes, crashes,
// node kills/revives — across tuning parameters.
#include <gtest/gtest.h>

#include <map>

#include "cassalite/cluster.hpp"
#include "cassalite/storage_engine.hpp"
#include "common/rng.hpp"

namespace hpcla::cassalite {
namespace {

/// Reference model: table -> partition -> clustering key -> newest row.
class ReferenceStore {
 public:
  void apply(const WriteCommand& cmd) {
    auto& slot = data_[cmd.table][cmd.partition_key][cmd.row.key];
    if (!slot || cmd.row.write_ts >= slot->write_ts) {
      slot = cmd.row;
    }
  }

  [[nodiscard]] std::vector<Row> read(const std::string& table,
                                      const std::string& pk) const {
    std::vector<Row> out;
    const auto t = data_.find(table);
    if (t == data_.end()) return out;
    const auto p = t->second.find(pk);
    if (p == t->second.end()) return out;
    for (const auto& [_, row] : p->second) {
      if (row) out.push_back(*row);
    }
    return out;
  }

  [[nodiscard]] std::vector<std::string> partitions(
      const std::string& table) const {
    std::vector<std::string> out;
    const auto t = data_.find(table);
    if (t == data_.end()) return out;
    for (const auto& [k, _] : t->second) out.push_back(k);
    return out;
  }

 private:
  std::map<std::string,
           std::map<std::string, std::map<ClusteringKey, std::optional<Row>>>>
      data_;
};

Row random_row(Rng& rng, std::int64_t write_ts) {
  Row r;
  r.key = ClusteringKey::of(
      {Value(static_cast<std::int64_t>(rng.next_below(200))),
       Value(static_cast<std::int64_t>(rng.next_below(4)))});
  r.write_ts = write_ts;
  r.set("v", Value(static_cast<std::int64_t>(rng.next_below(1000000))));
  if (rng.chance(0.3)) {
    r.set("extra", Value(rng.hex_string(8)));  // flexible schema noise
  }
  return r;
}

void expect_rows_equal(const std::vector<Row>& got,
                       const std::vector<Row>& want, const std::string& pk) {
  ASSERT_EQ(got.size(), want.size()) << "partition " << pk;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(got[i].key == want[i].key) << pk << " row " << i;
    const Value* gv = got[i].find("v");
    const Value* wv = want[i].find("v");
    ASSERT_NE(gv, nullptr);
    ASSERT_NE(wv, nullptr);
    EXPECT_TRUE(*gv == *wv) << pk << " row " << i;
  }
}

class EngineModelCheck
    : public ::testing::TestWithParam<std::pair<std::size_t, std::uint64_t>> {};

TEST_P(EngineModelCheck, RandomOpsMatchReference) {
  const auto [flush_bytes, seed] = GetParam();
  StorageOptions opts;
  opts.memtable_flush_bytes = flush_bytes;
  opts.compaction_threshold = 3;
  StorageEngine engine(opts);
  ReferenceStore reference;
  Rng rng(seed);

  std::int64_t write_ts = 1;
  for (int op = 0; op < 3000; ++op) {
    const double dice = rng.uniform();
    if (dice < 0.90) {
      WriteCommand cmd;
      cmd.table = rng.chance(0.7) ? "events" : "apps";
      cmd.partition_key = "p" + std::to_string(rng.next_below(8));
      cmd.row = random_row(rng, write_ts++);
      engine.apply(cmd);
      reference.apply(cmd);
    } else if (dice < 0.95) {
      engine.flush_all();
    } else {
      (void)engine.crash_and_recover();
    }
  }

  for (const std::string table : {"events", "apps"}) {
    // The engine must know exactly the reference's partitions...
    auto got_parts = engine.partition_keys(table);
    EXPECT_EQ(got_parts, reference.partitions(table)) << table;
    // ...and serve identical reconciled rows in identical order.
    for (const auto& pk : reference.partitions(table)) {
      ReadQuery q;
      q.table = table;
      q.partition_key = pk;
      expect_rows_equal(engine.read(q).rows, reference.read(table, pk), pk);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineModelCheck,
    ::testing::Values(std::make_pair<std::size_t, std::uint64_t>(1, 1),
                      std::make_pair<std::size_t, std::uint64_t>(512, 2),
                      std::make_pair<std::size_t, std::uint64_t>(16384, 3),
                      std::make_pair<std::size_t, std::uint64_t>(1u << 22, 4)));

class ClusterModelCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusterModelCheck, QuorumSurvivesChurnAndMatchesReference) {
  // Random writes at QUORUM interleaved with single-node kills/revives:
  // accepted writes must all be readable afterwards (RF=3, at most one
  // node down at a time, hints replayed on revive).
  ClusterOptions opts;
  opts.node_count = 5;
  opts.replication_factor = 3;
  Cluster cluster(opts);
  ReferenceStore reference;
  Rng rng(GetParam());

  std::int64_t seq = 0;
  std::optional<NodeIndex> down;
  for (int op = 0; op < 1500; ++op) {
    const double dice = rng.uniform();
    if (dice < 0.04 && !down) {
      down = rng.next_below(5);
      cluster.kill_node(*down);
    } else if (dice < 0.08 && down) {
      cluster.revive_node(*down);
      down.reset();
    } else {
      WriteCommand cmd;
      cmd.table = "events";
      cmd.partition_key = "p" + std::to_string(rng.next_below(6));
      Row row;
      row.key = ClusteringKey::of({Value(seq), Value(0)});
      row.set("v", Value(seq));
      ++seq;
      cmd.row = row;
      auto status = cluster.insert(cmd.table, cmd.partition_key, row,
                                   Consistency::kQuorum);
      ASSERT_TRUE(status.is_ok()) << status.to_string();
      cmd.row.write_ts = 0;  // reference ignores write_ts ordering here
      reference.apply(cmd);
    }
  }
  if (down) cluster.revive_node(*down);

  for (const auto& pk : reference.partitions("events")) {
    ReadQuery q;
    q.table = "events";
    q.partition_key = pk;
    auto r = cluster.select(q, Consistency::kAll);
    ASSERT_TRUE(r.is_ok()) << pk;
    expect_rows_equal(r->rows, reference.read("events", pk), pk);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterModelCheck,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace hpcla::cassalite
