// Server-side result cache + materialized-view coherence (DESIGN.md §12).
//
// The contract under test: with a ViewCatalog attached, a cacheable
// response — whether served from the views, from the LRU, or recomputed —
// is byte-identical to a cold engine recompute of the same request, and
// ingest into a covered window invalidates instead of serving stale.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <thread>
#include <vector>

#include "model/ingest.hpp"
#include "model/views/views.hpp"
#include "server/query_cache.hpp"
#include "server/server.hpp"
#include "titanlog/generator.hpp"

namespace hpcla::server {
namespace {

using titanlog::EventType;

constexpr UnixSeconds kT0 = 1489449600;

// One cluster/engine, two servers: `hot` has the view catalog + cache,
// `cold` always runs the engine path. Comparing their "result" payloads
// for the same request is the coherence oracle.
struct CacheFixture {
  cassalite::Cluster cluster;
  sparklite::Engine engine;
  model::views::ViewCatalog views;
  AnalyticsServer hot;
  AnalyticsServer cold;
  model::BatchIngestor ingestor;

  CacheFixture()
      : cluster(opts()),
        engine(sparklite::EngineOptions{.workers = 4}),
        hot(cluster, engine),
        cold(cluster, engine),
        ingestor(cluster, engine) {
    HPCLA_CHECK(model::create_data_model(cluster).is_ok());
    HPCLA_CHECK(model::load_eventtypes(cluster).is_ok());
    hot.set_view_catalog(&views);
    ingestor.set_view_catalog(&views);

    titanlog::ScenarioConfig cfg;
    cfg.seed = 77;
    cfg.window = TimeRange{kT0, kT0 + 2 * 3600};
    cfg.background_scale = 0.3;
    titanlog::HotspotSpec hs;
    hs.type = EventType::kMachineCheck;
    hs.location = topo::Coord{7, 1, -1, -1, -1};
    hs.window = TimeRange{kT0, kT0 + 3600};
    hs.rate_per_node_hour = 6.0;
    cfg.hotspots.push_back(hs);
    auto logs = titanlog::Generator(cfg).generate();
    auto report = ingestor.ingest_records(logs.events, logs.jobs);
    HPCLA_CHECK(report.write_failures == 0);
  }

  static cassalite::ClusterOptions opts() {
    cassalite::ClusterOptions o;
    o.node_count = 3;
    o.replication_factor = 2;
    return o;
  }

  Json ask(AnalyticsServer& server, const std::string& request_text) {
    auto request = Json::parse(request_text);
    HPCLA_CHECK(request.is_ok());
    Json response = server.handle(request.value());
    EXPECT_EQ(response["status"].as_string(), "ok")
        << (response["error"].is_string() ? response["error"].as_string()
                                          : std::string());
    return response;
  }

  void ingest_one(UnixSeconds ts, EventType type, topo::NodeId node) {
    titanlog::EventRecord e;
    e.ts = ts;
    e.type = type;
    e.node = node;
    HPCLA_CHECK(ingestor.ingest_records({e}, {}).write_failures == 0);
  }
};

const char* kAlignedWindow =
    R"("window":{"begin":1489449600,"end":1489456800})";

std::string heatmap_req(const char* window) {
  return std::string(R"({"op":"heatmap","context":{)") + window + "}}";
}

TEST(ServerCacheTest, ViewServedMatchesColdRecomputeByteForByte) {
  CacheFixture fx;
  const std::vector<std::string> requests = {
      heatmap_req(kAlignedWindow),
      std::string(R"({"op":"hourly","context":{)") + kAlignedWindow + "}}",
      std::string(R"({"op":"distribution","group_by":"type","context":{)") +
          kAlignedWindow + "}}",
      std::string(
          R"({"op":"timeseries","type":"MCE","bin_seconds":3600,"context":{)") +
          kAlignedWindow + "}}",
  };
  for (const auto& req : requests) {
    Json hot = fx.ask(fx.hot, req);
    Json cold = fx.ask(fx.cold, req);
    EXPECT_EQ(hot["cache"].as_string(), "view") << req;
    EXPECT_TRUE(cold["cache"].is_null());
    EXPECT_EQ(hot["result"].dump(), cold["result"].dump()) << req;
  }
  // Second pass: everything is now an LRU hit, still byte-identical.
  for (const auto& req : requests) {
    Json hot = fx.ask(fx.hot, req);
    EXPECT_EQ(hot["cache"].as_string(), "hit") << req;
    EXPECT_EQ(hot["result"].dump(), fx.ask(fx.cold, req)["result"].dump());
  }
}

TEST(ServerCacheTest, UnalignedOrFilteredQueriesMissThenHit) {
  CacheFixture fx;
  // Unaligned window: no view, engine computes, result is cached anyway.
  const std::string req =
      R"({"op":"hourly","context":{"window":{"begin":1489449660,"end":1489456800}}})";
  Json first = fx.ask(fx.hot, req);
  EXPECT_EQ(first["cache"].as_string(), "miss");
  Json second = fx.ask(fx.hot, req);
  EXPECT_EQ(second["cache"].as_string(), "hit");
  EXPECT_EQ(first["result"].dump(), second["result"].dump());

  // Key normalization: same query with reordered fields hits the same
  // entry.
  const std::string reordered =
      R"({"context":{"window":{"end":1489456800,"begin":1489449660}},"op":"hourly"})";
  EXPECT_EQ(fx.ask(fx.hot, reordered)["cache"].as_string(), "hit");
}

TEST(ServerCacheTest, BurstOpViewServedCachedAndInvalidated) {
  CacheFixture fx;
  const std::string req =
      std::string(R"({"op":"burst","context":{)") + kAlignedWindow + "}}";
  Json hot = fx.ask(fx.hot, req);
  EXPECT_EQ(hot["cache"].as_string(), "view");
  Json cold = fx.ask(fx.cold, req);
  EXPECT_TRUE(cold["cache"].is_null());

  // The view path merges per-tile sketches while the engine path merges
  // per-task sketches: percentiles may differ within the shared rank-error
  // bound, but labels, ordering, and event counts must match exactly and
  // every row's percentiles must be monotone.
  const auto& h = hot["result"].as_array();
  const auto& c = cold["result"].as_array();
  ASSERT_EQ(h.size(), c.size());
  ASSERT_FALSE(h.empty());
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_EQ(h[i]["label"].as_string(), c[i]["label"].as_string());
    EXPECT_EQ(h[i]["events"].as_int(), c[i]["events"].as_int());
    EXPECT_LE(h[i]["p50"].as_double(), h[i]["p95"].as_double());
    EXPECT_LE(h[i]["p95"].as_double(), h[i]["p99"].as_double());
  }

  // LRU hit on repeat; ingest into the window invalidates.
  EXPECT_EQ(fx.ask(fx.hot, req)["cache"].as_string(), "hit");
  fx.ingest_one(kT0 + 40, EventType::kKernelPanic, 4242);
  Json after = fx.ask(fx.hot, req);
  EXPECT_EQ(after["cache"].as_string(), "view");

  // Non-type grouping cannot be view-served: engine computes, result is
  // cached anyway.
  const std::string grouped =
      std::string(R"({"op":"burst","group_by":"cabinet","context":{)") +
      kAlignedWindow + "}}";
  EXPECT_EQ(fx.ask(fx.hot, grouped)["cache"].as_string(), "miss");
  EXPECT_EQ(fx.ask(fx.hot, grouped)["cache"].as_string(), "hit");

  // A custom epsilon bypasses the fixed-epsilon tiles too.
  const std::string custom =
      std::string(R"({"op":"burst","epsilon":0.1,"context":{)") +
      kAlignedWindow + "}}";
  EXPECT_EQ(fx.ask(fx.hot, custom)["cache"].as_string(), "miss");
}

TEST(ServerCacheTest, IngestIntoCoveredWindowInvalidates) {
  CacheFixture fx;
  const std::string req = heatmap_req(kAlignedWindow);
  Json before = fx.ask(fx.hot, req);
  EXPECT_EQ(before["cache"].as_string(), "view");
  EXPECT_EQ(fx.ask(fx.hot, req)["cache"].as_string(), "hit");

  fx.ingest_one(kT0 + 30, EventType::kKernelPanic, 4242);

  // The cached entry's epoch fingerprint no longer matches: recompute
  // (served from the now-updated view), byte-identical to cold.
  Json after = fx.ask(fx.hot, req);
  EXPECT_EQ(after["cache"].as_string(), "view");
  EXPECT_NE(after["result"].dump(), before["result"].dump());
  EXPECT_EQ(after["result"].dump(), fx.ask(fx.cold, req)["result"].dump());
  EXPECT_GE(fx.hot.query_cache().stats().invalidations, 1u);

  // Ingest OUTSIDE the window leaves the entry valid.
  Json warmed = fx.ask(fx.hot, req);
  EXPECT_EQ(warmed["cache"].as_string(), "hit");
  fx.ingest_one(kT0 + 3 * 3600 + 30, EventType::kKernelPanic, 4242);
  EXPECT_EQ(fx.ask(fx.hot, req)["cache"].as_string(), "hit");
}

TEST(ServerCacheTest, SeededChaosNeverServesStale) {
  CacheFixture fx;
  std::mt19937 rng(20260809);
  const std::vector<std::string> requests = {
      heatmap_req(kAlignedWindow),
      std::string(R"({"op":"hourly","context":{)") + kAlignedWindow + "}}",
      std::string(R"({"op":"distribution","group_by":"type","context":{)") +
          kAlignedWindow + "}}",
      std::string(
          R"({"op":"timeseries","type":"KernelPanic","bin_seconds":3600,"context":{)") +
          kAlignedWindow + "}}",
  };
  for (int round = 0; round < 40; ++round) {
    if (rng() % 2 == 0) {
      // Random ingest, inside or outside the covered window.
      const UnixSeconds ts = (rng() % 3 == 0)
                                 ? kT0 + 5 * 3600 + round
                                 : kT0 + static_cast<UnixSeconds>(
                                             rng() % (2 * 3600));
      fx.ingest_one(ts, EventType::kKernelPanic,
                    static_cast<topo::NodeId>(rng() % 1000));
    }
    const auto& req = requests[rng() % requests.size()];
    // Whatever path served it (hit / view / miss), the payload must equal
    // the cold engine recompute of the current data.
    EXPECT_EQ(fx.ask(fx.hot, req)["result"].dump(),
              fx.ask(fx.cold, req)["result"].dump())
        << "round " << round << " req " << req;
  }
  const auto cs = fx.hot.query_cache().stats();
  EXPECT_GT(cs.hits, 0u);
  EXPECT_GT(cs.invalidations, 0u);
}

TEST(ServerCacheTest, ConcurrentIngestAndQueriesStayCoherent) {
  CacheFixture fx;
  // A writer streams events into the covered window while readers hammer
  // the cacheable ops. Epochs are read before compute and checked on
  // lookup, so a hit can only serve a result no ingest has overtaken;
  // TSan runs this to vet the locking.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 60; ++i) {
      fx.ingest_one(kT0 + 100 + i, EventType::kMemoryEcc,
                    static_cast<topo::NodeId>(10 + i));
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&fx, &stop, t] {
      const std::string req =
          t == 0 ? heatmap_req(kAlignedWindow)
                 : std::string(R"({"op":"hourly","context":{)") +
                       kAlignedWindow + "}}";
      while (!stop.load()) {
        Json r = fx.ask(fx.hot, req);
        ASSERT_EQ(r["status"].as_string(), "ok");
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  // Quiescent check: the final cached answers equal cold recomputes.
  for (const std::string req :
       {heatmap_req(kAlignedWindow),
        std::string(R"({"op":"hourly","context":{)") + kAlignedWindow +
            "}}"}) {
    EXPECT_EQ(fx.ask(fx.hot, req)["result"].dump(),
              fx.ask(fx.cold, req)["result"].dump());
  }
}

TEST(QueryCacheTest, LruEvictsAndNormalizesKeys) {
  QueryCache cache(QueryCache::Options{.shards = 1, .capacity_per_shard = 2});
  Json v = Json::object();
  v["x"] = 1;
  cache.insert("a", 1, v);
  cache.insert("b", 1, v);
  EXPECT_TRUE(cache.lookup("a", 1).has_value());  // refreshes "a"
  cache.insert("c", 1, v);                        // evicts "b"
  EXPECT_TRUE(cache.lookup("a", 1).has_value());
  EXPECT_FALSE(cache.lookup("b", 1).has_value());
  EXPECT_TRUE(cache.lookup("c", 1).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);

  // Epoch mismatch drops the entry.
  EXPECT_FALSE(cache.lookup("a", 5).has_value());
  EXPECT_FALSE(cache.lookup("a", 1).has_value());
  const auto s = cache.stats();
  EXPECT_EQ(s.invalidations, 1u);
  EXPECT_EQ(s.staleness_epochs, 4u);

  // normalized_cache_key sorts object keys at every depth.
  auto a = Json::parse(R"({"op":"x","context":{"b":1,"a":[2,1]}})");
  auto b = Json::parse(R"({"context":{"a":[2,1],"b":1},"op":"x"})");
  HPCLA_CHECK(a.is_ok() && b.is_ok());
  EXPECT_EQ(normalized_cache_key(a.value()), normalized_cache_key(b.value()));
  auto c = Json::parse(R"({"context":{"a":[1,2],"b":1},"op":"x"})");
  HPCLA_CHECK(c.is_ok());
  EXPECT_NE(normalized_cache_key(a.value()), normalized_cache_key(c.value()));
}

}  // namespace
}  // namespace hpcla::server
