// Chaos convergence harness for the resilient coordinator.
//
// A seeded random fault schedule — crash windows, slow replicas, transient
// read/write errors, plus storage crashes — runs interleaved with QUORUM
// writes and reads on a deterministic virtual clock (no wall-clock sleeps
// anywhere). Invariants checked:
//   * every QUORUM-acknowledged write is readable at QUORUM at all times,
//   * after heal + hint replay, replicas hold byte-identical partitions,
//   * every surfaced error is an honest UNAVAILABLE or TIMEOUT.
//
// The schedule seed comes from the CHAOS_SEED environment variable:
// unset -> three fixed seeds (CI-reproducible), "random" -> one seed from
// std::random_device (informational run), any number -> that seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "cassalite/cluster.hpp"
#include "cassalite/gossip.hpp"
#include "common/faultsim.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/telemetry.hpp"

namespace hpcla::cassalite {
namespace {

Row chaos_row(std::int64_t seq, const std::string& value) {
  Row r;
  r.key = ClusteringKey::of({Value(seq), Value(0)});
  r.set("v", Value(value));
  return r;
}

bool honest_error(const Status& s) {
  return s.code() == StatusCode::kUnavailable ||
         s.code() == StatusCode::kTimeout;
}

/// One full chaos run at `seed`: ~400 virtual seconds of faults + traffic,
/// then heal, replay, and convergence checks.
void run_chaos_schedule(std::uint64_t seed) {
  SimClock clock;
  FaultOptions fopts;
  fopts.seed = seed;
  fopts.write_error_rate = 0.08;
  fopts.read_error_rate = 0.08;
  fopts.base_latency_ms = 2;
  fopts.slow_latency_ms = 40;

  ClusterOptions copts;
  copts.node_count = 6;
  copts.replication_factor = 3;
  copts.read_timeout_ms = 30;  // slow replicas (40 ms) overshoot this
  copts.write_timeout_ms = 30;
  copts.speculative_delay_ms = 5;

  FaultInjector injector(copts.node_count, fopts, &clock);
  Cluster cluster(copts);
  cluster.set_fault_injector(&injector);

  Rng rng(seed);
  const std::vector<std::string> pks = {"pk0", "pk1", "pk2", "pk3",
                                        "pk4", "pk5", "pk6", "pk7"};
  // Ground truth: every acknowledged write, per partition.
  std::map<std::string, std::map<std::int64_t, std::string>> acked;
  std::int64_t seq = 0;
  std::uint64_t rejected_writes = 0;
  std::uint64_t rejected_reads = 0;

  for (int step = 0; step < 400; ++step) {
    const std::int64_t now = clock.now_ms();
    // --- fault schedule: open/close windows in virtual time -------------
    if (rng.chance(0.08)) {
      const std::size_t node = rng.next_below(copts.node_count);
      const auto dur = static_cast<std::int64_t>(20 + rng.next_below(200));
      if (rng.chance(0.5)) {
        injector.crash_window(node, now, now + dur);
      } else {
        injector.slow_window(node, now, now + dur);
      }
    }
    if (rng.chance(0.05)) {
      injector.heal_node(rng.next_below(copts.node_count));
    }
    if (rng.chance(0.02)) {
      // Process crash: memtables lost, recovered from the commit log.
      (void)cluster.crash_node(rng.next_below(copts.node_count));
    }
    if (rng.chance(0.04)) {
      // Returning nodes drain their hint queues incrementally.
      const std::size_t node = rng.next_below(copts.node_count);
      if (!injector.is_down(node)) (void)cluster.replay_hints(node);
    }

    // --- one write ------------------------------------------------------
    const std::string& pk = pks[rng.next_below(pks.size())];
    const std::string value = "v" + std::to_string(seq);
    const Status st =
        cluster.insert("t", pk, chaos_row(seq, value), Consistency::kQuorum);
    if (st.is_ok()) {
      acked[pk][seq] = value;
    } else {
      EXPECT_TRUE(honest_error(st)) << st.to_string();
      ++rejected_writes;
    }
    ++seq;

    // --- periodic QUORUM read-back of everything acknowledged -----------
    if (step % 7 == 0) {
      const std::string& rpk = pks[rng.next_below(pks.size())];
      ReadQuery q;
      q.table = "t";
      q.partition_key = rpk;
      const auto r = cluster.select(q, Consistency::kQuorum);
      if (r.is_ok()) {
        std::map<std::int64_t, std::string> got;
        for (const Row& row : r->rows) {
          got[row.key.parts[0].as_int()] = row.find("v")->as_text();
        }
        for (const auto& [s, v] : acked[rpk]) {
          const auto it = got.find(s);
          ASSERT_NE(it, got.end())
              << "acked write seq=" << s << " lost from '" << rpk << "'";
          EXPECT_EQ(it->second, v) << "seq=" << s << " in '" << rpk << "'";
        }
      } else {
        EXPECT_TRUE(honest_error(r.status())) << r.status().to_string();
        ++rejected_reads;
      }
    }
    clock.advance_ms(10);
  }

  // The schedule must have actually exercised the fault paths.
  const FaultCounts fc = injector.counts();
  EXPECT_GT(fc.write_errors + fc.read_errors, 0u);
  EXPECT_GT(fc.slow_ops, 0u);

  // --- heal + replay ----------------------------------------------------
  // End the fault epoch entirely: clear crash/slow windows and detach the
  // injector so transient error rates stop firing during verification.
  injector.heal_all();
  cluster.set_fault_injector(nullptr);
  (void)cluster.replay_all_hints();
  EXPECT_EQ(cluster.pending_hints(), 0u);

  // --- convergence: byte-identical partitions on every replica ----------
  for (const auto& pk : pks) {
    ReadQuery q;
    q.table = "t";
    q.partition_key = pk;
    const auto replicas = cluster.replicas_of(pk);
    const std::uint64_t want =
        rows_digest(cluster.engine(replicas.front()).read(q).rows);
    for (NodeIndex r : replicas) {
      EXPECT_EQ(rows_digest(cluster.engine(r).read(q).rows), want)
          << "replica " << r << " of '" << pk << "' diverged after heal";
    }
    // Zero acknowledged-write loss, now verifiable at ALL.
    const auto read = cluster.select(q, Consistency::kAll);
    ASSERT_TRUE(read.is_ok()) << read.status().to_string();
    std::map<std::int64_t, std::string> got;
    for (const Row& row : read->rows) {
      got[row.key.parts[0].as_int()] = row.find("v")->as_text();
    }
    for (const auto& [s, v] : acked[pk]) {
      const auto it = got.find(s);
      ASSERT_NE(it, got.end()) << "acked seq=" << s << " lost from '" << pk
                               << "' after heal + replay";
      EXPECT_EQ(it->second, v);
    }
  }

  // The run is only interesting if the coordinator actually had to work.
  const ClusterMetrics m = cluster.metrics();
  EXPECT_GT(m.hints_stored, 0u);
  EXPECT_GT(m.read_retries + m.write_retries, 0u);
  std::size_t acked_total = 0;
  for (const auto& [_, rows] : acked) acked_total += rows.size();
  std::fprintf(stderr,
               "[chaos seed=%llu] acked=%zu rejected_writes=%llu "
               "rejected_reads=%llu retries=%llu/%llu spec=%llu "
               "timeouts=%llu hints=%llu/%llu mismatches=%llu\n",
               static_cast<unsigned long long>(seed), acked_total,
               static_cast<unsigned long long>(rejected_writes),
               static_cast<unsigned long long>(rejected_reads),
               static_cast<unsigned long long>(m.read_retries),
               static_cast<unsigned long long>(m.write_retries),
               static_cast<unsigned long long>(m.speculative_reads),
               static_cast<unsigned long long>(m.replica_timeouts),
               static_cast<unsigned long long>(m.hints_stored),
               static_cast<unsigned long long>(m.hints_replayed),
               static_cast<unsigned long long>(m.digest_mismatches));
}

std::vector<std::uint64_t> chaos_seeds() {
  const char* env = std::getenv("CHAOS_SEED");
  if (env == nullptr || *env == '\0') return {1, 2, 3};
  if (std::string(env) == "random") {
    std::random_device rd;
    const std::uint64_t s =
        (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    std::fprintf(stderr, "CHAOS_SEED=random -> seed %llu\n",
                 static_cast<unsigned long long>(s));
    return {s};
  }
  return {std::strtoull(env, nullptr, 10)};
}

TEST(ChaosTest, SeededFaultScheduleConvergesWithZeroAckedLoss) {
  for (const std::uint64_t seed : chaos_seeds()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    run_chaos_schedule(seed);
  }
}

// ---------------------------------------------------------------------------
// Speculative retry masks a slow replica: p99 read latency with one
// injected-slow node stays within 2x the no-fault baseline, while without
// speculation it sits at the slow replica's full latency.
// ---------------------------------------------------------------------------

std::int64_t p99(std::vector<std::int64_t> v) {
  HPCLA_CHECK_MSG(!v.empty(), "p99 of empty sample");
  std::sort(v.begin(), v.end());
  return v[std::min(v.size() - 1, (v.size() * 99) / 100)];
}

struct LatencyProbe {
  std::vector<std::int64_t> latencies;
  std::uint64_t speculated = 0;
};

void run_read_latency(bool speculation, bool one_slow_node,
                      LatencyProbe* probe) {
  SimClock clock;
  FaultOptions fopts;
  fopts.seed = 7;
  fopts.base_latency_ms = 10;
  fopts.slow_latency_ms = 400;

  ClusterOptions copts;
  copts.node_count = 5;
  copts.replication_factor = 3;
  copts.speculative_retry = speculation;
  copts.speculative_delay_ms = 10;
  copts.read_timeout_ms = 1000;  // slow responses are late, not timed out

  FaultInjector injector(copts.node_count, fopts, &clock);
  Cluster cluster(copts);
  cluster.set_fault_injector(&injector);

  const int kKeys = 100;
  for (int k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(cluster
                    .insert("t", "key" + std::to_string(k),
                            chaos_row(k, "x"), Consistency::kQuorum)
                    .is_ok())
        << k;
  }
  if (one_slow_node) injector.slow_window(0, 0, INT64_MAX / 2);

  for (int k = 0; k < kKeys; ++k) {
    ReadQuery q;
    q.table = "t";
    q.partition_key = "key" + std::to_string(k);
    const auto r = cluster.select_traced(q, Consistency::kQuorum);
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    probe->latencies.push_back(r->latency_ms);
    probe->speculated += r->speculated ? 1 : 0;
  }
}

TEST(ChaosTest, SpeculativeRetryMasksSlowReplica) {
  LatencyProbe baseline, hedged, unhedged;
  run_read_latency(true, false, &baseline);
  run_read_latency(true, true, &hedged);
  run_read_latency(false, true, &unhedged);

  const std::int64_t base_p99 = p99(baseline.latencies);
  const std::int64_t hedged_p99 = p99(hedged.latencies);
  const std::int64_t unhedged_p99 = p99(unhedged.latencies);

  // No faults: every read completes at the base latency, nothing hedges.
  EXPECT_EQ(base_p99, 10);
  EXPECT_EQ(baseline.speculated, 0u);

  // One slow replica: speculation bounds p99 at delay + base latency...
  EXPECT_LE(hedged_p99, 2 * base_p99);
  EXPECT_GT(hedged.speculated, 0u);
  // ...while without speculation the tail pins to the slow replica.
  EXPECT_EQ(unhedged_p99, 400);
  EXPECT_GT(unhedged_p99, 2 * base_p99);
}

// ---------------------------------------------------------------------------
// Gossip-driven replica ordering: a suspected node is tried last, and a
// recovered node (generation bump) rejoins the preferred order.
// ---------------------------------------------------------------------------

TEST(ChaosTest, SuspectedNodeIsDeprioritizedUntilRecovery) {
  ClusterOptions copts;
  copts.node_count = 5;
  copts.replication_factor = 3;
  Cluster cluster(copts);

  GossipOptions gopts;
  gopts.node_count = 5;
  gopts.suspect_after_rounds = 3;
  Gossiper gossip(gopts);
  // The coordinator (node 0's viewpoint) consults gossip suspicion.
  cluster.set_suspicion_source(
      [&gossip](NodeIndex n) { return gossip.suspects(0, n); });

  const std::string pk = "pk-order";
  const auto replicas = cluster.replicas_of(pk);
  gossip.run(6);
  EXPECT_EQ(cluster.read_order_of(pk), replicas);  // healthy: ring order

  // Kill a replica at the gossip layer only: still "up" for the cluster,
  // but suspicion pushes it to the back of the read order.
  const NodeIndex victim = replicas[0];
  gossip.kill(victim);
  gossip.run(gopts.suspect_after_rounds + 2);
  ASSERT_TRUE(gossip.suspects(0, victim));
  auto order = cluster.read_order_of(pk);
  ASSERT_EQ(order.size(), replicas.size());
  EXPECT_EQ(order.back(), victim);
  // Remaining replicas keep their relative order (stable partition).
  EXPECT_EQ(order[0], replicas[1]);
  EXPECT_EQ(order[1], replicas[2]);

  // Recovery: generation bump spreads, suspicion clears, and the node
  // rejoins the preferred slot.
  gossip.revive(victim);
  gossip.run(gopts.suspect_after_rounds);
  ASSERT_FALSE(gossip.suspects(0, victim));
  EXPECT_EQ(cluster.read_order_of(pk), replicas);
}

// ---------------------------------------------------------------------------
// Telemetry under chaos: a seeded slow replica must surface as a timed-out
// cassalite.replica span in the slow-op log (with deterministic virtual-time
// duration) and bump the cassalite.replica.timeouts registry counter.
// ---------------------------------------------------------------------------

TEST(ChaosTest, SlowReplicaSurfacesInSlowLogAndTimeoutCounter) {
  SimClock clock;
  FaultOptions fopts;
  fopts.seed = 11;
  fopts.base_latency_ms = 2;
  fopts.slow_latency_ms = 40;

  ClusterOptions copts;
  copts.node_count = 5;
  copts.replication_factor = 3;
  copts.read_timeout_ms = 30;  // the slow replica (40 ms) overshoots this
  copts.speculative_delay_ms = 5;

  FaultInjector injector(copts.node_count, fopts, &clock);
  Cluster cluster(copts);
  cluster.set_fault_injector(&injector);

  auto& tr = telemetry::tracer();
  const std::int64_t saved_threshold = tr.slow_threshold_us();
  tr.set_sim_clock(&clock);
  tr.set_slow_threshold_us(20'000);  // 20 ms: catches the 30 ms timeouts
  tr.clear();
  const std::uint64_t timeouts_before =
      telemetry::registry().snapshot().counters["cassalite.replica.timeouts"];

  const int kKeys = 20;
  for (int k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(cluster
                    .insert("t", "key" + std::to_string(k),
                            chaos_row(k, "x"), Consistency::kQuorum)
                    .is_ok())
        << k;
  }
  injector.slow_window(0, 0, INT64_MAX / 2);

  for (int k = 0; k < kKeys; ++k) {
    // Root span per read: the coordinator's per-replica child spans only
    // record inside an active trace.
    telemetry::Span root = telemetry::Span::root("chaos.read");
    ReadQuery q;
    q.table = "t";
    q.partition_key = "key" + std::to_string(k);
    const auto r = cluster.select(q, Consistency::kQuorum);
    EXPECT_TRUE(r.is_ok() || honest_error(r.status()))
        << r.status().to_string();
    clock.advance_ms(1);
  }

  const std::uint64_t timeouts_after =
      telemetry::registry().snapshot().counters["cassalite.replica.timeouts"];
  EXPECT_GT(timeouts_after, timeouts_before)
      << "the slow replica never hit the read timeout";

  // The timed-out tries surface in the slow-op log with their full
  // virtual-time duration (capped at the 30 ms read timeout).
  const auto slow = tr.slow_ops();
  ASSERT_FALSE(slow.empty());
  bool found_replica_timeout = false;
  for (const auto& s : slow) {
    if (s.name != "cassalite.replica") continue;
    EXPECT_GE(s.duration_us, 20'000);
    for (const auto& [k, v] : s.tags) {
      if (k == "timed_out" && v == "true") found_replica_timeout = true;
    }
  }
  EXPECT_TRUE(found_replica_timeout)
      << "no timed-out cassalite.replica span in the slow-op log";

  tr.set_sim_clock(nullptr);
  tr.set_slow_threshold_us(saved_threshold);
  tr.clear();
}

// ---------------------------------------------------------------------------
// TSan target: concurrent writers/readers/chaos against the sharded hint
// queues, retry paths, and metrics counters.
// ---------------------------------------------------------------------------

TEST(ChaosConcurrencyTest, ConcurrentTrafficUnderFaultsStaysCoherent) {
  SimClock clock;
  FaultOptions fopts;
  fopts.seed = 99;
  fopts.write_error_rate = 0.05;
  fopts.read_error_rate = 0.05;
  fopts.base_latency_ms = 1;
  fopts.slow_latency_ms = 8;

  ClusterOptions copts;
  copts.node_count = 5;
  copts.replication_factor = 3;
  copts.read_timeout_ms = 50;
  copts.speculative_delay_ms = 2;

  FaultInjector injector(copts.node_count, fopts, &clock);
  Cluster cluster(copts);
  cluster.set_fault_injector(&injector);

  constexpr int kWriters = 2;
  constexpr int kOpsPerWriter = 1500;
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;

  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        const std::int64_t seq = static_cast<std::int64_t>(w) * 1000000 + i;
        const Status st = cluster.insert(
            "t", "pk" + std::to_string(i % 4), chaos_row(seq, "x"),
            Consistency::kQuorum);
        EXPECT_TRUE(st.is_ok() || honest_error(st)) << st.to_string();
      }
    });
  }
  threads.emplace_back([&] {  // reader
    while (!done.load(std::memory_order_acquire)) {
      for (int p = 0; p < 4; ++p) {
        ReadQuery q;
        q.table = "t";
        q.partition_key = "pk" + std::to_string(p);
        const auto r = cluster.select(q, Consistency::kQuorum);
        EXPECT_TRUE(r.is_ok() || honest_error(r.status()))
            << r.status().to_string();
      }
      (void)cluster.pending_hints();
      (void)cluster.metrics();
    }
  });
  threads.emplace_back([&] {  // chaos: windows, clock, incremental replay
    std::uint64_t tick = 0;
    while (!done.load(std::memory_order_acquire)) {
      const std::size_t node = tick % copts.node_count;
      const std::int64_t now = clock.now_ms();
      if (tick % 3 == 0) {
        injector.crash_window(node, now, now + 20);
      } else {
        injector.slow_window(node, now, now + 20);
      }
      clock.advance_ms(5);
      if (tick % 4 == 0) (void)cluster.replay_hints(node);
      if (tick % 7 == 0) injector.heal_node(node);
      ++tick;
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  done.store(true, std::memory_order_release);
  threads[kWriters].join();
  threads[kWriters + 1].join();

  injector.heal_all();
  (void)cluster.replay_all_hints();
  for (int p = 0; p < 4; ++p) {
    ReadQuery q;
    q.table = "t";
    q.partition_key = "pk" + std::to_string(p);
    const auto r = cluster.select(q, Consistency::kAll);
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    const auto replicas = cluster.replicas_of(q.partition_key);
    const std::uint64_t want =
        rows_digest(cluster.engine(replicas.front()).read(q).rows);
    for (NodeIndex node : replicas) {
      EXPECT_EQ(rows_digest(cluster.engine(node).read(q).rows), want)
          << "replica " << node << " diverged";
    }
  }
}

// ---------------------------------------------------------------------------
// Rebalance chaos: a seeded schedule interleaves QUORUM traffic with a node
// add and a token rebalance while one-way partitions, crash/slow windows,
// and transient errors fire — including a partition cut mid-movement via the
// topology hook. Invariants:
//   * zero acked-write loss at QUORUM across every topology change,
//   * reads during movement are honest (acked data or UNAVAILABLE/TIMEOUT),
//   * after heal + hint replay + Merkle repair, every replica of every
//     partition is byte-identical,
//   * the same seed replays to a bit-identical fingerprint.
// ---------------------------------------------------------------------------

struct RebalanceChaosResult {
  std::uint64_t fingerprint = 0;
  std::size_t acked_total = 0;
  std::uint64_t acked_loss = 0;
  std::uint64_t topology_changes = 0;
  std::uint64_t ranges_streamed = 0;
  std::uint64_t repair_rows_sent = 0;
  std::uint64_t partition_drops = 0;
};

RebalanceChaosResult run_rebalance_chaos(std::uint64_t seed) {
  RebalanceChaosResult result;
  SimClock clock;
  FaultOptions fopts;
  fopts.seed = seed;
  fopts.write_error_rate = 0.04;
  fopts.read_error_rate = 0.04;
  fopts.base_latency_ms = 2;
  fopts.slow_latency_ms = 40;

  ClusterOptions copts;
  copts.node_count = 5;
  copts.replication_factor = 3;
  copts.max_node_count = 8;  // headroom for the scheduled add
  copts.read_timeout_ms = 30;
  copts.write_timeout_ms = 30;
  copts.speculative_delay_ms = 5;

  // The injector's link matrix is sized to the slot capacity so partitions
  // can target nodes that join mid-run.
  FaultInjector injector(copts.max_node_count, fopts, &clock);
  Cluster cluster(copts);
  cluster.set_fault_injector(&injector);

  Rng rng(seed);
  const std::vector<std::string> pks = {"pk0", "pk1", "pk2", "pk3",
                                        "pk4", "pk5", "pk6", "pk7"};
  std::map<std::string, std::map<std::int64_t, std::string>> acked;
  std::int64_t seq = 0;

  auto quorum_write = [&] {
    const std::string& pk = pks[static_cast<std::size_t>(seq) % pks.size()];
    const std::string value = "v" + std::to_string(seq);
    const Status st =
        cluster.insert("t", pk, chaos_row(seq, value), Consistency::kQuorum);
    if (st.is_ok()) {
      acked[pk][seq] = value;
    } else {
      EXPECT_TRUE(honest_error(st)) << st.to_string();
    }
    ++seq;
  };

  // The seeded topology schedule: add a node at t=1000, reshuffle tokens at
  // t=2500. Failed applications (honest aborts under partition) retry later.
  injector.schedule_topology_event(
      {1000, TopologyAction::kAddNode, 0, seed ^ 0x5EEDAD0Dull});
  injector.schedule_topology_event(
      {2500, TopologyAction::kRebalance, 0, seed ^ 0xC0FFEEull});
  int topology_retry_budget = 6;

  // Concurrent partition mid-movement: the instant the pending ring goes
  // live, cut the coordinator <-> node 1 link both ways and land a burst of
  // QUORUM writes against the dual-routed (old + pending) owner sets.
  cluster.set_topology_hook([&](TopologyStage stage) {
    if (stage != TopologyStage::kPendingPublished) return;
    const std::int64_t now = clock.now_ms();
    injector.partition_link(0, 1, now, now + 150);
    injector.partition_link(1, 0, now, now + 150);
    for (int k = 0; k < 6; ++k) quorum_write();
  });

  for (int step = 0; step < 400; ++step) {
    const std::int64_t now = clock.now_ms();

    // --- drain due topology events --------------------------------------
    while (auto ev = injector.pop_due_topology_event()) {
      Status st;
      switch (ev->action) {
        case TopologyAction::kAddNode:
          st = cluster.add_node(0, -1, ev->seed).status();
          break;
        case TopologyAction::kRemoveNode:
          st = cluster.remove_node(ev->node);
          break;
        case TopologyAction::kRebalance:
          st = cluster.rebalance(ev->seed);
          break;
      }
      if (st.is_ok()) continue;
      EXPECT_TRUE(honest_error(st)) << st.to_string();
      if (topology_retry_budget-- > 0) {
        ev->at_ms = now + 200;
        injector.schedule_topology_event(*ev);
      }
      break;
    }

    // --- fault schedule (windows + one-way partitions) ------------------
    if (rng.chance(0.06)) {
      const std::size_t node = rng.next_below(cluster.node_count());
      const auto dur = static_cast<std::int64_t>(20 + rng.next_below(150));
      if (rng.chance(0.5)) {
        injector.crash_window(node, now, now + dur);
      } else {
        injector.slow_window(node, now, now + dur);
      }
    }
    if (rng.chance(0.05)) {
      // Asymmetric drop: one direction only — a half-open link.
      const std::size_t a = rng.next_below(cluster.node_count());
      const std::size_t b = rng.next_below(cluster.node_count());
      const auto dur = static_cast<std::int64_t>(50 + rng.next_below(200));
      injector.partition_link(a, b, now, now + dur);
    }
    if (rng.chance(0.05)) {
      injector.heal_node(rng.next_below(cluster.node_count()));
    }
    if (rng.chance(0.04)) {
      const std::size_t node = rng.next_below(cluster.node_count());
      if (!injector.is_down(node)) (void)cluster.replay_hints(node);
    }

    // --- traffic ---------------------------------------------------------
    quorum_write();
    if (step % 7 == 0) {
      const std::string& rpk = pks[rng.next_below(pks.size())];
      ReadQuery q;
      q.table = "t";
      q.partition_key = rpk;
      const auto r = cluster.select(q, Consistency::kQuorum);
      if (r.is_ok()) {
        std::map<std::int64_t, std::string> got;
        for (const Row& row : r->rows) {
          got[row.key.parts[0].as_int()] = row.find("v")->as_text();
        }
        for (const auto& [s, v] : acked[rpk]) {
          const auto it = got.find(s);
          if (it == got.end() || it->second != v) {
            ++result.acked_loss;
            ADD_FAILURE() << "acked seq=" << s << " wrong/missing in '" << rpk
                          << "' during movement";
          }
        }
      } else {
        EXPECT_TRUE(honest_error(r.status())) << r.status().to_string();
      }
    }
    clock.advance_ms(10);
  }

  // Both scheduled changes must eventually have landed.
  EXPECT_EQ(injector.pending_topology_events(), 0u);
  EXPECT_GE(cluster.metrics().topology_changes, 1u)
      << "no topology change committed under this schedule";
  EXPECT_GT(injector.counts().partition_drops, 0u)
      << "the partition schedule never dropped a message";

  // --- heal, replay, repair, converge ------------------------------------
  // The partition outlives the hint TTL: by heal time replay can expire
  // hints but not reconcile, so convergence is Merkle repair's job alone.
  clock.advance_ms(copts.hint_ttl_ms + 1);
  injector.heal_all();
  (void)cluster.replay_all_hints();
  EXPECT_GT(cluster.metrics().hints_expired, 0u)
      << "schedule never left a hint to expire";
  cluster.set_fault_injector(nullptr);

  // If any partition's replicas diverge at this point, only repair can fix
  // them (the hints are gone) — so repair must stream at least that much.
  std::size_t diverged_before = 0;
  for (const auto& pk : pks) {
    ReadQuery q;
    q.table = "t";
    q.partition_key = pk;
    const auto replicas = cluster.replicas_of(pk);
    const std::uint64_t want =
        rows_digest(cluster.engine(replicas.front()).read(q).rows);
    for (NodeIndex r : replicas) {
      if (rows_digest(cluster.engine(r).read(q).rows) != want) {
        ++diverged_before;
        break;
      }
    }
  }

  const auto rep = cluster.repair_all();
  EXPECT_TRUE(rep.is_ok()) << rep.status().to_string();
  if (!rep.is_ok()) return result;
  if (diverged_before > 0) {
    EXPECT_GT(rep->rows_streamed, 0u)
        << diverged_before << " divergent partitions but repair streamed 0";
  }

  std::uint64_t fp = cluster.ring_epoch();
  for (const auto& pk : pks) {
    ReadQuery q;
    q.table = "t";
    q.partition_key = pk;
    const auto replicas = cluster.replicas_of(pk);
    const std::uint64_t want =
        rows_digest(cluster.engine(replicas.front()).read(q).rows);
    for (NodeIndex r : replicas) {
      const std::uint64_t got = rows_digest(cluster.engine(r).read(q).rows);
      EXPECT_EQ(got, want) << "replica " << r << " of '" << pk
                           << "' diverged after repair";
      fp = hash_combine(fp, got);
    }
    const auto read = cluster.select(q, Consistency::kAll);
    EXPECT_TRUE(read.is_ok()) << read.status().to_string();
    if (!read.is_ok()) continue;
    std::map<std::int64_t, std::string> got;
    for (const Row& row : read->rows) {
      got[row.key.parts[0].as_int()] = row.find("v")->as_text();
    }
    for (const auto& [s, v] : acked[pk]) {
      const auto it = got.find(s);
      if (it == got.end() || it->second != v) {
        ++result.acked_loss;
        ADD_FAILURE() << "acked seq=" << s << " lost from '" << pk
                      << "' after heal + repair";
      }
    }
  }

  const ClusterMetrics m = cluster.metrics();
  for (const auto& [_, rows] : acked) result.acked_total += rows.size();
  result.topology_changes = m.topology_changes;
  result.ranges_streamed = m.ranges_streamed;
  result.repair_rows_sent = m.repair_rows_sent;
  result.partition_drops = injector.counts().partition_drops;
  result.fingerprint = hash_combine(
      hash_combine(fp, static_cast<std::uint64_t>(result.acked_total)),
      m.stream_rows_sent);

  std::fprintf(stderr,
               "[rebalance-chaos seed=%llu] acked=%zu loss=%llu epoch=%llu "
               "topo=%llu streamed_ranges=%llu stream_rows=%llu "
               "repair_rows=%llu pending_writes=%llu drops=%llu fp=%016llx\n",
               static_cast<unsigned long long>(seed), result.acked_total,
               static_cast<unsigned long long>(result.acked_loss),
               static_cast<unsigned long long>(cluster.ring_epoch()),
               static_cast<unsigned long long>(m.topology_changes),
               static_cast<unsigned long long>(m.ranges_streamed),
               static_cast<unsigned long long>(m.stream_rows_sent),
               static_cast<unsigned long long>(m.repair_rows_sent),
               static_cast<unsigned long long>(m.pending_range_writes),
               static_cast<unsigned long long>(result.partition_drops),
               static_cast<unsigned long long>(result.fingerprint));
  return result;
}

TEST(ChaosTest, SeededRebalanceUnderPartitionConvergesWithZeroAckedLoss) {
  const char* json_path = std::getenv("CHAOS_JSON");
  for (const std::uint64_t seed : chaos_seeds()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const RebalanceChaosResult first = run_rebalance_chaos(seed);
    const RebalanceChaosResult second = run_rebalance_chaos(seed);
    EXPECT_EQ(first.fingerprint, second.fingerprint)
        << "same seed did not replay bit-identically";
    EXPECT_EQ(first.acked_loss, 0u);

    if (json_path != nullptr && *json_path != '\0') {
      // Probe summary for bench/check_trend.py (last seed wins).
      std::FILE* f = std::fopen(json_path, "w");
      if (f != nullptr) {
        std::fprintf(
            f,
            "{\n  \"bench\": \"rebalance_chaos\",\n  \"results\": [],\n"
            "  \"rebalance_chaos\": {\"seed\": %llu, \"acked\": %zu, "
            "\"acked_loss\": %llu, \"topology_changes\": %llu, "
            "\"ranges_streamed\": %llu, \"repair_rows_sent\": %llu, "
            "\"partition_drops\": %llu, \"replay_identical\": %s}\n}\n",
            static_cast<unsigned long long>(seed), first.acked_total,
            static_cast<unsigned long long>(first.acked_loss),
            static_cast<unsigned long long>(first.topology_changes),
            static_cast<unsigned long long>(first.ranges_streamed),
            static_cast<unsigned long long>(first.repair_rows_sent),
            static_cast<unsigned long long>(first.partition_drops),
            first.fingerprint == second.fingerprint ? "true" : "false");
        std::fclose(f);
      }
    }
  }
}

}  // namespace
}  // namespace hpcla::cassalite
