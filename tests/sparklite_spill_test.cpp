// Spill-tier tests (DESIGN.md §13.1): wide operations with spilling forced
// via a tiny byte budget must produce results *identical* to the pure
// in-memory path — same values, same order — while actually streaming
// through compressed on-disk runs (bytes_spilled > 0, residency bounded by
// the lane budget). Also covers the RunWriter/RunCursor layer directly,
// the external merge (fan-in folding), env-var budget inheritance, and
// non-spillable element types degrading gracefully to in-RAM shuffles.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "sparklite/dataset.hpp"
#include "sparklite/engine.hpp"
#include "sparklite/spill.hpp"

namespace hpcla::sparklite {
namespace {

using KV = std::pair<std::string, std::int64_t>;

Engine::Options opts(std::size_t workers, std::size_t spill_budget) {
  Engine::Options o;
  o.workers = workers;
  o.shuffle_spill_bytes = spill_budget;  // 0 = force in-memory
  return o;
}

std::vector<KV> keyed_input(std::size_t n) {
  std::vector<KV> data;
  data.reserve(n);
  std::uint64_t x = 88172645463325252ULL;
  for (std::size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    data.emplace_back("key-" + std::to_string(x % 97),
                      static_cast<std::int64_t>(i % 11));
  }
  return data;
}

TEST(SpillShuffle, ReduceByKeyIdenticalWithSpillForced) {
  const auto data = keyed_input(6000);
  std::vector<KV> in_memory;
  {
    Engine e(opts(4, 0));
    auto ds = Dataset<KV>::parallelize(e, data, 4);
    in_memory = reduce_by_key(ds, [](std::int64_t a, std::int64_t b) {
                  return a + b;
                }).collect();
    EXPECT_EQ(e.metrics().bytes_spilled, 0u);
  }
  {
    Engine e(opts(4, 4096));
    auto ds = Dataset<KV>::parallelize(e, data, 4);
    auto spilled = reduce_by_key(ds, [](std::int64_t a, std::int64_t b) {
                     return a + b;
                   }).collect();
    EXPECT_EQ(spilled, in_memory) << "spill path changed reduce output";
    const auto m = e.metrics();
    EXPECT_GT(m.bytes_spilled, 0u) << "budget was not small enough to spill";
    EXPECT_GT(m.spill_files, 0u);
  }
}

TEST(SpillShuffle, SortByIdenticalWithSpillForced) {
  // Many duplicate keys: byte-identity requires the merge to preserve
  // stable_sort's tie order, not just sortedness.
  std::vector<std::pair<std::int32_t, std::int32_t>> data;
  std::uint64_t x = 1234567;
  for (std::int32_t i = 0; i < 20000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    data.emplace_back(static_cast<std::int32_t>(x % 50), i);
  }
  std::vector<std::pair<std::int32_t, std::int32_t>> in_memory;
  {
    Engine e(opts(4, 0));
    auto ds = Dataset<std::pair<std::int32_t, std::int32_t>>::parallelize(
        e, data, 6);
    in_memory = sort_by(ds, [](const auto& v) { return v.first; }, 4).collect();
  }
  {
    Engine e(opts(4, 8192));
    auto ds = Dataset<std::pair<std::int32_t, std::int32_t>>::parallelize(
        e, data, 6);
    auto spilled =
        sort_by(ds, [](const auto& v) { return v.first; }, 4).collect();
    EXPECT_EQ(spilled, in_memory) << "external sort broke stable tie order";
    EXPECT_GT(e.metrics().bytes_spilled, 0u);
  }
}

TEST(SpillShuffle, ExternalMergePassesWithTinyFanIn) {
  std::vector<std::pair<std::int32_t, std::int32_t>> data;
  for (std::int32_t i = 0; i < 30000; ++i) {
    data.emplace_back((i * 7919) % 113, i);
  }
  std::vector<std::pair<std::int32_t, std::int32_t>> in_memory;
  {
    Engine e(opts(2, 0));
    auto ds = Dataset<std::pair<std::int32_t, std::int32_t>>::parallelize(
        e, data, 8);
    in_memory = sort_by(ds, [](const auto& v) { return v.first; }, 2).collect();
  }
  Engine::Options o = opts(2, 4096);
  o.spill_merge_fan_in = 2;  // force multi-pass external merges
  Engine e(o);
  auto ds =
      Dataset<std::pair<std::int32_t, std::int32_t>>::parallelize(e, data, 8);
  auto spilled =
      sort_by(ds, [](const auto& v) { return v.first; }, 2).collect();
  EXPECT_EQ(spilled, in_memory);
  const auto m = e.metrics();
  EXPECT_GT(m.merge_passes, 0u)
      << "fan-in 2 over 8 spilling lanes must need intermediate merges";
}

TEST(SpillShuffle, GroupByKeyAndJoinIdenticalWithSpillForced) {
  const auto data = keyed_input(3000);
  std::vector<std::pair<std::string, std::string>> right;
  for (int i = 0; i < 97; ++i) {
    right.emplace_back("key-" + std::to_string(i), "r" + std::to_string(i));
  }
  std::vector<std::pair<std::string, std::vector<std::int64_t>>> grouped_mem;
  std::vector<std::pair<std::string, std::pair<std::int64_t, std::string>>>
      joined_mem;
  {
    Engine e(opts(4, 0));
    auto ds = Dataset<KV>::parallelize(e, data, 4);
    grouped_mem = group_by_key(ds).collect();
    auto rds = Dataset<std::pair<std::string, std::string>>::parallelize(
        e, right, 3);
    joined_mem = join(ds, rds).collect();
  }
  {
    Engine e(opts(4, 4096));
    auto ds = Dataset<KV>::parallelize(e, data, 4);
    EXPECT_EQ(group_by_key(ds).collect(), grouped_mem);
    auto rds = Dataset<std::pair<std::string, std::string>>::parallelize(
        e, right, 3);
    EXPECT_EQ(join(ds, rds).collect(), joined_mem);
    EXPECT_GT(e.metrics().bytes_spilled, 0u);
  }
}

TEST(SpillShuffle, ResidencyBoundedByLaneBudget) {
  spill::SpillManager mgr(std::size_t{16 * 1024}, "", 16);
  spill::ScatterSink<std::pair<std::int64_t, std::int64_t>> sink(mgr, 2, 4);
  for (std::int64_t i = 0; i < 50000; ++i) {
    sink.emit(static_cast<std::size_t>(i % 2),
              static_cast<std::size_t>(i % 4), {i % 33, i});
  }
  EXPECT_TRUE(sink.spilled());
  EXPECT_GT(sink.spilled_bytes(), 0u);
  ASSERT_GT(sink.lane_budget_bytes(), 0u);
  // The high-water mark may overshoot by at most one row's accounting.
  EXPECT_LE(sink.peak_lane_bytes(), sink.lane_budget_bytes() + 64)
      << "lane kept accumulating past its budget";
  // Replay preserves counts.
  std::uint64_t replayed = 0;
  for (std::size_t d = 0; d < 4; ++d) {
    sink.for_each_row(d, [&](std::pair<std::int64_t, std::int64_t>) {
      ++replayed;
    });
  }
  EXPECT_EQ(replayed, 50000u);
}

TEST(SpillShuffle, RunFileRoundTripAndConcurrentCursors) {
  spill::SpillManager mgr(std::size_t{1}, "", 16);
  spill::RunWriter<KV> writer(mgr);
  std::vector<KV> rows;
  writer.begin_run(3);
  for (int i = 0; i < 10000; ++i) {
    rows.emplace_back("row-" + std::to_string(i % 100),
                      static_cast<std::int64_t>(i));
    writer.add(rows.back());
  }
  const auto meta = writer.end_run();
  EXPECT_EQ(meta.rows, 10000u);
  EXPECT_EQ(meta.bucket, 3u);
  EXPECT_GT(meta.length, 0u);
  // Two cursors stream the same run independently.
  spill::RunCursor<KV> a(writer.path(), meta);
  spill::RunCursor<KV> b(writer.path(), meta);
  KV va, vb;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    ASSERT_TRUE(a.next(va));
    ASSERT_TRUE(b.next(vb));
    EXPECT_EQ(va, rows[i]);
    EXPECT_EQ(vb, rows[i]);
  }
  EXPECT_FALSE(a.next(va));
  EXPECT_FALSE(b.next(vb));
}

TEST(SpillShuffle, SpillFilesRemovedWithEngine) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "hpcla-spill-test-dir";
  fs::create_directories(dir);
  {
    Engine::Options o = opts(2, 2048);
    o.spill_dir = dir.string();
    Engine e(o);
    auto ds = Dataset<KV>::parallelize(e, keyed_input(4000), 4);
    (void)reduce_by_key(ds, [](std::int64_t a, std::int64_t b) {
      return a + b;
    }).collect();
    EXPECT_GT(e.metrics().bytes_spilled, 0u);
  }
  // The engine's per-process spill subdirectory is gone with the engine.
  std::size_t leftovers = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++leftovers;
  }
  EXPECT_EQ(leftovers, 0u) << "spill dir not cleaned up";
  fs::remove_all(dir);
}

TEST(SpillShuffle, EnvBudgetInheritedAndExplicitZeroOverrides) {
  const char* prior = ::getenv("HPCLA_SPILL_BUDGET_BYTES");
  const std::string saved = prior ? prior : "";
  ::setenv("HPCLA_SPILL_BUDGET_BYTES", "4096", 1);
  {
    Engine::Options o;
    o.workers = 2;  // budget unset -> inherit env
    Engine e(o);
    auto ds = Dataset<KV>::parallelize(e, keyed_input(4000), 4);
    (void)reduce_by_key(ds, [](std::int64_t a, std::int64_t b) {
      return a + b;
    }).collect();
    EXPECT_GT(e.metrics().bytes_spilled, 0u) << "env budget ignored";
  }
  {
    Engine e(opts(2, 0));  // explicit 0 must beat the env
    auto ds = Dataset<KV>::parallelize(e, keyed_input(4000), 4);
    (void)reduce_by_key(ds, [](std::int64_t a, std::int64_t b) {
      return a + b;
    }).collect();
    EXPECT_EQ(e.metrics().bytes_spilled, 0u) << "explicit 0 did not pin RAM";
  }
  if (prior) {
    ::setenv("HPCLA_SPILL_BUDGET_BYTES", saved.c_str(), 1);
  } else {
    ::unsetenv("HPCLA_SPILL_BUDGET_BYTES");
  }
}

/// No Codec specialization: must compile and silently never spill.
struct Opaque {
  std::int64_t v = 0;
  friend bool operator==(const Opaque&, const Opaque&) = default;
};

TEST(SpillShuffle, NonSpillableTypeStaysInMemory) {
  static_assert(!spill::is_spillable_v<Opaque>);
  std::vector<Opaque> data;
  for (std::int64_t i = 0; i < 2000; ++i) data.push_back({(i * 31) % 257});
  Engine e(opts(2, 1024));  // tiny budget, but nothing can spill
  auto ds = Dataset<Opaque>::parallelize(e, data, 4);
  auto sorted = sort_by(ds, [](const Opaque& o) { return o.v; }, 3).collect();
  ASSERT_EQ(sorted.size(), data.size());
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LE(sorted[i - 1].v, sorted[i].v);
  }
  EXPECT_EQ(e.metrics().bytes_spilled, 0u);
}

TEST(SpillShuffle, CombineTableFlushesWithinLaneBudgetAndStaysExact) {
  const auto data = keyed_input(20000);
  const auto sum = [](std::int64_t a, std::int64_t b) { return a + b; };
  std::vector<KV> in_memory;
  {
    Engine e(opts(4, 0));
    auto ds = Dataset<KV>::parallelize(e, data, 4);
    in_memory = reduce_by_key(ds, sum).collect();
    const auto& rec = *e.shuffle_history().back();
    EXPECT_EQ(rec.combine_flushes, 0u)
        << "no budget -> combine table must never flush early";
  }
  Engine e(opts(4, 8192));  // lane budget = 8192 / 4 lanes = 2 KiB
  auto ds = Dataset<KV>::parallelize(e, data, 4);
  const auto spilled = reduce_by_key(ds, sum).collect();
  EXPECT_EQ(spilled, in_memory)
      << "partial-aggregate flushes changed the reduce result";
  const auto& rec = *e.shuffle_history().back();
  EXPECT_GT(rec.combine_flushes, 0u)
      << "97 keys x ~60 bytes should overflow a 2 KiB combine table";
  ASSERT_GT(rec.combine_peak_bytes, 0u);
  // Residency bound: the table flushes as soon as its charged footprint
  // crosses the lane budget, so the peak overshoots by at most one row.
  EXPECT_LE(rec.combine_peak_bytes, 8192u / 4 + 256)
      << "combine table kept accumulating past its lane budget";
}

TEST(SpillShuffle, GroupTableFlushesPreserveEncounterOrder) {
  const auto data = keyed_input(20000);
  std::vector<std::pair<std::string, std::vector<std::int64_t>>> in_memory;
  {
    Engine e(opts(4, 0));
    auto ds = Dataset<KV>::parallelize(e, data, 4);
    in_memory = group_by_key(ds).collect();
  }
  Engine e(opts(4, 8192));
  auto ds = Dataset<KV>::parallelize(e, data, 4);
  // Partial vectors reach the reduce side in flush order and concatenate
  // in arrival order, so per-key value order must be byte-identical.
  EXPECT_EQ(group_by_key(ds).collect(), in_memory);
  const auto& rec = *e.shuffle_history().back();
  EXPECT_GT(rec.combine_flushes, 0u);
  EXPECT_LE(rec.combine_peak_bytes, 8192u / 4 + 256);
}

TEST(SpillShuffle, ShuffleRecordCarriesSpillMetrics) {
  Engine e(opts(2, 4096));
  auto ds = Dataset<KV>::parallelize(e, keyed_input(5000), 4);
  (void)reduce_by_key(ds, [](std::int64_t a, std::int64_t b) {
    return a + b;
  }).collect();
  const auto history = e.shuffle_history();
  ASSERT_FALSE(history.empty());
  const auto& rec = *history.back();
  EXPECT_GT(rec.bytes_spilled, 0u);
  EXPECT_GT(rec.spill_files, 0u);
}

}  // namespace
}  // namespace hpcla::sparklite
