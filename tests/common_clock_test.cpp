#include "common/clock.hpp"

#include <gtest/gtest.h>

namespace hpcla {
namespace {

TEST(ClockTest, EpochIsCivilZero) {
  CivilTime ct = to_civil(0);
  EXPECT_EQ(ct.year, 1970);
  EXPECT_EQ(ct.month, 1);
  EXPECT_EQ(ct.day, 1);
  EXPECT_EQ(ct.hour, 0);
  EXPECT_EQ(ct.minute, 0);
  EXPECT_EQ(ct.second, 0);
}

TEST(ClockTest, KnownTimestamp) {
  // 2017-03-14 05:21:06 UTC == 1489468866 (paper-era timestamp).
  CivilTime ct{2017, 3, 14, 5, 21, 6};
  EXPECT_EQ(from_civil(ct), 1489468866);
  CivilTime back = to_civil(1489468866);
  EXPECT_EQ(back.year, 2017);
  EXPECT_EQ(back.month, 3);
  EXPECT_EQ(back.day, 14);
  EXPECT_EQ(back.hour, 5);
  EXPECT_EQ(back.minute, 21);
  EXPECT_EQ(back.second, 6);
}

TEST(ClockTest, LeapYearFebruary29) {
  CivilTime ct{2016, 2, 29, 12, 0, 0};
  UnixSeconds ts = from_civil(ct);
  CivilTime back = to_civil(ts);
  EXPECT_EQ(back.month, 2);
  EXPECT_EQ(back.day, 29);
}

TEST(ClockTest, FormatTimestamp) {
  EXPECT_EQ(format_timestamp(1489468866), "2017-03-14 05:21:06");
  EXPECT_EQ(format_iso8601(1489468866), "2017-03-14T05:21:06Z");
}

TEST(ClockTest, ParseRoundTrip) {
  auto r = parse_timestamp("2017-03-14 05:21:06");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 1489468866);
  auto iso = parse_timestamp("2017-03-14T05:21:06Z");
  ASSERT_TRUE(iso.is_ok());
  EXPECT_EQ(iso.value(), 1489468866);
}

TEST(ClockTest, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_timestamp("").is_ok());
  EXPECT_FALSE(parse_timestamp("2017-03-14").is_ok());
  EXPECT_FALSE(parse_timestamp("2017/03/14 05:21:06").is_ok());
  EXPECT_FALSE(parse_timestamp("2017-13-14 05:21:06").is_ok());  // month 13
  EXPECT_FALSE(parse_timestamp("2017-03-14 25:21:06").is_ok());  // hour 25
  EXPECT_FALSE(parse_timestamp("2017-03-14 05:61:06").is_ok());  // minute 61
  EXPECT_FALSE(parse_timestamp("2017-03-1x 05:21:06").is_ok());  // bad digit
}

TEST(ClockTest, HourBucketFloors) {
  EXPECT_EQ(hour_bucket(0), 0);
  EXPECT_EQ(hour_bucket(3599), 0);
  EXPECT_EQ(hour_bucket(3600), 1);
  EXPECT_EQ(hour_bucket(-1), -1);
  EXPECT_EQ(hour_bucket(-3600), -1);
  EXPECT_EQ(hour_bucket(-3601), -2);
  EXPECT_EQ(hour_bucket_start(hour_bucket(1489468866)) <= 1489468866, true);
}

TEST(ClockTest, TimeRangeSemantics) {
  TimeRange r{100, 200};
  EXPECT_TRUE(r.contains(100));
  EXPECT_TRUE(r.contains(199));
  EXPECT_FALSE(r.contains(200));
  EXPECT_FALSE(r.contains(99));
  EXPECT_EQ(r.duration(), 100);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE((TimeRange{5, 5}).empty());
}

TEST(ClockTest, TimeRangeHourSpan) {
  TimeRange r{3600, 7201};  // spans hours 1 and 2
  EXPECT_EQ(r.first_hour(), 1);
  EXPECT_EQ(r.last_hour(), 2);
  TimeRange exact{3600, 7200};  // exactly hour 1
  EXPECT_EQ(exact.first_hour(), 1);
  EXPECT_EQ(exact.last_hour(), 1);
}

class ClockRoundTripTest : public ::testing::TestWithParam<UnixSeconds> {};

TEST_P(ClockRoundTripTest, CivilRoundTrip) {
  const UnixSeconds ts = GetParam();
  EXPECT_EQ(from_civil(to_civil(ts)), ts);
}

TEST_P(ClockRoundTripTest, StringRoundTrip) {
  const UnixSeconds ts = GetParam();
  auto parsed = parse_timestamp(format_timestamp(ts));
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value(), ts);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClockRoundTripTest,
    ::testing::Values(0, 1, 59, 3599, 86399, 86400, 951782400 /* 2000-02-29 */,
                      1489468866, 1483228800 /* 2017-01-01 */,
                      1500000000, 2000000000, 4102444800 /* 2100-01-01 */));

}  // namespace
}  // namespace hpcla
