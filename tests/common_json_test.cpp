#include "common/json.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace hpcla {
namespace {

TEST(JsonTest, ScalarConstruction) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(nullptr).is_null());
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(7).is_int());
  EXPECT_TRUE(Json(std::int64_t{1} << 40).is_int());
  EXPECT_TRUE(Json(3.5).is_double());
  EXPECT_TRUE(Json("s").is_string());
  EXPECT_TRUE(Json::object().is_object());
  EXPECT_TRUE(Json::array().is_array());
}

TEST(JsonTest, ObjectInsertionOrderPreserved) {
  Json j = Json::object();
  j["zulu"] = 1;
  j["alpha"] = 2;
  j["mike"] = 3;
  EXPECT_EQ(j.dump(), R"({"zulu":1,"alpha":2,"mike":3})");
}

TEST(JsonTest, ObjectOverwriteKeepsPosition) {
  Json j = Json::object();
  j["a"] = 1;
  j["b"] = 2;
  j["a"] = 9;
  EXPECT_EQ(j.dump(), R"({"a":9,"b":2})");
}

TEST(JsonTest, NestedBuild) {
  Json q = Json::object();
  q["query"] = "heatmap";
  q["range"]["begin"] = 1489468800;
  q["range"]["end"] = 1489472400;
  q["types"].push_back("MCE");
  q["types"].push_back("LustreError");
  EXPECT_EQ(q.dump(),
            R"({"query":"heatmap","range":{"begin":1489468800,"end":1489472400},)"
            R"("types":["MCE","LustreError"]})");
}

TEST(JsonTest, ParseScalars) {
  EXPECT_TRUE(Json::parse("null")->is_null());
  EXPECT_EQ(Json::parse("true")->as_bool(), true);
  EXPECT_EQ(Json::parse("false")->as_bool(), false);
  EXPECT_EQ(Json::parse("42")->as_int(), 42);
  EXPECT_EQ(Json::parse("-17")->as_int(), -17);
  EXPECT_DOUBLE_EQ(Json::parse("2.5")->as_double(), 2.5);
  EXPECT_DOUBLE_EQ(Json::parse("1e3")->as_double(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonTest, ParsePreservesInt64) {
  auto j = Json::parse("1489468866");
  ASSERT_TRUE(j.is_ok());
  EXPECT_TRUE(j->is_int());
  EXPECT_EQ(j->as_int(), 1489468866);
}

TEST(JsonTest, ParseStringEscapes) {
  auto j = Json::parse(R"("line1\nline2\t\"quoted\" \\ A")");
  ASSERT_TRUE(j.is_ok());
  EXPECT_EQ(j->as_string(), "line1\nline2\t\"quoted\" \\ A");
}

TEST(JsonTest, UnicodeEscapeToUtf8) {
  auto j = Json::parse("\"\\u00e9\\u20acA\"");  // é € A
  ASSERT_TRUE(j.is_ok());
  EXPECT_EQ(j->as_string(), "\xc3\xa9\xe2\x82\xac" "A");
}

TEST(JsonTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Json::parse("").is_ok());
  EXPECT_FALSE(Json::parse("{").is_ok());
  EXPECT_FALSE(Json::parse("[1,]").is_ok());
  EXPECT_FALSE(Json::parse("{\"a\":}").is_ok());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").is_ok());
  EXPECT_FALSE(Json::parse("tru").is_ok());
  EXPECT_FALSE(Json::parse("1 2").is_ok());
  EXPECT_FALSE(Json::parse("\"unterminated").is_ok());
  EXPECT_FALSE(Json::parse("01a").is_ok());
  EXPECT_FALSE(Json::parse("1.").is_ok());
  EXPECT_FALSE(Json::parse("1e").is_ok());
}

TEST(JsonTest, DeepNestingLimit) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(Json::parse(deep).is_ok());
}

TEST(JsonTest, FallibleGetters) {
  Json q = Json::object();
  q["n"] = 5;
  q["name"] = "mce";
  q["live"] = true;
  q["frac"] = 0.25;
  EXPECT_EQ(q.get_int("n").value(), 5);
  EXPECT_EQ(q.get_string("name").value(), "mce");
  EXPECT_EQ(q.get_bool("live").value(), true);
  EXPECT_DOUBLE_EQ(q.get_double("frac").value(), 0.25);
  EXPECT_FALSE(q.get_int("missing").is_ok());
  EXPECT_FALSE(q.get_int("name").is_ok());
  EXPECT_FALSE(q.get_string("n").is_ok());
  EXPECT_FALSE(Json(3).get_int("x").is_ok());  // not an object
}

TEST(JsonTest, ConstIndexOnMissingReturnsNull) {
  const Json q = Json::object();
  EXPECT_TRUE(q["anything"].is_null());
  const Json notobj = 5;
  EXPECT_TRUE(notobj["k"].is_null());
}

TEST(JsonTest, EqualityIsDeep) {
  auto a = Json::parse(R"({"x":[1,2,{"y":true}]})");
  auto b = Json::parse(R"({ "x" : [ 1 , 2 , { "y" : true } ] })");
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST(JsonTest, PrettyPrintIndents) {
  Json j = Json::object();
  j["a"] = 1;
  EXPECT_EQ(j.pretty(), "{\n  \"a\": 1\n}");
}

TEST(JsonTest, ControlCharactersEscapedOnDump) {
  Json j = std::string("a\x01" "b");
  EXPECT_EQ(j.dump(), "\"a\\u0001b\"");
}

TEST(JsonTest, DoubleSerializationStaysDouble) {
  Json j = 2.0;
  auto round = Json::parse(j.dump());
  ASSERT_TRUE(round.is_ok());
  EXPECT_TRUE(round->is_double());
}

class JsonRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonRoundTripTest, DumpParseDumpIsStable) {
  auto first = Json::parse(GetParam());
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  const std::string once = first->dump();
  auto second = Json::parse(once);
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second->dump(), once);
  EXPECT_EQ(first.value(), second.value());
}

INSTANTIATE_TEST_SUITE_P(
    Documents, JsonRoundTripTest,
    ::testing::Values(
        "null", "true", "0", "-1", "9223372036854775807", "0.5",
        R"("")", R"(" tab\t")",
        "[]", "{}", "[[[1]]]",
        R"([1,2.5,"x",null,true,{"k":[]}])",
        R"({"query":"distribution","group_by":"cabinet","hours":[413185,413186]})",
        R"({"ctx":{"type":"GPU_DBE","loc":"c21-3c0s4n2","user":null}})"));

// Randomized structural fuzz: generated documents of bounded depth must
// survive dump -> parse -> dump bit-identically.
namespace fuzz {

Json random_json(hpcla::Rng& rng, int depth) {
  const auto pick = rng.next_below(depth <= 0 ? 5 : 7);
  switch (pick) {
    case 0: return Json(nullptr);
    case 1: return Json(rng.chance(0.5));
    case 2: return Json(static_cast<std::int64_t>(rng.next_u64() >> 1) *
                        (rng.chance(0.5) ? 1 : -1));
    case 3: return Json(rng.normal(0, 1e6));
    case 4: {
      std::string s = rng.hex_string(rng.next_below(12));
      if (rng.chance(0.3)) s += "\"\\\n\t weird ";
      return Json(std::move(s));
    }
    case 5: {
      Json arr = Json::array();
      const auto n = rng.next_below(4);
      for (std::uint64_t i = 0; i < n; ++i) {
        arr.push_back(random_json(rng, depth - 1));
      }
      return arr;
    }
    default: {
      Json obj = Json::object();
      const auto n = rng.next_below(4);
      for (std::uint64_t i = 0; i < n; ++i) {
        obj["k" + rng.hex_string(4)] = random_json(rng, depth - 1);
      }
      return obj;
    }
  }
}

}  // namespace fuzz

TEST(JsonFuzzTest, RandomDocumentsRoundTripStably) {
  hpcla::Rng rng(0xF00D);
  for (int i = 0; i < 500; ++i) {
    Json doc = fuzz::random_json(rng, 4);
    const std::string once = doc.dump();
    auto back = Json::parse(once);
    ASSERT_TRUE(back.is_ok()) << once;
    EXPECT_EQ(back->dump(), once) << "iteration " << i;
  }
}

}  // namespace
}  // namespace hpcla
