// Tests for the §V "future work" extensions: composite event detection,
// application profiles, and precursor-based failure prediction.
#include <gtest/gtest.h>

#include <map>

#include "analytics/app_profile.hpp"
#include "analytics/assoc.hpp"
#include "analytics/composite.hpp"
#include "analytics/prediction.hpp"
#include "model/ingest.hpp"
#include "titanlog/generator.hpp"

namespace hpcla::analytics {
namespace {

using titanlog::EventRecord;
using titanlog::EventType;
using titanlog::JobRecord;

constexpr UnixSeconds kT0 = 1489449600;

EventRecord ev(UnixSeconds ts, EventType type, topo::NodeId node,
               std::int64_t seq = 0) {
  EventRecord e;
  e.ts = ts;
  e.type = type;
  e.node = node;
  e.seq = seq;
  e.message = "m";
  return e;
}

// --------------------------------------------------------------- composite

CompositeRule dbe_then_failure() {
  return CompositeRule{
      "dbe_then_failure",
      MatchScope::kNode,
      {{EventType::kGpuMemoryError, 0}, {EventType::kGpuFailure, 600}}};
}

TEST(CompositeTest, ScopeNamesRoundTrip) {
  for (auto s : {MatchScope::kNode, MatchScope::kBlade, MatchScope::kCabinet,
                 MatchScope::kSystem}) {
    auto back = match_scope_from_string(match_scope_name(s));
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value(), s);
  }
  EXPECT_FALSE(match_scope_from_string("galaxy").is_ok());
}

TEST(CompositeTest, DetectsSimpleSequence) {
  std::vector<EventRecord> events{
      ev(kT0 + 0, EventType::kGpuMemoryError, 7, 0),
      ev(kT0 + 100, EventType::kGpuFailure, 7, 1),
  };
  auto matches = detect_composites(events, dbe_then_failure());
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].rule, "dbe_then_failure");
  EXPECT_EQ(matches[0].scope_key, 7);
  EXPECT_EQ(matches[0].start_ts, kT0);
  EXPECT_EQ(matches[0].end_ts, kT0 + 100);
  ASSERT_EQ(matches[0].step_events.size(), 2u);
}

TEST(CompositeTest, GapTooLargeNoMatch) {
  std::vector<EventRecord> events{
      ev(kT0, EventType::kGpuMemoryError, 7),
      ev(kT0 + 601, EventType::kGpuFailure, 7),  // 1 s past the gap
  };
  EXPECT_TRUE(detect_composites(events, dbe_then_failure()).empty());
}

TEST(CompositeTest, DifferentNodesNoMatchAtNodeScope) {
  std::vector<EventRecord> events{
      ev(kT0, EventType::kGpuMemoryError, 7),
      ev(kT0 + 10, EventType::kGpuFailure, 8),
  };
  EXPECT_TRUE(detect_composites(events, dbe_then_failure()).empty());
}

TEST(CompositeTest, BladeScopeMatchesAcrossNodesOfOneBlade) {
  CompositeRule rule = dbe_then_failure();
  rule.scope = MatchScope::kBlade;
  std::vector<EventRecord> events{
      ev(kT0, EventType::kGpuMemoryError, 0),   // blade 0, node 0
      ev(kT0 + 10, EventType::kGpuFailure, 3),  // blade 0, node 3
  };
  auto matches = detect_composites(events, rule);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].scope_key, 0);
  // Nodes on different blades do not match.
  events[1].node = 4;  // blade 1
  EXPECT_TRUE(detect_composites(events, rule).empty());
}

TEST(CompositeTest, EventsNotReusedAcrossMatches) {
  // One DBE followed by two failures: only one match (failure #2 has no
  // unconsumed DBE).
  std::vector<EventRecord> events{
      ev(kT0, EventType::kGpuMemoryError, 7, 0),
      ev(kT0 + 10, EventType::kGpuFailure, 7, 1),
      ev(kT0 + 20, EventType::kGpuFailure, 7, 2),
  };
  EXPECT_EQ(detect_composites(events, dbe_then_failure()).size(), 1u);
  // Two DBEs then two failures: two matches.
  std::vector<EventRecord> twice{
      ev(kT0, EventType::kGpuMemoryError, 7, 0),
      ev(kT0 + 5, EventType::kGpuMemoryError, 7, 1),
      ev(kT0 + 10, EventType::kGpuFailure, 7, 2),
      ev(kT0 + 20, EventType::kGpuFailure, 7, 3),
  };
  EXPECT_EQ(detect_composites(twice, dbe_then_failure()).size(), 2u);
}

TEST(CompositeTest, ThreeStepEscalation) {
  CompositeRule rule{
      "ecc_mce_panic",
      MatchScope::kNode,
      {{EventType::kMemoryEcc, 0},
       {EventType::kMachineCheck, 600},
       {EventType::kKernelPanic, 600}}};
  std::vector<EventRecord> events{
      ev(kT0, EventType::kMemoryEcc, 9, 0),
      ev(kT0 + 100, EventType::kMachineCheck, 9, 1),
      ev(kT0 + 150, EventType::kLustreError, 9, 2),  // irrelevant noise
      ev(kT0 + 400, EventType::kKernelPanic, 9, 3),
  };
  auto matches = detect_composites(events, rule);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].step_events.size(), 3u);
  // Missing middle step: no match.
  std::vector<EventRecord> gap{
      ev(kT0, EventType::kMemoryEcc, 9, 0),
      ev(kT0 + 100, EventType::kKernelPanic, 9, 1),
  };
  EXPECT_TRUE(detect_composites(gap, rule).empty());
}

TEST(CompositeTest, EndToEndOverClusterWithInjectedCoupling) {
  cassalite::ClusterOptions copts;
  copts.node_count = 4;
  copts.replication_factor = 2;
  cassalite::Cluster cluster(copts);
  sparklite::Engine engine(sparklite::EngineOptions{.workers = 4});
  HPCLA_CHECK(model::create_data_model(cluster).is_ok());

  titanlog::ScenarioConfig cfg;
  cfg.seed = 31;
  cfg.window = TimeRange{kT0, kT0 + 2 * 3600};
  cfg.background_scale = 0.0;
  titanlog::HotspotSpec hs;
  hs.type = EventType::kNetworkError;
  hs.location = topo::Coord{0, 0, -1, -1, -1};
  hs.window = cfg.window;
  hs.rate_per_node_hour = 1.0;
  hs.node_skew = 0.0;
  cfg.hotspots.push_back(hs);
  titanlog::CausalPairSpec pair;
  pair.cause = EventType::kNetworkError;
  pair.effect = EventType::kLustreError;
  pair.lag_seconds = 30;
  pair.probability = 1.0;
  pair.lag_jitter_seconds = 0;
  cfg.causal_pairs.push_back(pair);
  auto logs = titanlog::Generator(cfg).generate();
  model::BatchIngestor(cluster, engine).ingest_records(logs.events, {});

  Context ctx;
  ctx.window = cfg.window;
  auto matches = detect_composites(engine, cluster, ctx,
                                   default_composite_rules());
  // Every network error (except window-edge ones) escalates.
  std::size_t net_events = 0;
  for (const auto& e : logs.events) {
    net_events += e.type == EventType::kNetworkError ? 1 : 0;
  }
  ASSERT_GT(net_events, 50u);
  std::size_t net_lustre = 0;
  for (const auto& m : matches) {
    if (m.rule == "network_then_lustre") ++net_lustre;
  }
  EXPECT_GE(net_lustre, net_events * 9 / 10);
  // Matches come out sorted by completion time.
  for (std::size_t i = 1; i < matches.size(); ++i) {
    EXPECT_LE(matches[i - 1].end_ts, matches[i].end_ts);
  }
}

// -------------------------------------------------------------- profiles

TEST(AppProfileTest, RatesNormalizedByNodeHours) {
  cassalite::ClusterOptions copts;
  copts.node_count = 4;
  cassalite::Cluster cluster(copts);
  sparklite::Engine engine(sparklite::EngineOptions{.workers = 2});
  HPCLA_CHECK(model::create_data_model(cluster).is_ok());

  // Two jobs: "BIG" on nodes 0-3 for 2 h (8 node-hours) absorbing 8 MCEs;
  // "SMALL" on node 10 for 1 h (1 node-hour) absorbing 4 MCEs.
  JobRecord big;
  big.apid = 1;
  big.app_name = "BIG";
  big.user = "u1";
  big.start = kT0;
  big.end = kT0 + 2 * 3600;
  big.nodes = {0, 1, 2, 3};
  JobRecord small;
  small.apid = 2;
  small.app_name = "SMALL";
  small.user = "u2";
  small.start = kT0;
  small.end = kT0 + 3600;
  small.nodes = {10};
  small.exit_code = 1;

  std::vector<EventRecord> events;
  for (int i = 0; i < 8; ++i) {
    events.push_back(ev(kT0 + 100 + i, EventType::kMachineCheck,
                        static_cast<topo::NodeId>(i % 4), i));
  }
  for (int i = 0; i < 4; ++i) {
    events.push_back(ev(kT0 + 200 + i, EventType::kMachineCheck, 10, 100 + i));
  }
  // An event outside any job -> attributed to nobody.
  events.push_back(ev(kT0 + 300, EventType::kMachineCheck, 500, 999));
  std::sort(events.begin(), events.end(),
            [](const EventRecord& a, const EventRecord& b) {
              return a.ts < b.ts;
            });
  model::BatchIngestor(cluster, engine).ingest_records(events, {big, small});

  Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 2 * 3600};
  auto profiles = build_app_profiles(engine, cluster, ctx);
  ASSERT_EQ(profiles.size(), 2u);
  std::map<std::string, AppProfile> by_name;
  for (auto& p : profiles) by_name[p.app] = p;

  EXPECT_EQ(by_name["BIG"].runs, 1);
  EXPECT_EQ(by_name["BIG"].failed_runs, 0);
  EXPECT_DOUBLE_EQ(by_name["BIG"].node_hours, 8.0);
  EXPECT_EQ(by_name["BIG"].event_counts.at(EventType::kMachineCheck), 8);
  EXPECT_DOUBLE_EQ(by_name["BIG"].rate(EventType::kMachineCheck), 1.0);

  EXPECT_EQ(by_name["SMALL"].failed_runs, 1);
  EXPECT_DOUBLE_EQ(by_name["SMALL"].node_hours, 1.0);
  EXPECT_DOUBLE_EQ(by_name["SMALL"].rate(EventType::kMachineCheck), 4.0);
  EXPECT_DOUBLE_EQ(by_name["SMALL"].failure_rate(), 1.0);

  // Sorted by total rate: SMALL (4/nh) before BIG (1/nh).
  EXPECT_EQ(profiles.front().app, "SMALL");

  // JSON shape.
  Json j = profiles.front().to_json();
  EXPECT_EQ(j["app"].as_string(), "SMALL");
  EXPECT_EQ(j["event_counts"]["MCE"].as_int(), 4);
}

TEST(AppProfileTest, EmptyWindowYieldsNoProfiles) {
  cassalite::Cluster cluster{cassalite::ClusterOptions{}};
  sparklite::Engine engine(sparklite::EngineOptions{.workers = 2});
  HPCLA_CHECK(model::create_data_model(cluster).is_ok());
  Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 3600};
  EXPECT_TRUE(build_app_profiles(engine, cluster, ctx).empty());
}

// ------------------------------------------------------------- prediction

TEST(PredictionTest, PerfectPrecursorSignal) {
  // 5 nodes each emit 3 ECC errors then panic; 5 other nodes emit 3 ECC
  // errors and stay healthy would hurt precision — first the clean case.
  std::vector<EventRecord> events;
  std::int64_t seq = 0;
  for (int n = 0; n < 5; ++n) {
    for (int i = 0; i < 3; ++i) {
      events.push_back(ev(kT0 + n * 10000 + i * 60, EventType::kMemoryEcc,
                          n, seq++));
    }
    events.push_back(ev(kT0 + n * 10000 + 600, EventType::kKernelPanic, n,
                        seq++));
  }
  std::sort(events.begin(), events.end(),
            [](const EventRecord& a, const EventRecord& b) {
              return a.ts < b.ts;
            });
  PredictorConfig cfg;
  cfg.precursors = {EventType::kMemoryEcc};
  cfg.targets = {EventType::kKernelPanic};
  cfg.threshold = 3;
  cfg.window_seconds = 600;
  cfg.lead_seconds = 900;
  auto report = evaluate_predictor(events, cfg);
  EXPECT_EQ(report.failures, 5);
  EXPECT_EQ(report.failures_predicted, 5);
  EXPECT_EQ(report.true_positives, 5);
  EXPECT_EQ(report.false_positives, 0);
  EXPECT_DOUBLE_EQ(report.precision(), 1.0);
  EXPECT_DOUBLE_EQ(report.recall(), 1.0);
  EXPECT_NEAR(report.mean_lead_seconds(), 480.0, 1.0);  // 600 - 120
}

TEST(PredictionTest, FalsePositivesCounted) {
  std::vector<EventRecord> events;
  std::int64_t seq = 0;
  // Node 1: precursors then failure. Node 2: precursors, no failure.
  for (int i = 0; i < 3; ++i) {
    events.push_back(ev(kT0 + i * 60, EventType::kMemoryEcc, 1, seq++));
    events.push_back(ev(kT0 + i * 60 + 1, EventType::kMemoryEcc, 2, seq++));
  }
  events.push_back(ev(kT0 + 500, EventType::kKernelPanic, 1, seq++));
  PredictorConfig cfg;
  cfg.precursors = {EventType::kMemoryEcc};
  cfg.targets = {EventType::kKernelPanic};
  cfg.threshold = 3;
  auto report = evaluate_predictor(events, cfg);
  EXPECT_EQ(report.true_positives, 1);
  EXPECT_EQ(report.false_positives, 1);
  EXPECT_DOUBLE_EQ(report.precision(), 0.5);
  EXPECT_DOUBLE_EQ(report.recall(), 1.0);
}

TEST(PredictionTest, MissedFailureWithoutPrecursors) {
  std::vector<EventRecord> events{
      ev(kT0, EventType::kKernelPanic, 3, 0),  // out of the blue
  };
  PredictorConfig cfg;
  cfg.precursors = {EventType::kMemoryEcc};
  cfg.targets = {EventType::kKernelPanic};
  auto report = evaluate_predictor(events, cfg);
  EXPECT_EQ(report.failures, 1);
  EXPECT_EQ(report.failures_predicted, 0);
  EXPECT_DOUBLE_EQ(report.recall(), 0.0);
}

TEST(PredictionTest, AlarmExpiresAfterLeadWindow) {
  std::vector<EventRecord> events;
  std::int64_t seq = 0;
  for (int i = 0; i < 3; ++i) {
    events.push_back(ev(kT0 + i * 10, EventType::kMemoryEcc, 4, seq++));
  }
  // Failure arrives *after* the lead window: the alarm is stale.
  events.push_back(ev(kT0 + 5000, EventType::kKernelPanic, 4, seq++));
  PredictorConfig cfg;
  cfg.precursors = {EventType::kMemoryEcc};
  cfg.targets = {EventType::kKernelPanic};
  cfg.threshold = 3;
  cfg.lead_seconds = 1000;
  auto report = evaluate_predictor(events, cfg);
  EXPECT_EQ(report.true_positives, 0);
  EXPECT_EQ(report.false_positives, 1);
  EXPECT_EQ(report.failures_predicted, 0);
}

TEST(PredictionTest, WindowSlidesOldPrecursorsOut) {
  std::vector<EventRecord> events;
  std::int64_t seq = 0;
  // 3 precursors spread over more than the window: never trips.
  for (int i = 0; i < 3; ++i) {
    events.push_back(ev(kT0 + i * 2000, EventType::kMemoryEcc, 5, seq++));
  }
  PredictorConfig cfg;
  cfg.precursors = {EventType::kMemoryEcc};
  cfg.targets = {EventType::kKernelPanic};
  cfg.threshold = 3;
  cfg.window_seconds = 1800;
  auto report = evaluate_predictor(events, cfg);
  EXPECT_TRUE(report.alarms.empty());
}

TEST(PredictionTest, DefaultTypeSetsFromCatalog) {
  // With empty sets: targets = fatal types, precursors = everything else.
  std::vector<EventRecord> events;
  std::int64_t seq = 0;
  for (int i = 0; i < 5; ++i) {
    events.push_back(ev(kT0 + i * 10, EventType::kMemoryEcc, 6, seq++));
  }
  events.push_back(ev(kT0 + 100, EventType::kKernelPanic, 6, seq++));
  PredictorConfig cfg;
  cfg.threshold = 5;
  auto report = evaluate_predictor(events, cfg);
  EXPECT_EQ(report.failures, 1);
  EXPECT_EQ(report.true_positives, 1);
}

TEST(PredictionTest, EndToEndOnGeneratedEscalations) {
  // Inject ECC->panic escalations via the generator's causal pairs, plus
  // background noise; the predictor should achieve nontrivial recall with
  // reasonable precision.
  cassalite::ClusterOptions copts;
  copts.node_count = 4;
  cassalite::Cluster cluster(copts);
  sparklite::Engine engine(sparklite::EngineOptions{.workers = 4});
  HPCLA_CHECK(model::create_data_model(cluster).is_ok());

  titanlog::ScenarioConfig cfg;
  cfg.seed = 37;
  cfg.window = TimeRange{kT0, kT0 + 6 * 3600};
  cfg.background_scale = 0.0;
  titanlog::HotspotSpec ecc;
  ecc.type = EventType::kMemoryEcc;
  ecc.location = topo::Coord{2, 2, -1, -1, -1};
  ecc.window = cfg.window;
  ecc.rate_per_node_hour = 3.0;
  ecc.node_skew = 1.5;  // concentrate on a few sick nodes
  cfg.hotspots.push_back(ecc);
  titanlog::CausalPairSpec pair;
  pair.cause = EventType::kMemoryEcc;
  pair.effect = EventType::kKernelPanic;
  pair.lag_seconds = 300;
  pair.probability = 0.15;  // only some ECC streams escalate
  cfg.causal_pairs.push_back(pair);
  auto logs = titanlog::Generator(cfg).generate();
  model::BatchIngestor(cluster, engine).ingest_records(logs.events, {});

  Context ctx;
  ctx.window = cfg.window;
  PredictorConfig pcfg;
  pcfg.precursors = {EventType::kMemoryEcc};
  pcfg.targets = {EventType::kKernelPanic};
  pcfg.threshold = 4;
  pcfg.window_seconds = 3600;
  pcfg.lead_seconds = 3600;
  auto report = evaluate_predictor(engine, cluster, ctx, pcfg);
  ASSERT_GT(report.failures, 10);
  // A panic can follow a *single* ECC (the causal pair fires per event),
  // which a count-threshold predictor inherently misses — recall well
  // above chance but below 1 is the expected operating point.
  EXPECT_GT(report.recall(), 0.4);
  EXPECT_GT(report.precision(), 0.1);
  EXPECT_GT(report.mean_lead_seconds(), 0.0);
}

// ------------------------------------------------------------- assoc rules

TEST(AssocRulesTest, DetectsInjectedCoOccurrence) {
  // 200 baskets where HWERR and LustreError co-occur on the same node and
  // bucket; 200 baskets of lone DVS noise elsewhere.
  std::vector<EventRecord> events;
  std::int64_t seq = 0;
  for (int i = 0; i < 200; ++i) {
    const auto node = static_cast<topo::NodeId>(i);
    const UnixSeconds ts = kT0 + i * 600;
    events.push_back(ev(ts, EventType::kNetworkError, node, seq++));
    events.push_back(ev(ts + 30, EventType::kLustreError, node, seq++));
    events.push_back(ev(ts + 5, EventType::kDvsError,
                        static_cast<topo::NodeId>(1000 + i), seq++));
  }
  AssocConfig cfg;
  cfg.bucket_seconds = 600;
  cfg.min_support = 0.01;
  cfg.min_confidence = 0.5;
  auto rules = mine_association_rules(events, cfg);
  ASSERT_FALSE(rules.empty());
  // Top rule: HWERR => LustreError (or the symmetric one), lift >> 1.
  EXPECT_TRUE((rules[0].lhs == EventType::kNetworkError &&
               rules[0].rhs == EventType::kLustreError) ||
              (rules[0].lhs == EventType::kLustreError &&
               rules[0].rhs == EventType::kNetworkError));
  EXPECT_DOUBLE_EQ(rules[0].confidence, 1.0);
  EXPECT_GT(rules[0].lift, 1.5);
  // DVS never pairs with anything -> no rule involves it.
  for (const auto& r : rules) {
    EXPECT_NE(r.lhs, EventType::kDvsError);
    EXPECT_NE(r.rhs, EventType::kDvsError);
  }
}

TEST(AssocRulesTest, IndependentTypesHaveLiftNearOne) {
  // Types sprinkled independently over many baskets: any surviving rule
  // has lift ~1 (and low confidence gets filtered with a high threshold).
  Rng rng(5);
  std::vector<EventRecord> events;
  std::int64_t seq = 0;
  for (int i = 0; i < 3000; ++i) {
    const auto node = static_cast<topo::NodeId>(rng.next_below(50));
    const UnixSeconds ts =
        kT0 + static_cast<UnixSeconds>(rng.next_below(86400));
    const auto type =
        rng.chance(0.5) ? EventType::kMemoryEcc : EventType::kMachineCheck;
    events.push_back(ev(ts, type, node, seq++));
  }
  AssocConfig cfg;
  cfg.bucket_seconds = 600;
  cfg.min_support = 0.0;
  cfg.min_confidence = 0.0;
  auto rules = mine_association_rules(events, cfg);
  // Baskets are conditioned on containing at least one event, which biases
  // lift for sparse independent streams *below* 1 (a basket holding A is
  // less likely to also hold B when most baskets hold a single event).
  // The meaningful property: nowhere near the injected-coupling lifts.
  for (const auto& r : rules) {
    EXPECT_GT(r.lift, 0.2) << titanlog::event_id(r.lhs);
    EXPECT_LT(r.lift, 1.6) << titanlog::event_id(r.lhs);
  }
}

TEST(AssocRulesTest, ThresholdsFilter) {
  std::vector<EventRecord> events;
  events.push_back(ev(kT0, EventType::kMachineCheck, 1, 0));
  events.push_back(ev(kT0 + 1, EventType::kMemoryEcc, 1, 1));
  AssocConfig strict;
  strict.min_support = 0.9;  // impossible with disjoint extra baskets
  events.push_back(ev(kT0, EventType::kDvsError, 2, 2));
  events.push_back(ev(kT0, EventType::kDvsError, 3, 3));
  auto rules = mine_association_rules(events, strict);
  EXPECT_TRUE(rules.empty());
  AssocConfig loose;
  loose.min_support = 0.0;
  loose.min_confidence = 0.0;
  EXPECT_FALSE(mine_association_rules(events, loose).empty());
}

TEST(AssocRulesTest, EmptyInput) {
  EXPECT_TRUE(mine_association_rules({}, AssocConfig{}).empty());
}

TEST(AssocRulesTest, JsonShape) {
  AssocRule r;
  r.lhs = EventType::kNetworkError;
  r.rhs = EventType::kLustreError;
  r.pair_count = 7;
  r.support = 0.1;
  r.confidence = 0.9;
  r.lift = 4.2;
  Json j = r.to_json();
  EXPECT_EQ(j["lhs"].as_string(), "HWERR");
  EXPECT_EQ(j["rhs"].as_string(), "LustreError");
  EXPECT_DOUBLE_EQ(j["lift"].as_double(), 4.2);
}

TEST(AssocRulesTest, EndToEndOverCluster) {
  cassalite::ClusterOptions copts;
  copts.node_count = 4;
  cassalite::Cluster cluster(copts);
  sparklite::Engine engine(sparklite::EngineOptions{.workers = 4});
  HPCLA_CHECK(model::create_data_model(cluster).is_ok());

  titanlog::ScenarioConfig cfg;
  cfg.seed = 41;
  cfg.window = TimeRange{kT0, kT0 + 4 * 3600};
  cfg.background_scale = 0.3;
  titanlog::HotspotSpec hs;
  hs.type = EventType::kNetworkError;
  hs.location = topo::Coord{0, 0, -1, -1, -1};
  hs.window = cfg.window;
  hs.rate_per_node_hour = 2.0;
  hs.node_skew = 0.0;
  cfg.hotspots.push_back(hs);
  titanlog::CausalPairSpec pair;
  pair.cause = EventType::kNetworkError;
  pair.effect = EventType::kLustreError;
  pair.lag_seconds = 30;
  pair.probability = 0.95;
  cfg.causal_pairs.push_back(pair);
  auto logs = titanlog::Generator(cfg).generate();
  model::BatchIngestor(cluster, engine).ingest_records(logs.events, {});

  Context ctx;
  ctx.window = cfg.window;
  AssocConfig acfg;
  acfg.bucket_seconds = 300;
  acfg.min_support = 0.0005;
  acfg.min_confidence = 0.5;
  auto rules = mine_association_rules(engine, cluster, ctx, acfg);
  ASSERT_FALSE(rules.empty());
  bool found = false;
  for (const auto& r : rules) {
    if (r.lhs == EventType::kNetworkError &&
        r.rhs == EventType::kLustreError) {
      found = true;
      // Lag jitter can push an effect into the next bucket and background
      // Lustre noise dilutes the lift; the rule still stands out clearly.
      EXPECT_GT(r.confidence, 0.8);
      EXPECT_GT(r.lift, 1.3);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace hpcla::analytics
