// Tests for the sparklite engine, Dataset transformations/actions, shuffle
// operations, streaming micro-batches, and the cassalite source adapter.
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <string>

#include "cassalite/cluster.hpp"
#include "sparklite/cassalite_source.hpp"
#include "sparklite/dataset.hpp"
#include "sparklite/engine.hpp"
#include "sparklite/streaming.hpp"

namespace hpcla::sparklite {
namespace {

Engine::Options opts(std::size_t workers, bool locality = true) {
  Engine::Options o;
  o.workers = workers;
  o.locality_aware = locality;
  return o;
}

std::vector<int> iota_vec(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

// ----------------------------------------------------------------- dataset

TEST(DatasetTest, ParallelizeAndCollectPreservesOrder) {
  Engine e(opts(4));
  auto ds = Dataset<int>::parallelize(e, iota_vec(100), 7);
  EXPECT_EQ(ds.partition_count(), 7u);
  EXPECT_EQ(ds.collect(), iota_vec(100));
}

TEST(DatasetTest, ParallelizeEmptyAndSingleton) {
  Engine e(opts(2));
  auto empty = Dataset<int>::parallelize(e, {}, 4);
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_TRUE(empty.collect().empty());
  auto one = Dataset<int>::parallelize(e, {42}, 4);
  EXPECT_EQ(one.count(), 1u);
}

TEST(DatasetTest, MapFilterChain) {
  Engine e(opts(4));
  auto ds = Dataset<int>::parallelize(e, iota_vec(10), 3);
  auto result = ds.map([](const int& v) { return v * 2; })
                    .filter([](const int& v) { return v % 3 == 0; })
                    .collect();
  EXPECT_EQ(result, (std::vector<int>{0, 6, 12, 18}));
}

TEST(DatasetTest, MapChangesType) {
  Engine e(opts(2));
  auto ds = Dataset<int>::parallelize(e, {1, 2, 3}, 2);
  auto strs = ds.map([](const int& v) { return std::to_string(v); }).collect();
  EXPECT_EQ(strs, (std::vector<std::string>{"1", "2", "3"}));
}

TEST(DatasetTest, FlatMap) {
  Engine e(opts(2));
  auto ds = Dataset<std::string>::parallelize(e, {"a b", "c", ""}, 2);
  auto words = ds.flat_map([](const std::string& line) {
                   std::vector<std::string> out;
                   std::string cur;
                   for (char c : line) {
                     if (c == ' ') {
                       if (!cur.empty()) out.push_back(cur);
                       cur.clear();
                     } else {
                       cur.push_back(c);
                     }
                   }
                   if (!cur.empty()) out.push_back(cur);
                   return out;
                 }).collect();
  EXPECT_EQ(words, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(DatasetTest, MapPartitions) {
  Engine e(opts(2));
  auto ds = Dataset<int>::parallelize(e, iota_vec(10), 5);
  // Sum per partition -> exactly 5 values.
  auto sums = ds.map_partitions([](std::vector<int> in) {
                  int s = 0;
                  for (int v : in) s += v;
                  return std::vector<int>{s};
                }).collect();
  EXPECT_EQ(sums.size(), 5u);
  EXPECT_EQ(std::accumulate(sums.begin(), sums.end(), 0), 45);
}

TEST(DatasetTest, CountAndReduce) {
  Engine e(opts(4));
  auto ds = Dataset<int>::parallelize(e, iota_vec(101), 8);
  EXPECT_EQ(ds.count(), 101u);
  EXPECT_EQ(ds.reduce([](int a, int b) { return a + b; }, 0), 5050);
}

TEST(DatasetTest, TakeAndTop) {
  Engine e(opts(2));
  auto ds = Dataset<int>::parallelize(e, {5, 1, 9, 3, 7}, 2);
  EXPECT_EQ(ds.take(2), (std::vector<int>{5, 1}));
  EXPECT_EQ(ds.take(99).size(), 5u);
  auto top2 = ds.top(2, [](int a, int b) { return a < b; });
  EXPECT_EQ(top2, (std::vector<int>{9, 7}));
}

TEST(DatasetTest, UnionConcatenatesPartitions) {
  Engine e(opts(2));
  auto a = Dataset<int>::parallelize(e, {1, 2}, 1);
  auto b = Dataset<int>::parallelize(e, {3}, 1);
  auto u = a.union_with(b);
  EXPECT_EQ(u.partition_count(), 2u);
  EXPECT_EQ(u.collect(), (std::vector<int>{1, 2, 3}));
}

TEST(DatasetTest, RepartitionPreservesContent) {
  Engine e(opts(4));
  auto ds = Dataset<int>::parallelize(e, iota_vec(20), 2).repartition(6);
  EXPECT_EQ(ds.partition_count(), 6u);
  EXPECT_EQ(ds.collect(), iota_vec(20));
}

TEST(DatasetTest, LazyLineageRecomputes) {
  Engine e(opts(2));
  std::atomic<int> computes{0};
  std::vector<Dataset<int>::Partition> parts;
  parts.push_back({[&computes](const TaskContext&) {
                     computes++;
                     return std::vector<int>{1, 2, 3};
                   },
                   -1});
  Dataset<int> ds(e, std::move(parts));
  (void)ds.count();
  (void)ds.count();
  EXPECT_EQ(computes.load(), 2);  // uncached lineage re-executes
  auto cached = ds.cache();
  EXPECT_EQ(computes.load(), 3);  // cache materialized once
  (void)cached.count();
  (void)cached.collect();
  EXPECT_EQ(computes.load(), 3);  // served from memory
}

TEST(DatasetTest, KeyBy) {
  Engine e(opts(2));
  auto ds = Dataset<int>::parallelize(e, {1, 2, 3, 4}, 2);
  auto keyed = ds.key_by([](const int& v) { return v % 2; }).collect();
  EXPECT_EQ(keyed[0], (std::pair<int, int>{1, 1}));
  EXPECT_EQ(keyed[1], (std::pair<int, int>{0, 2}));
}

// ----------------------------------------------------------------- shuffle

TEST(ShuffleTest, ReduceByKeySumsValues) {
  Engine e(opts(4));
  std::vector<std::pair<std::string, int>> data;
  for (int i = 0; i < 100; ++i) {
    data.emplace_back("k" + std::to_string(i % 5), 1);
  }
  auto ds = Dataset<std::pair<std::string, int>>::parallelize(e, data, 8);
  auto reduced =
      reduce_by_key(ds, [](int a, int b) { return a + b; }, 4).collect();
  ASSERT_EQ(reduced.size(), 5u);
  for (const auto& [k, v] : reduced) EXPECT_EQ(v, 20) << k;
  EXPECT_GE(e.metrics().shuffles, 1u);
}

TEST(ShuffleTest, ReduceByKeyDeterministicOrdering) {
  Engine e(opts(4));
  std::vector<std::pair<std::string, int>> data{
      {"b", 1}, {"a", 2}, {"c", 3}, {"a", 4}};
  auto ds = Dataset<std::pair<std::string, int>>::parallelize(e, data, 2);
  auto r1 = reduce_by_key(ds, [](int a, int b) { return a + b; }, 3).collect();
  auto r2 = reduce_by_key(ds, [](int a, int b) { return a + b; }, 3).collect();
  EXPECT_EQ(r1, r2);
  // Within each output partition keys are sorted; verify totals.
  std::map<std::string, int> totals(r1.begin(), r1.end());
  EXPECT_EQ(totals["a"], 6);
  EXPECT_EQ(totals["b"], 1);
  EXPECT_EQ(totals["c"], 3);
}

TEST(ShuffleTest, GroupByKeyGathersAll) {
  Engine e(opts(2));
  std::vector<std::pair<int, std::string>> data{
      {1, "a"}, {2, "b"}, {1, "c"}, {1, "d"}};
  auto ds = Dataset<std::pair<int, std::string>>::parallelize(e, data, 2);
  auto grouped = group_by_key(ds, 2).collect();
  std::map<int, std::size_t> sizes;
  for (const auto& [k, vs] : grouped) sizes[k] = vs.size();
  EXPECT_EQ(sizes[1], 3u);
  EXPECT_EQ(sizes[2], 1u);
}

TEST(ShuffleTest, CountByKey) {
  Engine e(opts(2));
  std::vector<std::pair<std::string, int>> data{
      {"mce", 0}, {"lustre", 0}, {"mce", 0}};
  auto ds = Dataset<std::pair<std::string, int>>::parallelize(e, data, 2);
  auto counts = count_by_key(ds).collect();
  std::map<std::string, std::int64_t> m(counts.begin(), counts.end());
  EXPECT_EQ(m["mce"], 2);
  EXPECT_EQ(m["lustre"], 1);
}

TEST(ShuffleTest, JoinMatchesKeys) {
  Engine e(opts(2));
  using SP = std::pair<std::string, int>;
  auto left = Dataset<SP>::parallelize(e, {{"a", 1}, {"b", 2}, {"a", 3}}, 2);
  auto right = Dataset<std::pair<std::string, std::string>>::parallelize(
      e, {{"a", "x"}, {"c", "y"}}, 2);
  auto joined = join(left, right).collect();
  ASSERT_EQ(joined.size(), 2u);  // ("a",1,"x") and ("a",3,"x")
  for (const auto& [k, lr] : joined) {
    EXPECT_EQ(k, "a");
    EXPECT_EQ(lr.second, "x");
  }
}

TEST(ShuffleTest, SortBy) {
  Engine e(opts(2));
  auto ds = Dataset<int>::parallelize(e, {5, 3, 9, 1}, 2);
  auto sorted = sort_by(ds, [](const int& v) { return v; }).collect();
  EXPECT_EQ(sorted, (std::vector<int>{1, 3, 5, 9}));
  auto desc = sort_by(ds, [](const int& v) { return -v; }).collect();
  EXPECT_EQ(desc, (std::vector<int>{9, 5, 3, 1}));
}

TEST(ShuffleTest, WideOpsOnEmptyDatasets) {
  Engine e(opts(2));
  auto empty = Dataset<std::pair<std::string, int>>::parallelize(e, {}, 3);
  EXPECT_TRUE(reduce_by_key(empty, [](int a, int b) { return a + b; })
                  .collect().empty());
  EXPECT_TRUE(group_by_key(empty).collect().empty());
  EXPECT_TRUE(count_by_key(empty).collect().empty());
  auto right = Dataset<std::pair<std::string, int>>::parallelize(
      e, {{"a", 1}}, 1);
  EXPECT_TRUE(join(empty, right).collect().empty());
  EXPECT_TRUE(join(right, empty).collect().empty());
}

TEST(ShuffleTest, JoinWithNoMatchingKeys) {
  Engine e(opts(2));
  auto left = Dataset<std::pair<std::string, int>>::parallelize(
      e, {{"a", 1}, {"b", 2}}, 2);
  auto right = Dataset<std::pair<std::string, int>>::parallelize(
      e, {{"c", 3}}, 1);
  EXPECT_TRUE(join(left, right).collect().empty());
}

TEST(ShuffleTest, SortByEmptyAndSingleton) {
  Engine e(opts(2));
  auto empty = Dataset<int>::parallelize(e, {}, 2);
  EXPECT_TRUE(sort_by(empty, [](const int& v) { return v; }).collect().empty());
  auto one = Dataset<int>::parallelize(e, {42}, 2);
  EXPECT_EQ(sort_by(one, [](const int& v) { return v; }).collect(),
            std::vector<int>{42});
}

TEST(ShuffleTest, ReduceByKeyStableUnderDuplicateHeavyKeys) {
  // A single dominant key must not lose counts through map-side combine.
  Engine e(opts(4));
  std::vector<std::pair<std::string, std::int64_t>> data;
  for (int i = 0; i < 10000; ++i) data.emplace_back("hot", 1);
  data.emplace_back("cold", 1);
  auto ds = Dataset<std::pair<std::string, std::int64_t>>::parallelize(
      e, data, 16);
  auto counts = reduce_by_key(
                    ds, [](std::int64_t a, std::int64_t b) { return a + b; })
                    .collect();
  std::map<std::string, std::int64_t> m(counts.begin(), counts.end());
  EXPECT_EQ(m["hot"], 10000);
  EXPECT_EQ(m["cold"], 1);
}

// ------------------------------------------------------ engine / locality

TEST(EngineTest, MetricsCountStagesAndTasks) {
  Engine e(opts(2));
  auto ds = Dataset<int>::parallelize(e, iota_vec(10), 5);
  (void)ds.collect();
  auto m = e.metrics();
  EXPECT_EQ(m.stages, 1u);
  EXPECT_EQ(m.tasks, 5u);
}

TEST(EngineTest, LocalityAwareSchedulingHitsLocal) {
  Engine e(opts(4, /*locality=*/true));
  std::vector<Dataset<int>::Partition> parts;
  for (int p = 0; p < 8; ++p) {
    parts.push_back({[](const TaskContext&) { return std::vector<int>{1}; },
                     p % 4});  // preferred nodes 0..3
  }
  Dataset<int> ds(e, std::move(parts));
  (void)ds.collect();
  auto m = e.metrics();
  EXPECT_EQ(m.local_tasks, 8u);
  EXPECT_EQ(m.remote_fetches, 0u);
}

TEST(EngineTest, NonLocalSchedulingFetchesRemotely) {
  Engine e(opts(4, /*locality=*/false));
  std::vector<Dataset<int>::Partition> parts;
  for (int p = 0; p < 16; ++p) {
    // Preferred node deliberately misaligned with round-robin assignment.
    parts.push_back({[](const TaskContext&) { return std::vector<int>{1}; },
                     (p + 1) % 4});
  }
  Dataset<int> ds(e, std::move(parts));
  (void)ds.collect();
  auto m = e.metrics();
  EXPECT_EQ(m.remote_fetches, 16u);
}

TEST(EngineTest, TaskContextReportsAssignment) {
  Engine e(opts(3, true));
  std::vector<int> assigned(6, -1);
  std::vector<Dataset<int>::Partition> parts;
  for (int p = 0; p < 6; ++p) {
    parts.push_back({[&assigned, p](const TaskContext& ctx) {
                       assigned[static_cast<std::size_t>(p)] = ctx.assigned_worker;
                       return std::vector<int>{};
                     },
                     p});
  }
  (void)Dataset<int>(e, std::move(parts)).collect();
  for (int p = 0; p < 6; ++p) EXPECT_EQ(assigned[static_cast<std::size_t>(p)], p % 3);
}

TEST(EngineTest, StageHistoryRecordsLabelsAndCounts) {
  Engine e(opts(2));
  e.set_next_stage_label("first-job");
  auto ds = Dataset<int>::parallelize(e, iota_vec(20), 5);
  (void)ds.collect();
  (void)ds.count();  // unlabeled stage
  auto history = e.stage_history();
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].label, "first-job");
  EXPECT_EQ(history[0].tasks, 5u);
  EXPECT_EQ(history[0].local_tasks + history[0].remote_fetches, 5u);
  EXPECT_GE(history[0].seconds, 0.0);
  EXPECT_EQ(history[1].label, "stage-2");
  auto art = e.render_history();
  EXPECT_NE(art.find("first-job"), std::string::npos);
  EXPECT_NE(art.find("stage-2"), std::string::npos);
}

TEST(EngineTest, StageHistoryBounded) {
  Engine e(opts(1));
  auto ds = Dataset<int>::parallelize(e, {1}, 1);
  for (int i = 0; i < 300; ++i) (void)ds.count();
  EXPECT_EQ(e.stage_history().size(), 256u);
  // Oldest evicted: first retained stage is stage-45.
  EXPECT_EQ(e.stage_history().front().label, "stage-45");
}

// --------------------------------------------------------------- streaming

TEST(StreamingTest, WindowsSplitOnEventTime) {
  buslite::Broker broker;
  ASSERT_TRUE(broker.create_topic("events", {.partitions = 2}).is_ok());
  // Messages across 3 distinct seconds, out of order.
  const std::vector<std::pair<UnixMillis, std::string>> msgs{
      {2500, "c"}, {1200, "a"}, {1900, "b"}, {3100, "d"}, {2600, "e"}};
  for (const auto& [ts, v] : msgs) {
    ASSERT_TRUE(broker.produce("events", v, v, ts).is_ok());
  }
  MicroBatchStream stream(broker, "g", "events");
  std::vector<MicroBatch> seen;
  const std::size_t batches =
      stream.process_available([&](const MicroBatch& b) { seen.push_back(b); });
  ASSERT_EQ(batches, 3u);
  EXPECT_EQ(seen[0].window_start, 1000);
  EXPECT_EQ(seen[0].messages.size(), 2u);
  EXPECT_EQ(seen[0].messages[0].value, "a");  // sorted by ts within window
  EXPECT_EQ(seen[1].window_start, 2000);
  EXPECT_EQ(seen[1].messages.size(), 2u);
  EXPECT_EQ(seen[2].window_start, 3000);
  EXPECT_EQ(stream.messages_processed(), 5u);
}

TEST(StreamingTest, SecondProcessSeesOnlyNewMessages) {
  buslite::Broker broker;
  ASSERT_TRUE(broker.create_topic("events", {.partitions = 1}).is_ok());
  ASSERT_TRUE(broker.produce("events", "k", "first", 1000).is_ok());
  MicroBatchStream stream(broker, "g", "events");
  EXPECT_EQ(stream.process_available([](const MicroBatch&) {}), 1u);
  EXPECT_EQ(stream.process_available([](const MicroBatch&) {}), 0u);
  ASSERT_TRUE(broker.produce("events", "k", "second", 5000).is_ok());
  std::size_t count = 0;
  stream.process_available([&](const MicroBatch& b) {
    count += b.messages.size();
    EXPECT_EQ(b.messages[0].value, "second");
  });
  EXPECT_EQ(count, 1u);
}

TEST(StreamingTest, PooledDrainMatchesSequential) {
  buslite::Broker broker;
  ASSERT_TRUE(broker.create_topic("events", {.partitions = 4}).is_ok());
  // Many keys over several windows, timestamps deliberately out of order
  // within each partition so the merge's sorted-run fast path is skipped.
  for (int i = 0; i < 200; ++i) {
    const UnixMillis ts = 1000 + ((i * 37) % 5) * 1000 + (i * 13) % 997;
    ASSERT_TRUE(broker.produce("events", "node-" + std::to_string(i % 23),
                               "v" + std::to_string(i), ts)
                    .is_ok());
  }
  using Delivered = std::vector<std::pair<UnixMillis, std::vector<std::string>>>;
  auto drain = [&broker](const std::string& group, StreamOptions options) {
    MicroBatchStream stream(broker, group, "events", options);
    Delivered out;
    stream.process_available([&out](const MicroBatch& b) {
      std::vector<std::string> values;
      for (const auto& m : b.messages) values.push_back(m.value);
      out.emplace_back(b.window_start, std::move(values));
    });
    return out;
  };
  ThreadPool pool(4);
  const Delivered sequential =
      drain("seq", {.window_ms = 1000, .max_poll = 64, .pool = nullptr});
  const Delivered pooled =
      drain("par", {.window_ms = 1000, .max_poll = 64, .pool = &pool});
  ASSERT_EQ(sequential.size(), 5u);
  EXPECT_EQ(pooled, sequential);
}

TEST(StreamingTest, CommittedOffsetsSurviveRestart) {
  buslite::Broker broker;
  ASSERT_TRUE(broker.create_topic("events", {.partitions = 1}).is_ok());
  ASSERT_TRUE(broker.produce("events", "k", "v1", 1000).is_ok());
  {
    MicroBatchStream s1(broker, "g", "events");
    s1.process_available([](const MicroBatch&) {});
  }
  ASSERT_TRUE(broker.produce("events", "k", "v2", 2000).is_ok());
  MicroBatchStream s2(broker, "g", "events");
  std::vector<std::string> seen;
  s2.process_available([&](const MicroBatch& b) {
    for (const auto& m : b.messages) seen.push_back(m.value);
  });
  EXPECT_EQ(seen, (std::vector<std::string>{"v2"}));
}

// --------------------------------------------------------- cassalite source

TEST(CassaliteSourceTest, ScanReadsAllPartitionsWithLocality) {
  cassalite::ClusterOptions copts;
  copts.node_count = 4;
  copts.replication_factor = 2;
  cassalite::Cluster cluster(copts);
  for (int p = 0; p < 12; ++p) {
    for (int r = 0; r < 5; ++r) {
      cassalite::Row row;
      row.key = cassalite::ClusteringKey::of(
          {cassalite::Value(r), cassalite::Value(0)});
      row.set("v", p * 100 + r);
      ASSERT_TRUE(cluster.insert("t", "pk-" + std::to_string(p), row).is_ok());
    }
  }
  // Keys batch into one sparklite partition per primary node.
  std::set<cassalite::NodeIndex> primaries;
  for (int p = 0; p < 12; ++p) {
    primaries.insert(cluster.ring().primary("pk-" + std::to_string(p)));
  }
  Engine e(opts(4, true));
  auto ds = scan_table(e, cluster, "t");
  EXPECT_EQ(ds.partition_count(), primaries.size());
  EXPECT_EQ(ds.count(), 60u);
  auto m = e.metrics();
  EXPECT_EQ(m.local_tasks, primaries.size());  // co-located workers == nodes
  EXPECT_EQ(m.remote_fetches, 0u);
}

TEST(CassaliteSourceTest, MaxKeysPerTaskSplitsNodeBatches) {
  cassalite::ClusterOptions copts;
  copts.node_count = 2;
  copts.replication_factor = 1;
  cassalite::Cluster cluster(copts);
  for (int p = 0; p < 16; ++p) {
    cassalite::Row row;
    row.key = cassalite::ClusteringKey::of({cassalite::Value(p)});
    row.set("v", p);
    ASSERT_TRUE(cluster.insert("t", "pk-" + std::to_string(p), row).is_ok());
  }
  Engine e(opts(4, true));
  auto whole = scan_table(e, cluster, "t");
  auto split = scan_table(e, cluster, "t", {}, /*max_keys_per_task=*/3);
  EXPECT_GT(split.partition_count(), whole.partition_count());
  EXPECT_EQ(split.count(), 16u);
  EXPECT_EQ(whole.count(), 16u);
  // Splitting preserves locality: every chunk keeps its node preference.
  EXPECT_EQ(e.metrics().remote_fetches, 0u);
}

TEST(CassaliteSourceTest, KeyedScanCarriesPartitionKey) {
  cassalite::ClusterOptions copts;
  copts.node_count = 2;
  cassalite::Cluster cluster(copts);
  cassalite::Row row;
  row.key = cassalite::ClusteringKey::of({cassalite::Value(1)});
  row.set("v", 7);
  ASSERT_TRUE(cluster.insert("t", "the-key", row).is_ok());
  Engine e(opts(2));
  auto pairs = scan_table_keyed(e, cluster, "t").collect();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, "the-key");
  EXPECT_EQ(pairs[0].second.find("v")->as_int(), 7);
}

TEST(CassaliteSourceTest, ExplicitPartitionListRestrictsScan) {
  cassalite::Cluster cluster;
  for (int p = 0; p < 6; ++p) {
    cassalite::Row row;
    row.key = cassalite::ClusteringKey::of({cassalite::Value(p)});
    row.set("v", p);
    ASSERT_TRUE(cluster.insert("t", "pk-" + std::to_string(p), row).is_ok());
  }
  Engine e(opts(2));
  auto ds = scan_table(e, cluster, "t", {"pk-1", "pk-3"});
  EXPECT_EQ(ds.count(), 2u);
}

// Property sweep: word count (the paper's Fig 7 idiom) is correct for any
// worker count and partitioning.
struct WordCountParam {
  std::size_t workers;
  std::size_t partitions;
};

class WordCountPropertyTest
    : public ::testing::TestWithParam<WordCountParam> {};

TEST_P(WordCountPropertyTest, CountsIndependentOfParallelism) {
  const auto p = GetParam();
  Engine e(opts(p.workers));
  std::vector<std::string> lines;
  for (int i = 0; i < 200; ++i) {
    lines.push_back("ost" + std::to_string(i % 7) + " error");
  }
  auto ds = Dataset<std::string>::parallelize(e, lines, p.partitions);
  auto words = ds.map([](const std::string& line) {
    return std::make_pair(line.substr(0, line.find(' ')), 1);
  });
  auto counts = count_by_key(words).collect();
  ASSERT_EQ(counts.size(), 7u);
  std::int64_t total = 0;
  for (const auto& [word, n] : counts) {
    EXPECT_GE(n, 28);
    EXPECT_LE(n, 29);
    total += n;
  }
  EXPECT_EQ(total, 200);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WordCountPropertyTest,
    ::testing::Values(WordCountParam{1, 1}, WordCountParam{1, 8},
                      WordCountParam{2, 3}, WordCountParam{4, 4},
                      WordCountParam{8, 16}, WordCountParam{4, 1}));

}  // namespace
}  // namespace hpcla::sparklite
