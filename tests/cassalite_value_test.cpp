#include "cassalite/value.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

namespace hpcla::cassalite {
namespace {

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(7).is_int());
  EXPECT_TRUE(Value(std::int64_t{1} << 40).is_int());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("text").is_text());
  EXPECT_TRUE(Value(std::string("s")).is_text());
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value(true).as_bool(), true);
  EXPECT_EQ(Value(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_DOUBLE_EQ(Value(4).as_double(), 4.0);  // int promotes
  EXPECT_EQ(Value("abc").as_text(), "abc");
  EXPECT_ANY_THROW((void)Value(1).as_text());
  EXPECT_ANY_THROW((void)Value("x").as_int());
}

TEST(ValueTest, CrossTypeOrdering) {
  // null < bool < numeric < text
  std::vector<Value> vals{Value("z"), Value(1), Value(), Value(false)};
  std::sort(vals.begin(), vals.end(),
            [](const Value& a, const Value& b) { return a < b; });
  EXPECT_TRUE(vals[0].is_null());
  EXPECT_TRUE(vals[1].is_bool());
  EXPECT_TRUE(vals[2].is_int());
  EXPECT_TRUE(vals[3].is_text());
}

TEST(ValueTest, NumericCrossComparison) {
  EXPECT_TRUE(Value(2) < Value(2.5));
  EXPECT_TRUE(Value(2.5) < Value(3));
  EXPECT_EQ(Value(2), Value(2.0));
  EXPECT_TRUE(Value(-1) < Value(0.5));
}

TEST(ValueTest, TextOrdering) {
  EXPECT_TRUE(Value("MCE") < Value("SeaStar"));
  EXPECT_TRUE(Value("abc") < Value("abd"));
  EXPECT_EQ(Value("same"), Value("same"));
}

TEST(ValueTest, JsonRoundTrip) {
  for (const Value& v : {Value(), Value(true), Value(123), Value(0.25),
                         Value("lustre OST0042")}) {
    auto back = Value::from_json(v.to_json());
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value(), v);
  }
}

TEST(ValueTest, NaNRejectedAtConstruction) {
  EXPECT_ANY_THROW(Value(std::nan("")));
  EXPECT_NO_THROW(Value(0.0));
  EXPECT_NO_THROW(Value(std::numeric_limits<double>::infinity()));
  Json bad(std::nan(""));
  EXPECT_FALSE(Value::from_json(bad).is_ok());
}

TEST(ValueTest, FromJsonRejectsComposite) {
  EXPECT_FALSE(Value::from_json(Json::array()).is_ok());
  EXPECT_FALSE(Value::from_json(Json::object()).is_ok());
}

TEST(ValueTest, MemoryAccountsForText) {
  EXPECT_GT(Value(std::string(1000, 'x')).memory_bytes(),
            Value(1).memory_bytes() + 900);
}

TEST(ClusteringKeyTest, LexicographicCompare) {
  auto k = [](std::initializer_list<Value> parts) {
    return ClusteringKey::of(parts);
  };
  EXPECT_TRUE(k({1, 2}) < k({1, 3}));
  EXPECT_TRUE(k({1, 2}) < k({2, 0}));
  EXPECT_TRUE(k({1}) < k({1, 0}));  // prefix sorts first
  EXPECT_EQ(k({1, "a"}), k({1, "a"}));
  EXPECT_TRUE(k({"app", 5}) < k({"app", 6}));
}

TEST(ClusteringKeyTest, EmptyKeySortsFirst) {
  EXPECT_TRUE(ClusteringKey{} < ClusteringKey::of({Value(0)}));
  EXPECT_EQ(ClusteringKey{}, ClusteringKey{});
}

TEST(RowTest, SetAndFind) {
  Row r;
  r.set("type", "MCE");
  r.set("count", 3);
  r.set("count", 4);  // overwrite
  ASSERT_NE(r.find("type"), nullptr);
  EXPECT_EQ(r.find("type")->as_text(), "MCE");
  EXPECT_EQ(r.find("count")->as_int(), 4);
  EXPECT_EQ(r.find("absent"), nullptr);
  EXPECT_EQ(r.cells.size(), 2u);
}

TEST(RowTest, ToJson) {
  Row r;
  r.key = ClusteringKey::of({Value(1489468866), Value(0)});
  r.set("msg", "machine check");
  Json j = r.to_json();
  EXPECT_EQ(j["key"].as_array().size(), 2u);
  EXPECT_EQ(j["columns"]["msg"].as_string(), "machine check");
}

}  // namespace
}  // namespace hpcla::cassalite
