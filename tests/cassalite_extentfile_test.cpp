// Out-of-core extent-file tests (DESIGN.md §14): footer roundtrip through
// a sealed file, lazy block fetch with group pruning on cold slice reads,
// BlockCache reuse on warm reads, engine-level crash recovery and cold
// start from disk (byte-identical reads), compaction unlinking superseded
// files, and reopen-from-disk shrugging off malformed files.
#include "cassalite/extent_file.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "cassalite/extent.hpp"
#include "cassalite/sstable.hpp"
#include "cassalite/storage_engine.hpp"
#include "common/block_cache.hpp"
#include "common/scratch.hpp"

namespace hpcla::cassalite {
namespace {

Row make_row(std::int64_t ck, std::int64_t ts) {
  Row r;
  r.key.parts = {Value(ck)};
  r.write_ts = ts;
  return r;
}

std::vector<Row> sample_rows(std::int64_t n) {
  std::vector<Row> rows;
  for (std::int64_t i = 0; i < n; ++i) {
    Row r = make_row(i, 1000 + i);
    r.set("node", Value(i % 32));
    r.set("score", Value(0.25 * static_cast<double>(i)));
    r.set("msg", Value(std::string("event class ") + std::to_string(i % 6)));
    rows.push_back(std::move(r));
  }
  return rows;
}

/// Encodes `rows` into a sealed single-partition extent file at `path`
/// and returns the file-backed extent rebuilt from its footer.
ColumnarExtent persist_one_partition(const std::vector<Row>& rows,
                                     const std::string& path,
                                     const ExtentOptions& opts,
                                     bool use_mmap) {
  auto ext = ColumnarExtent::encode(rows, opts);
  const std::uint64_t raw = ext.raw_bytes();
  ExtentFileWriter writer(path);
  ext.persist([&](std::string_view block) { return writer.append(block); });
  ExtentFileFooter footer;
  footer.table = "events";
  footer.generation = 1;
  footer.flushed_lsn = 7;
  ExtentFilePartition part;
  part.key = "p0";
  part.groups = ext.group_metas();
  part.rows = rows.size();
  part.raw_bytes = raw;
  footer.partitions.push_back(std::move(part));
  writer.finish(footer);

  auto file = ExtentFile::open(path, use_mmap);
  EXPECT_NE(file, nullptr);
  EXPECT_EQ(file->footer().table, "events");
  EXPECT_EQ(file->footer().flushed_lsn, 7u);
  EXPECT_EQ(file->footer().partitions.size(), 1u);
  return ColumnarExtent::from_file(file, file->footer().partitions[0].groups,
                                   rows.size(), raw, opts);
}

class ExtentFileTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = scratch::make_subdir("extfile-test"); }
  void TearDown() override {
    BlockCache::instance().set_capacity(0);
    scratch::remove_all(dir_);
  }
  std::string dir_;
};

TEST_F(ExtentFileTest, RoundTripsThroughSealedFile) {
  const auto rows = sample_rows(500);
  for (const bool mmap : {true, false}) {
    ExtentOptions opts;
    opts.rows_per_group = 64;
    const auto cold = persist_one_partition(
        rows, dir_ + (mmap ? "/a.extent" : "/b.extent"), opts, mmap);
    EXPECT_TRUE(cold.file_backed());
    EXPECT_EQ(cold.file()->mapped(), mmap);
    EXPECT_EQ(cold.decode_all(), rows) << "mmap=" << mmap;
  }
}

TEST_F(ExtentFileTest, ColdSliceReadFetchesOnlyIntersectingBlocks) {
  const auto rows = sample_rows(1000);
  ExtentOptions opts;
  opts.rows_per_group = 100;
  const auto cold =
      persist_one_partition(rows, dir_ + "/c.extent", opts, true);
  ASSERT_EQ(cold.group_count(), 10u);

  ClusteringSlice slice;
  slice.lower = ClusteringKey::of({Value(450)});
  slice.upper = ClusteringKey::of({Value(460)});
  std::vector<Row> out;
  cold.read(slice, out);
  ASSERT_EQ(out.size(), 10u);
  EXPECT_EQ(out.front().key.parts[0].as_int(), 450);
  // Pruning happens on the footer's uncompressed first/last keys — only
  // the intersecting group (plus at most one boundary neighbor) is
  // fetched from disk and decoded.
  EXPECT_LE(cold.decoded_groups(), 2u);
}

TEST_F(ExtentFileTest, WarmReReadsServeFromBlockCache) {
  BlockCache::instance().set_capacity(16u << 20);
  const auto rows = sample_rows(800);
  ExtentOptions opts;
  opts.rows_per_group = 64;
  opts.cache_decoded = true;
  const auto cold =
      persist_one_partition(rows, dir_ + "/d.extent", opts, true);

  const auto before = BlockCache::instance().stats();
  EXPECT_EQ(cold.decode_all(), rows);  // cold pass decodes every group
  const std::uint64_t cold_decodes = cold.decoded_groups();
  EXPECT_EQ(cold_decodes, cold.group_count());

  EXPECT_EQ(cold.decode_all(), rows);  // warm pass: all cache hits
  const auto after = BlockCache::instance().stats();
  EXPECT_EQ(cold.decoded_groups(), cold_decodes)
      << "warm re-read must not decode blocks again";
  EXPECT_GE(after.hits - before.hits, cold.group_count());
  const double hit_rate =
      static_cast<double>(after.hits - before.hits) /
      static_cast<double>((after.hits - before.hits) +
                          (after.misses - before.misses));
  EXPECT_GE(hit_rate, 0.5);
}

TEST_F(ExtentFileTest, OpenRejectsFooterWithOutOfBoundsGroups) {
  // A footer can decode cleanly yet index blocks outside the file (bit
  // rot, crafted input). open() must reject it — fetch() would otherwise
  // read past the mapping, and `offset + length` can even wrap uint64.
  struct Case {
    std::uint64_t offset;
    std::uint32_t length;
  };
  const Case cases[] = {
      {~std::uint64_t{0} - 4, 100},  // offset + length wraps past zero
      {1u << 30, 8},                 // offset beyond EOF
      {0, ~std::uint32_t{0}},        // length beyond EOF
  };
  int n = 0;
  for (const Case& c : cases) {
    const std::string path = dir_ + "/oob" + std::to_string(n++) + ".extent";
    {
      ExtentFileWriter writer(path);
      writer.append("some block bytes");
      ExtentFileFooter footer;
      footer.table = "events";
      footer.generation = 1;
      ExtentFilePartition part;
      part.key = "p0";
      ExtentGroupMeta g;
      g.rows = 1;
      g.raw_size = 8;
      g.offset = c.offset;
      g.length = c.length;
      part.groups.push_back(g);
      part.rows = 1;
      footer.partitions.push_back(std::move(part));
      writer.finish(footer);
    }
    EXPECT_EQ(ExtentFile::open(path, true), nullptr)
        << "offset=" << c.offset << " length=" << c.length;
  }
}

TEST_F(ExtentFileTest, OpenRejectsMalformedFiles) {
  // Truncated / garbage / empty files must yield nullptr, not a crash.
  const std::string junk = dir_ + "/junk.extent";
  { std::ofstream(junk) << "HPEXT1\nnot really a footer"; }
  EXPECT_EQ(ExtentFile::open(junk, true), nullptr);
  const std::string empty = dir_ + "/empty.extent";
  { std::ofstream touch(empty); }
  EXPECT_EQ(ExtentFile::open(empty, true), nullptr);
  EXPECT_EQ(ExtentFile::open(dir_ + "/missing.extent", true), nullptr);
}

// ------------------------------------------------------------ engine level

StorageOptions out_of_core_options(const std::string& dir) {
  StorageOptions opts;
  opts.extent_files = true;
  opts.data_dir = dir;
  opts.memtable_flush_bytes = 32u << 10;  // many flushes
  opts.compaction_threshold = 4;
  opts.extent_rows_per_group = 64;
  return opts;
}

void write_workload(StorageEngine& eng, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    WriteCommand cmd;
    cmd.table = "events";
    cmd.partition_key = "node-" + std::to_string(i % 5);
    cmd.row = make_row(i, 1000 + i);
    cmd.row.set("count", Value(i % 13));
    cmd.row.set("msg", Value(std::string("event class ") +
                             std::to_string(i % 6)));
    eng.apply(cmd);
  }
  // Overwrites exercising LWW reconciliation across runs.
  for (std::int64_t i = 0; i < n; i += 10) {
    WriteCommand cmd;
    cmd.table = "events";
    cmd.partition_key = "node-" + std::to_string(i % 5);
    cmd.row = make_row(i, 999999 + i);
    cmd.row.set("count", Value(-7));
    eng.apply(cmd);
  }
}

std::vector<std::vector<Row>> collect_all(const StorageEngine& eng) {
  std::vector<std::vector<Row>> out;
  for (int p = 0; p < 5; ++p) {
    ReadQuery q;
    q.table = "events";
    q.partition_key = "node-" + std::to_string(p);
    out.push_back(eng.read(q).rows);
  }
  return out;
}

std::size_t extent_file_count(const std::string& dir) {
  std::size_t n = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".extent") ++n;
  }
  return n;
}

TEST_F(ExtentFileTest, CrashRecoveryReadsAreByteIdentical) {
  StorageEngine eng(out_of_core_options(dir_ + "/crash"));
  write_workload(eng, 3000);
  // Deliberately leave unflushed memtable rows: recovery must merge the
  // extent files with the commit-log replay.
  const auto before = collect_all(eng);
  const auto metrics_before = eng.metrics();
  EXPECT_GT(metrics_before.extent_files_written, 0u);

  const std::size_t replayed = eng.crash_and_recover();
  EXPECT_GT(replayed, 0u) << "unflushed tail should replay from the log";
  EXPECT_EQ(collect_all(eng), before);

  // Cold start exercises the same path explicitly.
  (void)eng.reopen_from_disk();
  EXPECT_EQ(collect_all(eng), before);
}

TEST_F(ExtentFileTest, FreshEngineReopensFromDiskByteIdentical) {
  const std::string data = dir_ + "/reopen";
  std::vector<std::vector<Row>> before;
  {
    StorageEngine eng(out_of_core_options(data));
    write_workload(eng, 2500);
    eng.flush_all();  // everything durable in extent files
    before = collect_all(eng);
  }
  // The engine is gone; explicit data_dir survives. A stray junk file in
  // the directory must be skipped, not fatal.
  { std::ofstream(data + "/stray.extent") << "garbage"; }
  StorageEngine fresh(out_of_core_options(data));
  (void)fresh.reopen_from_disk();
  EXPECT_EQ(collect_all(fresh), before);
  EXPECT_GT(fresh.metrics().extent_raw_bytes, 0u);
}

TEST_F(ExtentFileTest, CompactionUnlinksSupersededFiles) {
  const std::string data = dir_ + "/compact";
  StorageEngine eng(out_of_core_options(data));
  write_workload(eng, 6000);
  eng.flush_all();
  const auto m = eng.metrics();
  EXPECT_GT(m.compactions, 0u);
  // Every published SSTable owns exactly one live extent file; inputs
  // superseded by compaction are unlinked once unreferenced.
  EXPECT_LT(extent_file_count(data), m.extent_files_written);
  const auto before = collect_all(eng);
  (void)eng.reopen_from_disk();
  EXPECT_EQ(collect_all(eng), before)
      << "reopen after compaction must see only live files";
}

TEST_F(ExtentFileTest, EngineWarmReadsHitBlockCache) {
  StorageOptions opts = out_of_core_options(dir_ + "/cache");
  opts.block_cache_bytes = 16u << 20;
  StorageEngine eng(opts);
  write_workload(eng, 3000);
  eng.flush_all();

  const auto cold_stats = BlockCache::instance().stats();
  const auto first = collect_all(eng);   // populates the cache
  const auto mid_stats = BlockCache::instance().stats();
  EXPECT_EQ(collect_all(eng), first);    // warm re-read
  const auto warm_stats = BlockCache::instance().stats();

  EXPECT_GT(mid_stats.inserts - cold_stats.inserts, 0u);
  const std::uint64_t warm_hits = warm_stats.hits - mid_stats.hits;
  const std::uint64_t warm_misses = warm_stats.misses - mid_stats.misses;
  ASSERT_GT(warm_hits + warm_misses, 0u);
  const double hit_rate =
      static_cast<double>(warm_hits) /
      static_cast<double>(warm_hits + warm_misses);
  EXPECT_GE(hit_rate, 0.9) << "warm re-read should be >=90% cache hits";
}

TEST_F(ExtentFileTest, ReopenNeverTruncatesLiveFilesAcrossTables) {
  // File names carry a process-global sequence while generations are
  // per-table, so with 2+ tables the per-table generation max sits below
  // the highest file number on disk. Reopen must seed fresh names from
  // the file names themselves: the first post-reopen flush used to pick
  // a live file's name and truncate it out from under its mmapped,
  // just-rebuilt SSTable.
  const std::string data = dir_ + "/twotables";
  StorageOptions opts = out_of_core_options(data);
  opts.compaction_threshold = 100;  // keep generations low and stable

  auto write_to = [&](StorageEngine& eng, const std::string& table,
                      std::int64_t base, std::int64_t n) {
    for (std::int64_t i = 0; i < n; ++i) {
      WriteCommand cmd;
      cmd.table = table;
      cmd.partition_key = "p" + std::to_string(i % 3);
      cmd.row = make_row(base + i, 1000 + base + i);
      cmd.row.set("msg", Value(table + " payload " + std::to_string(i)));
      eng.apply(cmd);
    }
    eng.flush_all();
  };
  auto read_table = [&](StorageEngine& eng, const std::string& table) {
    std::vector<std::vector<Row>> out;
    for (int p = 0; p < 3; ++p) {
      ReadQuery q;
      q.table = table;
      q.partition_key = "p" + std::to_string(p);
      out.push_back(eng.read(q).rows);
    }
    return out;
  };

  std::vector<std::vector<Row>> alpha_before, beta_before;
  {
    // Interleaved flushes: alpha and beta each reach generation 2, but
    // the files on disk are ext-1..ext-4 — beta's last file outnumbers
    // every table's generation.
    StorageEngine writer(opts);
    write_to(writer, "alpha", 0, 300);
    write_to(writer, "beta", 0, 300);
    write_to(writer, "alpha", 300, 300);
    write_to(writer, "beta", 300, 300);
    alpha_before = read_table(writer, "alpha");
    beta_before = read_table(writer, "beta");
  }

  // A fresh engine (file sequence back at 1) must reseed from the file
  // names on disk, not from per-table generations.
  StorageEngine eng(opts);
  (void)eng.reopen_from_disk();
  write_to(eng, "alpha", 600, 300);  // must claim an unused file name

  EXPECT_EQ(read_table(eng, "beta"), beta_before)
      << "post-reopen flush truncated another table's live extent file";
  const auto alpha_after = read_table(eng, "alpha");
  std::size_t rows_before = 0, rows_after = 0;
  for (const auto& p : alpha_before) rows_before += p.size();
  for (const auto& p : alpha_after) rows_after += p.size();
  EXPECT_EQ(rows_after, rows_before + 300);
}

TEST_F(ExtentFileTest, CompactionReleasesIdleThreadSnapshots) {
  // An idle thread's cached snapshot must not pin compaction inputs: the
  // invalidation sweep clears the thread-local cache so superseded extent
  // files are unlinked while the thread is still parked.
  const std::string data = dir_ + "/idle";
  StorageOptions opts = out_of_core_options(data);
  opts.compaction_threshold = 4;
  StorageEngine eng(opts);

  auto write_batch = [&](std::int64_t base) {
    for (std::int64_t i = 0; i < 200; ++i) {
      WriteCommand cmd;
      cmd.table = "events";
      cmd.partition_key = "node-" + std::to_string(i % 3);
      cmd.row = make_row(base + i, 1000 + base + i);
      eng.apply(cmd);
    }
    eng.flush_all();
  };
  write_batch(0);
  write_batch(200);  // two sealed files; no compaction yet

  std::promise<void> read_done;
  std::promise<void> release;
  std::thread idle([&] {
    ReadQuery q;
    q.table = "events";
    q.partition_key = "node-0";
    (void)eng.read(q);  // populates this thread's snapshot cache
    read_done.set_value();
    release.get_future().wait();  // park, cache entry still in TLS
  });
  read_done.get_future().wait();

  write_batch(400);
  write_batch(600);  // 4th flush triggers compaction over all four runs
  const auto m = eng.metrics();
  ASSERT_GT(m.compactions, 0u);
  // Only the merged output remains on disk — the two files pinned by the
  // parked thread's snapshot were released by the invalidation sweep.
  EXPECT_EQ(extent_file_count(data), 1u);

  release.set_value();
  idle.join();
}

TEST_F(ExtentFileTest, EngineBlockCacheSizingIsGrowOnly) {
  BlockCache::instance().set_capacity(0);
  StorageOptions big = out_of_core_options(dir_ + "/grow1");
  big.block_cache_bytes = 8u << 20;
  StorageEngine first(big);
  EXPECT_EQ(BlockCache::instance().capacity(), 8u << 20);

  // A second engine with a smaller budget must not shrink (and thereby
  // mass-evict) the cache shared by every engine in the process.
  StorageOptions small = out_of_core_options(dir_ + "/grow2");
  small.block_cache_bytes = 1u << 20;
  StorageEngine second(small);
  EXPECT_EQ(BlockCache::instance().capacity(), 8u << 20);

  StorageOptions bigger = out_of_core_options(dir_ + "/grow3");
  bigger.block_cache_bytes = 16u << 20;
  StorageEngine third(bigger);
  EXPECT_EQ(BlockCache::instance().capacity(), 16u << 20);
}

}  // namespace
}  // namespace hpcla::cassalite
