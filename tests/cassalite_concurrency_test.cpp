// TSan-targeted concurrency tests for the snapshot read path: readers race
// a writer through flushes, compactions, and a crash recovery, asserting
// every read observes a consistent per-partition prefix and that metrics
// are never torn. Run under -fsanitize=thread in CI (see .github/workflows).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cassalite/cluster.hpp"
#include "cassalite/storage_engine.hpp"
#include "common/thread_pool.hpp"

namespace hpcla::cassalite {
namespace {

Row seq_row(std::int64_t seq, std::int64_t write_ts) {
  Row r;
  r.key = ClusteringKey::of({Value(seq)});
  r.set("v", seq);
  r.write_ts = write_ts;
  return r;
}

/// Rows must be exactly the contiguous prefix 0..rows.size()-1 of the
/// writer's per-partition append sequence.
void expect_prefix(const std::vector<Row>& rows, const std::string& where) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    ASSERT_EQ(rows[i].key.parts.size(), 1u) << where;
    ASSERT_EQ(rows[i].key.parts[0].as_int(), static_cast<std::int64_t>(i))
        << where << ": hole or reorder at row " << i << " of " << rows.size();
  }
}

TEST(CassaliteConcurrencyTest, ReadersSeeConsistentPrefixThroughFlushAndCrash) {
  StorageOptions opts;
  opts.memtable_flush_bytes = 16u << 10;  // flush often
  opts.compaction_threshold = 4;          // compact often
  StorageEngine engine(opts);

  constexpr std::size_t kPartitions = 4;
  constexpr std::int64_t kRowsPerPartition = 800;
  constexpr std::int64_t kTotal = kPartitions * kRowsPerPartition;
  const auto pkey = [](std::size_t p) { return "pk-" + std::to_string(p); };

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (std::int64_t n = 0; n < kTotal; ++n) {
      const auto p = static_cast<std::size_t>(n) % kPartitions;
      engine.apply(WriteCommand{"events", pkey(p),
                                seq_row(n / kPartitions, /*write_ts=*/n + 1)});
      if (n == kTotal / 2) {
        (void)engine.crash_and_recover();
      } else if (n % 500 == 499) {
        engine.flush_all();
      }
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      std::size_t p = t % kPartitions;
      while (!done.load(std::memory_order_acquire)) {
        ReadQuery q;
        q.table = "events";
        q.partition_key = pkey(p);
        expect_prefix(engine.read(q).rows, "read " + pkey(p));
        // Exercise the batch path too: one snapshot for all partitions.
        if (p == 0) {
          std::vector<std::string> keys;
          for (std::size_t i = 0; i < kPartitions; ++i) keys.push_back(pkey(i));
          engine.scan_partitions(
              "events", keys, {},
              [](const std::string& key, std::vector<Row> rows) {
                expect_prefix(rows, "scan " + key);
              });
        }
        p = (p + 1) % kPartitions;
        (void)engine.metrics();  // concurrent metrics reads must not tear
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();

  // Everything written (and recovered) is visible afterwards.
  for (std::size_t p = 0; p < kPartitions; ++p) {
    ReadQuery q;
    q.table = "events";
    q.partition_key = pkey(p);
    const auto rows = engine.read(q).rows;
    ASSERT_EQ(rows.size(), static_cast<std::size_t>(kRowsPerPartition));
    expect_prefix(rows, "final " + pkey(p));
  }

  const auto m = engine.metrics();
  EXPECT_EQ(m.writes, static_cast<std::uint64_t>(kTotal));
  EXPECT_GT(m.reads, 0u);
  EXPECT_GT(m.snapshot_reads, 0u);
  EXPECT_GT(m.memtable_flushes, 0u);
  EXPECT_GT(m.compactions, 0u);
}

TEST(CassaliteConcurrencyTest, ScanPartitionsMatchesPerKeyReads) {
  StorageEngine engine;
  for (int p = 0; p < 8; ++p) {
    for (int s = 0; s < 20; ++s) {
      engine.apply(WriteCommand{"t", "pk-" + std::to_string(p),
                                seq_row(s, p * 100 + s + 1)});
    }
  }
  engine.flush_all();
  // More writes so both memtable and SSTables contribute.
  for (int p = 0; p < 8; ++p) {
    engine.apply(
        WriteCommand{"t", "pk-" + std::to_string(p), seq_row(20, 10000 + p)});
  }

  std::vector<std::string> keys;
  for (int p = 0; p < 8; ++p) keys.push_back("pk-" + std::to_string(p));
  keys.push_back("pk-missing");

  std::size_t called = 0;
  engine.scan_partitions(
      "t", keys, {}, [&](const std::string& key, std::vector<Row> rows) {
        ReadQuery q;
        q.table = "t";
        q.partition_key = key;
        const auto expected = engine.read(q).rows;
        ASSERT_EQ(rows.size(), expected.size()) << key;
        for (std::size_t i = 0; i < rows.size(); ++i) {
          EXPECT_EQ(rows[i].key.compare(expected[i].key),
                    std::strong_ordering::equal);
          EXPECT_EQ(rows[i].write_ts, expected[i].write_ts);
        }
        ++called;
      });
  EXPECT_EQ(called, keys.size());  // missing keys reported with empty rows

  // Empty key list = every partition on the node.
  std::size_t scanned = 0;
  engine.scan_partitions("t", {}, {},
                         [&](const std::string&, std::vector<Row> rows) {
                           scanned += rows.size();
                         });
  EXPECT_EQ(scanned, 8u * 21u);
}

TEST(CassaliteConcurrencyTest, ParallelReadMatchesSelect) {
  ClusterOptions copts;
  copts.node_count = 4;
  copts.replication_factor = 3;
  Cluster cluster(copts);
  std::vector<std::string> keys;
  for (int p = 0; p < 32; ++p) {
    const std::string key = "pk-" + std::to_string(p);
    keys.push_back(key);
    for (int s = 0; s < 5; ++s) {
      ASSERT_TRUE(cluster.insert("t", key, seq_row(s, 0)).is_ok());
    }
  }

  ThreadPool pool(4);
  for (const auto consistency :
       {Consistency::kOne, Consistency::kQuorum, Consistency::kAll}) {
    const auto results = cluster.parallel_read(pool, "t", keys, {}, consistency);
    ASSERT_EQ(results.size(), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      ASSERT_TRUE(results[i].is_ok()) << keys[i];
      ReadQuery q;
      q.table = "t";
      q.partition_key = keys[i];
      const auto expected = cluster.select(q, consistency);
      ASSERT_TRUE(expected.is_ok());
      ASSERT_EQ(results[i].value().rows.size(), expected.value().rows.size());
    }
  }

  // A dead primary must not break ONE reads: another replica serves.
  cluster.kill_node(cluster.ring().primary(keys[0]));
  const auto results = cluster.parallel_read(pool, "t", keys, {});
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(results[i].is_ok()) << keys[i];
    EXPECT_EQ(results[i].value().rows.size(), 5u) << keys[i];
  }
}

TEST(CassaliteConcurrencyTest, ConcurrentClusterReadersAndWriter) {
  ClusterOptions copts;
  copts.node_count = 4;
  copts.replication_factor = 2;
  copts.storage.memtable_flush_bytes = 32u << 10;
  Cluster cluster(copts);
  std::vector<std::string> keys;
  for (int p = 0; p < 16; ++p) keys.push_back("pk-" + std::to_string(p));

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int n = 0; n < 2000; ++n) {
      const auto& key = keys[static_cast<std::size_t>(n) % keys.size()];
      ASSERT_TRUE(
          cluster
              .insert("t", key, seq_row(n / static_cast<int>(keys.size()), 0))
              .is_ok());
    }
    done.store(true, std::memory_order_release);
  });

  ThreadPool pool(4);
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const auto results = cluster.parallel_read(pool, "t", keys, {});
        for (const auto& r : results) {
          ASSERT_TRUE(r.is_ok());
        }
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();

  const auto results = cluster.parallel_read(pool, "t", keys, {});
  std::size_t total = 0;
  for (const auto& r : results) total += r.value().rows.size();
  EXPECT_EQ(total, 2000u);
}

}  // namespace
}  // namespace hpcla::cassalite
