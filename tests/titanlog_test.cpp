// Tests for the event taxonomy, record round trips, the synthetic Titan log
// generator, and the regex ETL parsers.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "titanlog/events.hpp"
#include "titanlog/generator.hpp"
#include "titanlog/parser.hpp"
#include "titanlog/record.hpp"

namespace hpcla::titanlog {
namespace {

constexpr UnixSeconds kT0 = 1489449600;  // 2017-03-14 00:00:00 UTC

// ---------------------------------------------------------------- taxonomy

TEST(EventCatalogTest, CoversAllTypesWithUniqueIds) {
  std::set<std::string_view> ids;
  for (const auto& info : event_catalog()) {
    EXPECT_FALSE(info.id.empty());
    EXPECT_TRUE(ids.insert(info.id).second) << info.id;
  }
  EXPECT_EQ(ids.size(), kEventTypeCount);
}

TEST(EventCatalogTest, IdRoundTrip) {
  for (EventType t : all_event_types()) {
    auto back = event_type_from_id(event_id(t));
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value(), t);
  }
  EXPECT_FALSE(event_type_from_id("NotAType").is_ok());
}

TEST(EventCatalogTest, RatesSkewedRealistically) {
  // Correctable memory errors dominate; kernel panics are rare.
  EXPECT_GT(event_info(EventType::kMemoryEcc).base_rate_per_node_hour,
            event_info(EventType::kKernelPanic).base_rate_per_node_hour * 20);
  EXPECT_EQ(event_info(EventType::kKernelPanic).severity, Severity::kFatal);
}

// ----------------------------------------------------------------- records

TEST(EventRecordTest, JsonRoundTrip) {
  EventRecord e;
  e.ts = kT0 + 42;
  e.type = EventType::kLustreError;
  e.node = 12345;
  e.message = "LustreError: test";
  e.count = 3;
  e.seq = 99;
  auto back = EventRecord::from_json(e.to_json());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), e);
}

TEST(EventRecordTest, FromJsonRejectsBadInput) {
  Json j = Json::object();
  EXPECT_FALSE(EventRecord::from_json(j).is_ok());  // missing everything
  j["ts"] = kT0;
  j["type"] = "Bogus";
  j["node"] = 1;
  j["message"] = "m";
  EXPECT_FALSE(EventRecord::from_json(j).is_ok());  // unknown type
  j["type"] = "MCE";
  j["node"] = 999999;
  EXPECT_FALSE(EventRecord::from_json(j).is_ok());  // node out of range
}

TEST(JobRecordTest, JsonRoundTrip) {
  JobRecord job;
  job.apid = 5000001;
  job.app_name = "LAMMPS";
  job.user = "usr7";
  job.start = kT0;
  job.end = kT0 + 3600;
  job.nodes = {100, 101, 102, 103};
  job.exit_code = 137;
  auto back = JobRecord::from_json(job.to_json());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), job);
  EXPECT_TRUE(job.failed());
  EXPECT_EQ(job.duration(), 3600);
}

TEST(NidRangeTest, FormatCompresses) {
  EXPECT_EQ(format_nid_ranges({}), "");
  EXPECT_EQ(format_nid_ranges({5}), "5");
  EXPECT_EQ(format_nid_ranges({1, 2, 3}), "1-3");
  EXPECT_EQ(format_nid_ranges({1, 2, 3, 7, 9, 10}), "1-3,7,9-10");
}

TEST(NidRangeTest, ParseRoundTrip) {
  const std::vector<topo::NodeId> nodes{0, 1, 2, 50, 99, 100, 101};
  auto back = parse_nid_ranges(format_nid_ranges(nodes));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), nodes);
}

TEST(NidRangeTest, ParseRejectsBadInput) {
  EXPECT_FALSE(parse_nid_ranges("abc").is_ok());
  EXPECT_FALSE(parse_nid_ranges("5-2").is_ok());        // inverted
  EXPECT_FALSE(parse_nid_ranges("-5").is_ok());
  EXPECT_FALSE(parse_nid_ranges("19200").is_ok());      // out of range
  EXPECT_FALSE(parse_nid_ranges("1,,2").is_ok());
  EXPECT_TRUE(parse_nid_ranges("").is_ok());            // empty = no nodes
  EXPECT_TRUE(parse_nid_ranges("19199").is_ok());       // last valid nid
}

// --------------------------------------------------------------- generator

ScenarioConfig quiet_day() {
  ScenarioConfig cfg;
  cfg.seed = 7;
  cfg.window = TimeRange{kT0, kT0 + 24 * 3600};
  cfg.background_scale = 1.0;
  return cfg;
}

TEST(GeneratorTest, DeterministicForSeed) {
  auto a = Generator(quiet_day()).generate();
  auto b = Generator(quiet_day()).generate();
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.events, b.events);
  auto cfg = quiet_day();
  cfg.seed = 8;
  auto c = Generator(cfg).generate();
  EXPECT_NE(a.events.size(), c.events.size());
}

TEST(GeneratorTest, BackgroundVolumeMatchesRates) {
  auto logs = Generator(quiet_day()).generate();
  // Expected: sum(base rates) * 19200 nodes * 24 h ≈ 0.0417*19200*24 ≈ 19200.
  EXPECT_GT(logs.events.size(), 10000u);
  EXPECT_LT(logs.events.size(), 40000u);
  std::map<EventType, int> by_type;
  for (const auto& e : logs.events) by_type[e.type]++;
  EXPECT_GT(by_type[EventType::kMemoryEcc], by_type[EventType::kKernelPanic]);
  EXPECT_GT(by_type[EventType::kMemoryEcc], by_type[EventType::kGpuMemoryError]);
}

TEST(GeneratorTest, EventsSortedWithUniqueSeq) {
  auto logs = Generator(quiet_day()).generate();
  for (std::size_t i = 1; i < logs.events.size(); ++i) {
    EXPECT_LE(logs.events[i - 1].ts, logs.events[i].ts);
    EXPECT_EQ(logs.events[i].seq, static_cast<std::int64_t>(i));
  }
}

TEST(GeneratorTest, EventsStayInWindowAndOnMachine) {
  auto logs = Generator(quiet_day()).generate();
  for (const auto& e : logs.events) {
    EXPECT_TRUE(quiet_day().window.contains(e.ts));
    EXPECT_GE(e.node, 0);
    EXPECT_LT(e.node, topo::TitanGeometry::kTotalNodes);
    EXPECT_FALSE(e.message.empty());
  }
}

TEST(GeneratorTest, HotspotConcentratesEvents) {
  auto cfg = quiet_day();
  cfg.background_scale = 0.0;
  HotspotSpec hs;
  hs.type = EventType::kMachineCheck;
  hs.location = topo::Coord{4, 2, -1, -1, -1};  // one cabinet
  hs.window = TimeRange{kT0 + 3600, kT0 + 7200};
  hs.rate_per_node_hour = 5.0;
  cfg.hotspots.push_back(hs);
  auto logs = Generator(cfg).generate();
  EXPECT_GT(logs.events.size(), 200u);  // ~480 expected
  const int expected_cabinet = (topo::Coord{4, 2, -1, -1, -1}).cabinet_index();
  for (const auto& e : logs.events) {
    EXPECT_EQ(e.type, EventType::kMachineCheck);
    EXPECT_EQ(topo::cabinet_of(e.node), expected_cabinet);
    EXPECT_GE(e.ts, kT0 + 3600);
    EXPECT_LT(e.ts, kT0 + 7200);
  }
  // Zipf node skew: the busiest node gets far more than the mean.
  std::map<topo::NodeId, int> per_node;
  for (const auto& e : logs.events) per_node[e.node]++;
  int peak = 0;
  for (const auto& [_, c] : per_node) peak = std::max(peak, c);
  const double mean = static_cast<double>(logs.events.size()) / 96.0;
  EXPECT_GT(peak, 3 * mean);
}

TEST(GeneratorTest, StormNamesSingleOst) {
  auto cfg = quiet_day();
  cfg.background_scale = 0.0;
  LustreStormSpec storm;
  storm.start = kT0 + 1000;
  storm.duration_seconds = 120;
  storm.ost_index = 0x42;
  storm.messages_per_second = 100;
  cfg.storms.push_back(storm);
  auto logs = Generator(cfg).generate();
  EXPECT_GT(logs.events.size(), 10000u);
  int named = 0;
  for (const auto& e : logs.events) {
    EXPECT_EQ(e.type, EventType::kLustreError);
    named += e.message.find("OST0042") != std::string::npos ? 1 : 0;
  }
  EXPECT_EQ(named, static_cast<int>(logs.events.size()));
}

TEST(GeneratorTest, CausalPairProducesLaggedEffects) {
  auto cfg = quiet_day();
  cfg.background_scale = 0.0;
  HotspotSpec hs;
  hs.type = EventType::kNetworkError;
  hs.location = topo::Coord{0, 0, -1, -1, -1};
  hs.window = cfg.window;
  hs.rate_per_node_hour = 0.5;
  hs.node_skew = 0.0;
  cfg.hotspots.push_back(hs);
  CausalPairSpec pair;
  pair.cause = EventType::kNetworkError;
  pair.effect = EventType::kLustreError;
  pair.lag_seconds = 30;
  pair.probability = 1.0;
  pair.lag_jitter_seconds = 0;
  cfg.causal_pairs.push_back(pair);
  auto logs = Generator(cfg).generate();

  std::vector<EventRecord> causes;
  std::vector<EventRecord> effects;
  for (const auto& e : logs.events) {
    (e.type == EventType::kNetworkError ? causes : effects).push_back(e);
  }
  EXPECT_GT(causes.size(), 100u);
  // Nearly every cause has its effect (edge-of-window losses only).
  EXPECT_GE(effects.size(), causes.size() * 95 / 100);
  // Effects are at cause.ts + 30 on the same node.
  std::set<std::pair<UnixSeconds, topo::NodeId>> cause_set;
  for (const auto& c : causes) cause_set.insert({c.ts, c.node});
  for (const auto& e : effects) {
    EXPECT_TRUE(cause_set.contains({e.ts - 30, e.node}));
  }
}

TEST(GeneratorTest, JobWorkloadShape) {
  auto cfg = quiet_day();
  cfg.jobs = JobMixSpec{};
  auto logs = Generator(cfg).generate();
  EXPECT_GT(logs.jobs.size(), 2000u);  // 120/h * 24h ≈ 2880
  EXPECT_LT(logs.jobs.size(), 4000u);
  std::set<std::int64_t> apids;
  int failed = 0;
  for (const auto& job : logs.jobs) {
    EXPECT_TRUE(apids.insert(job.apid).second);
    EXPECT_GE(job.start, cfg.window.begin);
    EXPECT_LE(job.end, cfg.window.end);
    EXPECT_GE(job.end, job.start);
    EXPECT_FALSE(job.nodes.empty());
    // Power-of-two contiguous allocations.
    EXPECT_EQ(job.nodes.size() & (job.nodes.size() - 1), 0u);
    for (std::size_t i = 1; i < job.nodes.size(); ++i) {
      EXPECT_EQ(job.nodes[i], job.nodes[i - 1] + 1);
    }
    failed += job.failed() ? 1 : 0;
  }
  EXPECT_GT(failed, 0);
  // AppAbort events exist and reference failing jobs.
  int aborts = 0;
  for (const auto& e : logs.events) {
    aborts += e.type == EventType::kAppAbort ? 1 : 0;
  }
  EXPECT_GT(aborts, 0);
}

TEST(GeneratorTest, RenderAllSortedByTime) {
  auto cfg = quiet_day();
  cfg.jobs = JobMixSpec{};
  auto logs = Generator(cfg).generate();
  auto lines = render_all(logs);
  EXPECT_EQ(lines.size(), logs.events.size() + logs.jobs.size());
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_LE(lines[i - 1].ts, lines[i].ts);
  }
}

// ------------------------------------------------------------------ parser

TEST(ParserTest, ParsesEveryGeneratedEventType) {
  LogParser parser;
  Rng rng(3);
  // Round-trip one synthetic event of each type through render + parse.
  auto cfg = quiet_day();
  auto logs = Generator(cfg).generate();
  std::map<EventType, bool> seen;
  for (const auto& e : logs.events) {
    if (seen[e.type]) continue;
    seen[e.type] = true;
    auto parsed = parser.parse_line(render_event(e).text);
    ASSERT_TRUE(parsed.is_ok())
        << event_id(e.type) << ": " << render_event(e).text << " -> "
        << parsed.status().to_string();
    ASSERT_TRUE(parsed->is_event());
    EXPECT_EQ(parsed->event().type, e.type);
    EXPECT_EQ(parsed->event().node, e.node);
    EXPECT_EQ(parsed->event().ts, e.ts);
    EXPECT_EQ(parsed->event().message, e.message);
  }
  EXPECT_GE(seen.size(), 8u);  // every background type appears in a day
}

TEST(ParserTest, ParsesJobLine) {
  LogParser parser;
  JobRecord job;
  job.apid = 5001234;
  job.app_name = "VASP";
  job.user = "usr12";
  job.start = kT0;
  job.end = kT0 + 7200;
  job.nodes = {256, 257, 258, 259};
  job.exit_code = 0;
  auto parsed = parser.parse_line(render_job(job).text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  ASSERT_FALSE(parsed->is_event());
  EXPECT_EQ(parsed->job(), job);
}

TEST(ParserTest, RejectsMalformedLines) {
  LogParser parser;
  EXPECT_FALSE(parser.parse_line("").is_ok());
  EXPECT_FALSE(parser.parse_line("garbage").is_ok());
  EXPECT_FALSE(parser.parse_line("2017-03-14 05:21:06").is_ok());
  // Bad timestamp.
  EXPECT_FALSE(
      parser.parse_line("2017-13-14 05:21:06 c0-0c0s0n0 MCE: x").is_ok());
  // Bad cname.
  EXPECT_FALSE(
      parser.parse_line("2017-03-14 05:21:06 c9-0c0s0n0 MCE: Machine Check "
                        "Exception bank 1 status 0x0 misc 0x0").is_ok());
  // Cabinet-level location for an event line.
  EXPECT_FALSE(
      parser.parse_line("2017-03-14 05:21:06 c0-0 MCE: Machine Check "
                        "Exception bank 1 status 0x0 misc 0x0").is_ok());
}

TEST(ParserTest, UnmatchedPayloadIsNotFound) {
  LogParser parser;
  auto r = parser.parse_line(
      "2017-03-14 05:21:06 c0-0c0s0n0 some unrecognized chatter");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ParserTest, IncompleteJobLineRejected) {
  LogParser parser;
  EXPECT_FALSE(parser.parse_line("2017-03-14 05:21:06 apsched: apid=5 user=u")
                   .is_ok());
  // end < start.
  EXPECT_FALSE(
      parser.parse_line("2017-03-14 05:21:06 apsched: apid=5 user=u app=a "
                        "nids=0 start=100 end=50 exit=0")
          .is_ok());
}

TEST(ParserTest, Xid48ClassifiedAsGpuMemoryNotGpuFailure) {
  LogParser parser;
  auto dbe = parser.parse_line(
      "2017-03-14 05:21:06 c0-0c0s0n0 GPU Xid 48: double-bit ECC error "
      "detected at address 0x1a2b3c4d");
  ASSERT_TRUE(dbe.is_ok());
  EXPECT_EQ(dbe->event().type, EventType::kGpuMemoryError);
  auto bus = parser.parse_line(
      "2017-03-14 05:21:06 c0-0c0s0n0 GPU Xid 79: GPU has fallen off the bus");
  ASSERT_TRUE(bus.is_ok());
  EXPECT_EQ(bus->event().type, EventType::kGpuFailure);
}

TEST(ParserTest, BatchStatsAccounting) {
  LogParser parser;
  std::vector<LogLine> lines;
  auto cfg = quiet_day();
  cfg.jobs = JobMixSpec{};
  auto logs = Generator(cfg).generate();
  lines = render_all(logs);
  // Inject noise.
  lines.push_back(LogLine{kT0, LogSource::kConsole, "corrupt line"});
  lines.push_back(LogLine{kT0, LogSource::kConsole,
                          "2017-03-14 05:21:06 c0-0c0s0n0 innocuous chatter"});

  std::vector<EventRecord> events;
  std::vector<JobRecord> jobs;
  ParseStats stats;
  parser.parse_batch(lines, events, jobs, stats);
  EXPECT_EQ(stats.lines, lines.size());
  EXPECT_EQ(stats.events, logs.events.size());
  EXPECT_EQ(stats.jobs, logs.jobs.size());
  EXPECT_EQ(stats.malformed, 1u);
  EXPECT_EQ(stats.unmatched, 1u);
  EXPECT_EQ(events.size(), logs.events.size());
  EXPECT_EQ(jobs.size(), logs.jobs.size());
}

TEST(ParserTest, JobLineQuirks) {
  LogParser parser;
  // Unknown key=value tokens are ignored, duplicated keys keep the last.
  auto parsed = parser.parse_line(
      "2017-03-14 05:21:06 apsched: apid=5 user=u app=a nids=0 start=10 "
      "end=20 exit=0 color=blue exit=137");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->job().exit_code, 137);
  // Tokens without '=' are skipped.
  auto sloppy = parser.parse_line(
      "2017-03-14 05:21:06 apsched: noise apid=5 user=u app=a nids=0 "
      "start=10 end=20 exit=0");
  ASSERT_TRUE(sloppy.is_ok());
  // Empty user/app rejected.
  EXPECT_FALSE(parser.parse_line(
                   "2017-03-14 05:21:06 apsched: apid=5 user= app=a nids=0 "
                   "start=10 end=20 exit=0").is_ok());
  // Bad nid range inside an otherwise valid line.
  EXPECT_FALSE(parser.parse_line(
                   "2017-03-14 05:21:06 apsched: apid=5 user=u app=a "
                   "nids=9-2 start=10 end=20 exit=0").is_ok());
}

TEST(ParserTest, PrefilterWithoutRegexMatchFallsThrough) {
  LogParser parser;
  // Contains the "MCE" prefilter substring but not the full pattern, and
  // also the LustreError pattern later — the matching pattern must win.
  auto r = parser.parse_line(
      "2017-03-14 05:21:06 c0-0c0s0n0 MCE-adjacent chatter then "
      "LustreError: atlas-OST0001: slow reply to ping, 9s late");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r->event().type, EventType::kLustreError);
}

// Property: render -> parse is the identity on (ts, type, node, message)
// for a large random sample.
TEST(ParserTest, RenderParseRoundTripBulk) {
  LogParser parser;
  auto logs = Generator(quiet_day()).generate();
  std::size_t checked = 0;
  for (std::size_t i = 0; i < logs.events.size(); i += 37) {
    const auto& e = logs.events[i];
    auto parsed = parser.parse_line(render_event(e).text);
    ASSERT_TRUE(parsed.is_ok()) << render_event(e).text;
    EXPECT_EQ(parsed->event().ts, e.ts);
    EXPECT_EQ(parsed->event().type, e.type);
    EXPECT_EQ(parsed->event().node, e.node);
    ++checked;
  }
  EXPECT_GT(checked, 100u);
}

}  // namespace
}  // namespace hpcla::titanlog
