// Tests for the data model: keys, DDL, codecs, batch ETL, and streaming
// ingestion with same-second coalescing.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "model/ingest.hpp"
#include "model/keys.hpp"
#include "model/streaming_ingest.hpp"
#include "model/tables.hpp"
#include "titanlog/generator.hpp"

namespace hpcla::model {
namespace {

using cassalite::Cluster;
using cassalite::ClusterOptions;
using cassalite::ReadQuery;
using titanlog::EventRecord;
using titanlog::EventType;
using titanlog::JobRecord;

constexpr UnixSeconds kT0 = 1489449600;  // 2017-03-14 00:00:00 UTC
const std::int64_t kHour0 = hour_bucket(kT0);

ClusterOptions small_cluster() {
  ClusterOptions o;
  o.node_count = 4;
  o.replication_factor = 2;
  return o;
}

EventRecord event(UnixSeconds ts, EventType type, topo::NodeId node,
                  std::int64_t seq, std::string msg = "m") {
  EventRecord e;
  e.ts = ts;
  e.type = type;
  e.node = node;
  e.seq = seq;
  e.message = std::move(msg);
  return e;
}

JobRecord job(std::int64_t apid, UnixSeconds start, UnixSeconds end,
              std::vector<topo::NodeId> nodes, int exit_code = 0) {
  JobRecord j;
  j.apid = apid;
  j.app_name = "LAMMPS";
  j.user = "usr1";
  j.start = start;
  j.end = end;
  j.nodes = std::move(nodes);
  j.exit_code = exit_code;
  return j;
}

// -------------------------------------------------------------------- keys

TEST(KeysTest, EventTimeKeyRoundTrip) {
  const std::string key = event_time_key(413185, EventType::kLustreError);
  EXPECT_EQ(key, "413185|LustreError");
  auto parsed = parse_event_time_key(key);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->hour, 413185);
  EXPECT_EQ(parsed->type, EventType::kLustreError);
  EXPECT_FALSE(parse_event_time_key("413185").is_ok());
  EXPECT_FALSE(parse_event_time_key("x|MCE").is_ok());
  EXPECT_FALSE(parse_event_time_key("413185|Nope").is_ok());
}

TEST(KeysTest, EventLocationKeyRoundTrip) {
  const std::string key = event_location_key(413185, 1234);
  EXPECT_EQ(key, "413185|1234");
  auto parsed = parse_event_location_key(key);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->hour, 413185);
  EXPECT_EQ(parsed->node, 1234);
  EXPECT_FALSE(parse_event_location_key("413185|99999").is_ok());
  EXPECT_FALSE(parse_event_location_key("413185").is_ok());
}

// --------------------------------------------------------------------- DDL

TEST(TablesTest, CreateDataModelRegistersAllTables) {
  Cluster cluster(small_cluster());
  ASSERT_TRUE(create_data_model(cluster).is_ok());
  const std::set<std::string> expected{
      "nodeinfos",        "eventtypes",          "eventsynopsis",
      "event_by_time",    "event_by_location",   "application_by_time",
      "application_by_user", "application_by_app",
      "application_by_location"};
  std::set<std::string> actual;
  for (const auto& s : cluster.schemas()) actual.insert(s.name);
  EXPECT_EQ(actual, expected);
  // Re-creating fails cleanly.
  EXPECT_FALSE(create_data_model(cluster).is_ok());
}

TEST(TablesTest, LoadEventTypes) {
  Cluster cluster(small_cluster());
  ASSERT_TRUE(create_data_model(cluster).is_ok());
  ASSERT_TRUE(load_eventtypes(cluster).is_ok());
  ReadQuery q;
  q.table = std::string(kEventTypes);
  q.partition_key = eventtype_key(EventType::kMachineCheck);
  auto r = cluster.select(q);
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0].find("severity")->as_text(), "error");
}

TEST(TablesTest, LoadNodeInfosFullMachine) {
  Cluster cluster(small_cluster());
  ASSERT_TRUE(create_data_model(cluster).is_ok());
  ASSERT_TRUE(load_nodeinfos(cluster).is_ok());
  EXPECT_EQ(cluster.all_partition_keys(std::string(kNodeInfos)).size(),
            19200u);
  ReadQuery q;
  q.table = std::string(kNodeInfos);
  q.partition_key = nodeinfo_key(5000);
  auto r = cluster.select(q);
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0].find("cname")->as_text(), topo::cname_of(5000));
  EXPECT_EQ(r->rows[0].find("gpu_memory_gb")->as_int(), 6);
}

// ------------------------------------------------------------------ codecs

TEST(CodecTest, EventRowRoundTripBothTables) {
  EventRecord e = event(kT0 + 42, EventType::kGpuMemoryError, 777, 5, "dbe");
  e.count = 3;
  auto from_time = decode_event_time_row(
      event_time_key(kHour0, e.type), event_time_row(e));
  ASSERT_TRUE(from_time.is_ok());
  EXPECT_EQ(from_time.value(), e);
  auto from_loc = decode_event_location_row(
      event_location_key(kHour0, e.node), event_location_row(e));
  ASSERT_TRUE(from_loc.is_ok());
  EXPECT_EQ(from_loc.value(), e);
}

TEST(CodecTest, AppRowRoundTrip) {
  JobRecord j = job(5000123, kT0, kT0 + 5000, {10, 11, 12, 13}, 137);
  auto back = decode_app_row(app_row(j));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), j);
}

TEST(CodecTest, DecodeRejectsCorruptRows) {
  cassalite::Row bad;  // empty clustering key
  EXPECT_FALSE(decode_app_row(bad).is_ok());
  EXPECT_FALSE(
      decode_event_time_row(event_time_key(0, EventType::kMachineCheck), bad)
          .is_ok());
}

// --------------------------------------------------------------- batch ETL

struct Fixture {
  Cluster cluster{small_cluster()};
  sparklite::Engine engine{sparklite::EngineOptions{.workers = 4}};

  Fixture() { HPCLA_CHECK(create_data_model(cluster).is_ok()); }
};

TEST(BatchIngestTest, RecordsLandInBothEventTables) {
  Fixture f;
  BatchIngestor ingestor(f.cluster, f.engine);
  std::vector<EventRecord> events{
      event(kT0 + 10, EventType::kMachineCheck, 100, 0),
      event(kT0 + 20, EventType::kMachineCheck, 101, 1),
      event(kT0 + 30, EventType::kLustreError, 100, 2),
      event(kT0 + 3700, EventType::kMachineCheck, 100, 3),  // next hour
  };
  auto report = ingestor.ingest_records(events, {});
  EXPECT_EQ(report.event_rows, 4u);
  EXPECT_EQ(report.write_failures, 0u);
  EXPECT_EQ(report.synopsis_rows, 3u);  // (h0,MCE), (h0,Lustre), (h1,MCE)

  // event_by_time: hour0 MCE partition has both MCEs, time ordered.
  ReadQuery q;
  q.table = std::string(kEventByTime);
  q.partition_key = event_time_key(kHour0, EventType::kMachineCheck);
  auto r = f.cluster.select(q);
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0].key.parts[0].as_int(), kT0 + 10);
  EXPECT_EQ(r->rows[1].key.parts[0].as_int(), kT0 + 20);

  // event_by_location: node 100 hour0 has MCE + LustreError.
  q.table = std::string(kEventByLocation);
  q.partition_key = event_location_key(kHour0, 100);
  r = f.cluster.select(q);
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0].find(kColType)->as_text(), "MCE");
  EXPECT_EQ(r->rows[1].find(kColType)->as_text(), "LustreError");
}

TEST(BatchIngestTest, SynopsisAggregatesAcrossBatches) {
  Fixture f;
  BatchIngestor ingestor(f.cluster, f.engine);
  (void)ingestor.ingest_records(
      {event(kT0 + 5, EventType::kMachineCheck, 1, 0)}, {});
  (void)ingestor.ingest_records(
      {event(kT0 + 500, EventType::kMachineCheck, 2, 1)}, {});

  ReadQuery q;
  q.table = std::string(kEventSynopsis);
  q.partition_key = synopsis_key(kHour0);
  auto r = f.cluster.select(q);
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0].find(kColCount)->as_int(), 2);
  EXPECT_EQ(r->rows[0].find(kColFirstTs)->as_int(), kT0 + 5);
  EXPECT_EQ(r->rows[0].find(kColLastTs)->as_int(), kT0 + 500);
}

TEST(BatchIngestTest, JobsLandInAllFourAppTables) {
  Fixture f;
  BatchIngestor ingestor(f.cluster, f.engine);
  // Two-hour job on 3 nodes -> 6 location rows.
  JobRecord j = job(5000001, kT0 + 100, kT0 + 3700, {50, 51, 52});
  auto report = ingestor.ingest_records({}, {j});
  EXPECT_EQ(report.app_rows, 1u);
  EXPECT_EQ(report.app_location_rows, 6u);

  const auto check = [&](std::string_view table, const std::string& key) {
    ReadQuery q;
    q.table = std::string(table);
    q.partition_key = key;
    auto r = f.cluster.select(q);
    ASSERT_TRUE(r.is_ok()) << table;
    ASSERT_EQ(r->rows.size(), 1u) << table;
    auto decoded = decode_app_row(r->rows[0]);
    ASSERT_TRUE(decoded.is_ok()) << table;
    EXPECT_EQ(decoded->apid, 5000001) << table;
  };
  check(kAppByTime, app_time_key(kHour0));
  check(kAppByUser, app_user_key("usr1"));
  check(kAppByApp, app_app_key("LAMMPS"));

  // Location rows in both overlapped hours.
  for (std::int64_t h : {kHour0, kHour0 + 1}) {
    ReadQuery q;
    q.table = std::string(kAppByLocation);
    q.partition_key = app_location_key(h, 51);
    auto r = f.cluster.select(q);
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r->rows.size(), 1u) << "hour " << h;
  }
}

TEST(BatchIngestTest, FullPipelineFromRawLines) {
  Fixture f;
  titanlog::ScenarioConfig cfg;
  cfg.seed = 11;
  cfg.window = TimeRange{kT0, kT0 + 2 * 3600};
  cfg.background_scale = 0.5;
  cfg.jobs = titanlog::JobMixSpec{.users = 5, .apps = 4, .jobs_per_hour = 20,
                                  .max_size_log2 = 4};
  auto logs = titanlog::Generator(cfg).generate();
  auto lines = titanlog::render_all(logs);

  BatchIngestor ingestor(f.cluster, f.engine);
  auto report = ingestor.ingest_lines(lines);
  EXPECT_EQ(report.parse.lines, lines.size());
  EXPECT_EQ(report.parse.malformed, 0u);
  EXPECT_EQ(report.parse.unmatched, 0u);
  EXPECT_EQ(report.parse.events, logs.events.size());
  EXPECT_EQ(report.parse.jobs, logs.jobs.size());
  EXPECT_EQ(report.event_rows, logs.events.size());
  EXPECT_EQ(report.app_rows, logs.jobs.size());
  EXPECT_EQ(report.write_failures, 0u);

  // Spot check: every generated MCE in hour 0 is retrievable.
  std::size_t expected = 0;
  for (const auto& e : logs.events) {
    if (e.type == EventType::kMachineCheck && hour_bucket(e.ts) == kHour0) {
      ++expected;
    }
  }
  ReadQuery q;
  q.table = std::string(kEventByTime);
  q.partition_key = event_time_key(kHour0, EventType::kMachineCheck);
  auto r = f.cluster.select(q);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->rows.size(), expected);
}

TEST(BatchIngestTest, SameSecondRawLinesAllStored) {
  // Regression: parsed lines carry no seq; the ingestor must assign unique
  // clustering keys or same-second events overwrite one another.
  Fixture f;
  BatchIngestor ingestor(f.cluster, f.engine);
  std::vector<titanlog::LogLine> lines;
  for (int i = 0; i < 5; ++i) {
    titanlog::EventRecord e =
        event(kT0 + 7, EventType::kLustreError, 100 + i, 0,
              "LustreError: atlas-OST0001: slow reply to ping, 10s late");
    lines.push_back(titanlog::render_event(e));
  }
  auto report = ingestor.ingest_lines(lines);
  EXPECT_EQ(report.parse.events, 5u);
  ReadQuery q;
  q.table = std::string(kEventByTime);
  q.partition_key = event_time_key(kHour0, EventType::kLustreError);
  auto r = f.cluster.select(q);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->rows.size(), 5u);
}

TEST(BatchIngestTest, WriteFailuresCountedWhenClusterDegraded) {
  ClusterOptions opts;
  opts.node_count = 3;
  opts.replication_factor = 3;
  Cluster cluster(opts);
  ASSERT_TRUE(create_data_model(cluster).is_ok());
  sparklite::Engine engine(sparklite::EngineOptions{.workers = 2});
  cluster.kill_node(0);
  cluster.kill_node(1);  // quorum of 3 impossible
  IngestOptions io;
  io.consistency = cassalite::Consistency::kQuorum;
  BatchIngestor ingestor(cluster, engine, io);
  auto report = ingestor.ingest_records(
      {event(kT0, EventType::kMachineCheck, 1, 0)}, {});
  EXPECT_GT(report.write_failures, 0u);
  EXPECT_EQ(report.event_rows, 0u);
}

// --------------------------------------------------------------- streaming

TEST(StreamingIngestTest, EndToEndWithCoalescing) {
  Fixture f;
  buslite::Broker broker;
  ASSERT_TRUE(broker.create_topic("events", {.partitions = 4}).is_ok());
  EventPublisher pub(broker, "events");

  // 5 duplicate messages: same type/node/second -> must coalesce into one
  // row with count 5; plus one distinct event in the same window.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(pub.publish(event(kT0 + 1, EventType::kLustreError, 42, i))
                    .is_ok());
  }
  ASSERT_TRUE(pub.publish(event(kT0 + 1, EventType::kLustreError, 43, 5))
                  .is_ok());

  StreamingIngestor ingestor(f.cluster, f.engine, broker, "events");
  auto report = ingestor.process_available();
  EXPECT_EQ(report.batches, 1u);
  EXPECT_EQ(report.messages_in, 6u);
  EXPECT_EQ(report.events_written, 2u);
  EXPECT_NEAR(report.coalesce_ratio(), 3.0, 1e-9);

  ReadQuery q;
  q.table = std::string(kEventByLocation);
  q.partition_key = event_location_key(kHour0, 42);
  auto r = f.cluster.select(q);
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0].find(kColCount)->as_int(), 5);
}

TEST(StreamingIngestTest, DistinctSecondsAreSeparateBatches) {
  Fixture f;
  buslite::Broker broker;
  ASSERT_TRUE(broker.create_topic("events", {.partitions = 2}).is_ok());
  EventPublisher pub(broker, "events");
  for (int s = 0; s < 3; ++s) {
    ASSERT_TRUE(pub.publish(event(kT0 + s, EventType::kMachineCheck, 7, s))
                    .is_ok());
  }
  StreamingIngestor ingestor(f.cluster, f.engine, broker, "events");
  auto report = ingestor.process_available();
  EXPECT_EQ(report.batches, 3u);  // one 1 s window per second
  EXPECT_EQ(report.events_written, 3u);
}

TEST(StreamingIngestTest, MalformedMessagesCountedNotFatal) {
  Fixture f;
  buslite::Broker broker;
  ASSERT_TRUE(broker.create_topic("events", {.partitions = 1}).is_ok());
  ASSERT_TRUE(broker.produce("events", "k", "not json", 1000).is_ok());
  ASSERT_TRUE(broker.produce("events", "k", R"({"ts": 1})", 1000).is_ok());
  EventPublisher pub(broker, "events");
  ASSERT_TRUE(pub.publish(event(kT0, EventType::kDvsError, 9, 0)).is_ok());

  StreamingIngestor ingestor(f.cluster, f.engine, broker, "events");
  auto report = ingestor.process_available();
  EXPECT_EQ(report.decode_failures, 2u);
  EXPECT_EQ(report.events_written, 1u);
}

TEST(StreamingIngestTest, RepeatedCallsResumeFromOffsets) {
  Fixture f;
  buslite::Broker broker;
  ASSERT_TRUE(broker.create_topic("events", {.partitions = 2}).is_ok());
  EventPublisher pub(broker, "events");
  ASSERT_TRUE(pub.publish(event(kT0, EventType::kMachineCheck, 1, 0)).is_ok());
  StreamingIngestor ingestor(f.cluster, f.engine, broker, "events");
  EXPECT_EQ(ingestor.process_available().events_written, 1u);
  EXPECT_EQ(ingestor.process_available().events_written, 0u);
  ASSERT_TRUE(pub.publish(event(kT0 + 9, EventType::kMachineCheck, 1, 1)).is_ok());
  EXPECT_EQ(ingestor.process_available().events_written, 1u);
  EXPECT_EQ(ingestor.totals().events_written, 2u);
  EXPECT_EQ(ingestor.totals().messages_in, 2u);
}

TEST(StreamingIngestTest, ParallelGroupMembersIngestDisjointly) {
  // Three group members drain one topic: every message ingested exactly
  // once, coalescing still exact (bus partitions by cname).
  Fixture f;
  buslite::Broker broker;
  ASSERT_TRUE(broker.create_topic("events", {.partitions = 6}).is_ok());
  EventPublisher pub(broker, "events");
  std::size_t expected_groups = 0;
  {
    std::set<std::tuple<int, topo::NodeId, UnixSeconds>> groups;
    for (int i = 0; i < 300; ++i) {
      auto e = event(kT0 + i % 20, EventType::kLustreError,
                     static_cast<topo::NodeId>(i % 7), i);
      ASSERT_TRUE(pub.publish(e).is_ok());
      groups.insert({0, e.node, e.ts});
    }
    expected_groups = groups.size();
  }
  StreamingIngestor m0(f.cluster, f.engine, broker, "events", 0, 3);
  StreamingIngestor m1(f.cluster, f.engine, broker, "events", 1, 3);
  StreamingIngestor m2(f.cluster, f.engine, broker, "events", 2, 3);
  auto r0 = m0.process_available();
  auto r1 = m1.process_available();
  auto r2 = m2.process_available();
  EXPECT_EQ(r0.messages_in + r1.messages_in + r2.messages_in, 300u);
  EXPECT_GT(r0.messages_in, 0u);
  EXPECT_GT(r1.messages_in, 0u);
  EXPECT_GT(r2.messages_in, 0u);
  EXPECT_EQ(r0.events_written + r1.events_written + r2.events_written,
            expected_groups);

  // Total stored counts equal the published message count.
  std::int64_t stored = 0;
  ReadQuery q;
  q.table = std::string(kEventByTime);
  q.partition_key = event_time_key(kHour0, EventType::kLustreError);
  auto rows = f.cluster.select(q);
  ASSERT_TRUE(rows.is_ok());
  for (const auto& row : rows->rows) {
    stored += row.find(kColCount)->as_int();
  }
  EXPECT_EQ(stored, 300);
}

TEST(StreamingIngestTest, StreamAndBatchProduceSameTableContents) {
  // Property: loading N distinct events via batch or via stream yields the
  // same event_by_time rows (modulo write timestamps).
  titanlog::ScenarioConfig cfg;
  cfg.seed = 13;
  cfg.window = TimeRange{kT0, kT0 + 600};
  cfg.background_scale = 0.0;
  titanlog::HotspotSpec hs;
  hs.type = EventType::kGpuFailure;
  hs.location = topo::Coord{1, 1, -1, -1, -1};
  hs.window = cfg.window;
  hs.rate_per_node_hour = 20.0;
  cfg.hotspots.push_back(hs);
  auto logs = titanlog::Generator(cfg).generate();
  ASSERT_GT(logs.events.size(), 50u);

  Fixture batch_f;
  BatchIngestor batch(batch_f.cluster, batch_f.engine);
  (void)batch.ingest_records(logs.events, {});

  Fixture stream_f;
  buslite::Broker broker;
  ASSERT_TRUE(broker.create_topic("events", {.partitions = 4}).is_ok());
  EventPublisher pub(broker, "events");
  for (const auto& e : logs.events) ASSERT_TRUE(pub.publish(e).is_ok());
  StreamingIngestor stream(stream_f.cluster, stream_f.engine, broker,
                           "events");
  (void)stream.process_available();

  // Ground truth: batch stores one row per event; the stream coalesces
  // same (type, node, second) groups into one row whose count is the
  // group size. Totals must agree.
  std::map<std::pair<UnixSeconds, topo::NodeId>, std::int64_t> groups;
  std::size_t hour0_events = 0;
  for (const auto& e : logs.events) {
    if (hour_bucket(e.ts) != kHour0) continue;
    ++hour0_events;
    groups[{e.ts, e.node}] += 1;
  }

  ReadQuery q;
  q.table = std::string(kEventByTime);
  q.partition_key = event_time_key(kHour0, EventType::kGpuFailure);
  auto from_batch = batch_f.cluster.select(q);
  auto from_stream = stream_f.cluster.select(q);
  ASSERT_TRUE(from_batch.is_ok());
  ASSERT_TRUE(from_stream.is_ok());
  EXPECT_EQ(from_batch->rows.size(), hour0_events);
  EXPECT_EQ(from_stream->rows.size(), groups.size());
  std::int64_t batch_total = 0;
  std::int64_t stream_total = 0;
  for (const auto& row : from_batch->rows) {
    batch_total += row.find(kColCount)->as_int();
  }
  for (const auto& row : from_stream->rows) {
    stream_total += row.find(kColCount)->as_int();
  }
  EXPECT_EQ(batch_total, stream_total);
  EXPECT_EQ(batch_total, static_cast<std::int64_t>(hour0_events));
}

}  // namespace
}  // namespace hpcla::model
