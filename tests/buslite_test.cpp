#include "buslite/broker.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>

namespace hpcla::buslite {
namespace {

TEST(BrokerTest, TopicLifecycle) {
  Broker b;
  EXPECT_FALSE(b.has_topic("events"));
  EXPECT_TRUE(b.create_topic("events", {.partitions = 3}).is_ok());
  EXPECT_TRUE(b.has_topic("events"));
  EXPECT_EQ(b.partition_count("events").value(), 3);
  EXPECT_EQ(b.create_topic("events").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(b.create_topic("bad", {.partitions = 0}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(b.partition_count("nope").is_ok());
}

TEST(BrokerTest, ProduceAssignsDenseOffsetsPerPartition) {
  Broker b;
  ASSERT_TRUE(b.create_topic("t", {.partitions = 2}).is_ok());
  std::map<int, std::int64_t> last_offset;
  for (int i = 0; i < 100; ++i) {
    auto r = b.produce("t", "key-" + std::to_string(i), "v", i);
    ASSERT_TRUE(r.is_ok());
    auto [part, off] = r.value();
    if (last_offset.contains(part)) {
      EXPECT_EQ(off, last_offset[part] + 1);
    } else {
      EXPECT_EQ(off, 0);
    }
    last_offset[part] = off;
  }
}

TEST(BrokerTest, SameKeySamePartition) {
  Broker b;
  ASSERT_TRUE(b.create_topic("t", {.partitions = 8}).is_ok());
  std::set<int> parts;
  for (int i = 0; i < 20; ++i) {
    parts.insert(b.produce("t", "c3-17c1s5n2", "v", i)->first);
  }
  EXPECT_EQ(parts.size(), 1u);
}

TEST(BrokerTest, EmptyKeyRoundRobins) {
  Broker b;
  ASSERT_TRUE(b.create_topic("t", {.partitions = 4}).is_ok());
  std::set<int> parts;
  for (int i = 0; i < 8; ++i) parts.insert(b.produce("t", "", "v", i)->first);
  EXPECT_EQ(parts.size(), 4u);
}

TEST(BrokerTest, FetchPreservesOrderAndContent) {
  Broker b;
  ASSERT_TRUE(b.create_topic("t", {.partitions = 1}).is_ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(b.produce("t", "k", "msg-" + std::to_string(i), 1000 + i).is_ok());
  }
  auto batch = b.fetch("t", 0, 3, 4);
  ASSERT_TRUE(batch.is_ok());
  ASSERT_EQ(batch->size(), 4u);
  EXPECT_EQ((*batch)[0].value, "msg-3");
  EXPECT_EQ((*batch)[0].offset, 3);
  EXPECT_EQ((*batch)[3].value, "msg-6");
  EXPECT_EQ((*batch)[0].timestamp, 1003);
}

TEST(BrokerTest, FetchPastEndIsEmpty) {
  Broker b;
  ASSERT_TRUE(b.create_topic("t", {.partitions = 1}).is_ok());
  EXPECT_TRUE(b.fetch("t", 0, 0, 10)->empty());
  ASSERT_TRUE(b.produce("t", "k", "v", 0).is_ok());
  EXPECT_TRUE(b.fetch("t", 0, 1, 10)->empty());
  EXPECT_TRUE(b.fetch("t", 0, 99, 10)->empty());
}

TEST(BrokerTest, FetchValidatesTopicAndPartition) {
  Broker b;
  ASSERT_TRUE(b.create_topic("t", {.partitions = 2}).is_ok());
  EXPECT_EQ(b.fetch("nope", 0, 0, 1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(b.fetch("t", 5, 0, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(b.fetch("t", -1, 0, 1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BrokerTest, RetentionTrimsOldest) {
  Broker b;
  ASSERT_TRUE(
      b.create_topic("t", {.partitions = 1, .retention_messages = 5}).is_ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(b.produce("t", "k", "m" + std::to_string(i), i).is_ok());
  }
  EXPECT_EQ(b.begin_offset("t", 0).value(), 7);
  EXPECT_EQ(b.end_offset("t", 0).value(), 12);
  // Fetch below the floor clamps forward.
  auto batch = b.fetch("t", 0, 0, 100);
  ASSERT_TRUE(batch.is_ok());
  ASSERT_EQ(batch->size(), 5u);
  EXPECT_EQ(batch->front().value, "m7");
}

TEST(BrokerTest, CommitAndFetchOffsets) {
  Broker b;
  ASSERT_TRUE(b.create_topic("t", {.partitions = 2}).is_ok());
  EXPECT_EQ(b.committed("g", "t", 0).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(b.commit("g", "t", 0, 42).is_ok());
  EXPECT_EQ(b.committed("g", "t", 0).value(), 42);
  EXPECT_EQ(b.committed("g", "t", 1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(b.commit("g", "missing", 0, 1).code(), StatusCode::kNotFound);
  // Groups are independent.
  EXPECT_TRUE(b.commit("other", "t", 0, 7).is_ok());
  EXPECT_EQ(b.committed("g", "t", 0).value(), 42);
}

TEST(ConsumerTest, ConsumesEverythingAcrossPartitions) {
  Broker b;
  ASSERT_TRUE(b.create_topic("t", {.partitions = 4}).is_ok());
  std::set<std::string> produced;
  for (int i = 0; i < 100; ++i) {
    const std::string v = "m" + std::to_string(i);
    ASSERT_TRUE(b.produce("t", "key-" + std::to_string(i), v, i).is_ok());
    produced.insert(v);
  }
  Consumer c(b, "g", "t");
  std::set<std::string> consumed;
  while (true) {
    auto batch = c.poll(16);
    if (batch.empty()) break;
    for (auto& m : batch) consumed.insert(m.value);
  }
  EXPECT_EQ(consumed, produced);
  EXPECT_EQ(c.consumed(), 100u);
}

TEST(ConsumerTest, ResumesFromCommittedOffset) {
  Broker b;
  ASSERT_TRUE(b.create_topic("t", {.partitions = 1}).is_ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(b.produce("t", "k", "m" + std::to_string(i), i).is_ok());
  }
  {
    Consumer c1(b, "g", "t");
    auto batch = c1.poll(4);
    ASSERT_EQ(batch.size(), 4u);
    c1.commit();
  }
  // A new consumer instance in the same group resumes where c1 committed.
  Consumer c2(b, "g", "t");
  auto batch = c2.poll(100);
  ASSERT_EQ(batch.size(), 6u);
  EXPECT_EQ(batch.front().value, "m4");

  // A different group starts from the beginning.
  Consumer other(b, "fresh", "t");
  EXPECT_EQ(other.poll(100).size(), 10u);
}

TEST(ConsumerTest, SeekToCommittedRewindsToGroupProgress) {
  Broker b;
  ASSERT_TRUE(b.create_topic("t", {.partitions = 1}).is_ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(b.produce("t", "k", "m" + std::to_string(i), i).is_ok());
  }
  Consumer c1(b, "g", "t");
  ASSERT_EQ(c1.poll(100).size(), 10u);  // read ahead, nothing committed
  {
    // A second instance of the same group commits progress at offset 4.
    Consumer c2(b, "g", "t");
    ASSERT_EQ(c2.poll(4).size(), 4u);
    c2.commit();
  }
  // c1 rewinds to the group's committed offset and replays from there.
  c1.seek_to_committed();
  auto replay = c1.poll(100);
  ASSERT_EQ(replay.size(), 6u);
  EXPECT_EQ(replay.front().value, "m4");

  // A group with no commits keeps its current position.
  Consumer fresh(b, "never-committed", "t");
  ASSERT_EQ(fresh.poll(3).size(), 3u);
  fresh.seek_to_committed();
  EXPECT_EQ(fresh.poll(100).front().value, "m3");
}

TEST(ConsumerTest, PerPartitionOrderPreserved) {
  Broker b;
  ASSERT_TRUE(b.create_topic("t", {.partitions = 3}).is_ok());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(b.produce("t", "key-" + std::to_string(i % 5),
                          std::to_string(i), i).is_ok());
  }
  Consumer c(b, "g", "t");
  std::map<std::string, int> last_by_key;
  while (true) {
    auto batch = c.poll(7);
    if (batch.empty()) break;
    for (auto& m : batch) {
      const int v = std::stoi(m.value);
      if (last_by_key.contains(m.key)) {
        EXPECT_GT(v, last_by_key[m.key]);
      }
      last_by_key[m.key] = v;
    }
  }
  EXPECT_EQ(last_by_key.size(), 5u);
}

TEST(ConsumerGroupTest, MembersOwnDisjointCoveringPartitions) {
  Broker b;
  ASSERT_TRUE(b.create_topic("t", {.partitions = 5}).is_ok());
  Consumer m0(b, "g", "t", 0, 2);
  Consumer m1(b, "g", "t", 1, 2);
  std::set<int> all(m0.assignment().begin(), m0.assignment().end());
  for (int p : m1.assignment()) {
    EXPECT_TRUE(all.insert(p).second) << "partition " << p << " owned twice";
  }
  EXPECT_EQ(all.size(), 5u);
}

TEST(ConsumerGroupTest, GroupConsumesEachMessageExactlyOnce) {
  Broker b;
  ASSERT_TRUE(b.create_topic("t", {.partitions = 4}).is_ok());
  std::set<std::string> produced;
  for (int i = 0; i < 200; ++i) {
    const std::string v = "m" + std::to_string(i);
    ASSERT_TRUE(b.produce("t", "k" + std::to_string(i), v, i).is_ok());
    produced.insert(v);
  }
  Consumer m0(b, "g", "t", 0, 3);
  Consumer m1(b, "g", "t", 1, 3);
  Consumer m2(b, "g", "t", 2, 3);
  std::multiset<std::string> consumed;
  for (Consumer* m : {&m0, &m1, &m2}) {
    while (true) {
      auto batch = m->poll(16);
      if (batch.empty()) break;
      for (auto& msg : batch) consumed.insert(msg.value);
    }
  }
  EXPECT_EQ(consumed.size(), produced.size());  // no duplicates
  EXPECT_EQ(std::set<std::string>(consumed.begin(), consumed.end()), produced);
}

TEST(ConsumerGroupTest, MemberOffsetsIndependentlyCommitted) {
  Broker b;
  ASSERT_TRUE(b.create_topic("t", {.partitions = 2}).is_ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(b.produce("t", i % 2 ? "a" : "bb", "m", i).is_ok());
  }
  {
    Consumer m0(b, "g", "t", 0, 2);
    (void)m0.poll(100);
    m0.commit();
  }
  // Member 1 never consumed; a restarted member 0 sees nothing new while a
  // restarted member 1 drains its partition from offset 0.
  Consumer m0b(b, "g", "t", 0, 2);
  EXPECT_TRUE(m0b.poll(100).empty());
  Consumer m1(b, "g", "t", 1, 2);
  EXPECT_FALSE(m1.poll(100).empty());
}

TEST(ConsumerGroupTest, MoreMembersThanPartitions) {
  Broker b;
  ASSERT_TRUE(b.create_topic("t", {.partitions = 2}).is_ok());
  Consumer idle(b, "g", "t", 2, 3);  // no partition maps to member 2
  EXPECT_TRUE(idle.assignment().empty());
  ASSERT_TRUE(b.produce("t", "k", "v", 0).is_ok());
  EXPECT_TRUE(idle.poll(10).empty());
}

TEST(ConsumerTest, ConcurrentProducersSingleConsumer) {
  Broker b;
  ASSERT_TRUE(b.create_topic("t", {.partitions = 4}).is_ok());
  std::vector<std::thread> producers;
  constexpr int kThreads = 4;
  constexpr int kEach = 100;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&b, t] {
      Producer p(b, "t");
      for (int i = 0; i < kEach; ++i) {
        ASSERT_TRUE(p.send("k" + std::to_string(t), "v", i).is_ok());
      }
    });
  }
  for (auto& th : producers) th.join();
  Consumer c(b, "g", "t");
  std::size_t total = 0;
  while (true) {
    auto batch = c.poll(32);
    if (batch.empty()) break;
    total += batch.size();
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kThreads * kEach));
}

}  // namespace
}  // namespace hpcla::buslite
