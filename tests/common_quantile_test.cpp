// Tests for the GK quantile sketch (src/common/quantile_sketch.hpp):
// epsilon rank-error bounds on several input shapes, merge correctness,
// and the bounded-memory property that motivated it.
#include "common/quantile_sketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace hpcla {
namespace {

/// Exact rank of `v` in sorted `data` (number of elements <= v).
std::size_t rank_of(const std::vector<double>& sorted_data, double v) {
  return static_cast<std::size_t>(
      std::upper_bound(sorted_data.begin(), sorted_data.end(), v) -
      sorted_data.begin());
}

/// Asserts every queried quantile lands within epsilon*n of its true rank.
void expect_within_epsilon(const QuantileSketch& sketch,
                           std::vector<double> data, double epsilon) {
  std::sort(data.begin(), data.end());
  const double n = static_cast<double>(data.size());
  for (const double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double got = sketch.quantile(q);
    const double target = 1.0 + q * (n - 1.0);
    const auto r = static_cast<double>(rank_of(data, got));
    // The returned value's rank interval must overlap [target - eps*n,
    // target + eps*n]; with duplicates the element's rank range is wide,
    // so check the lower edge too.
    const double lo = static_cast<double>(
        std::lower_bound(data.begin(), data.end(), got) - data.begin() + 1);
    EXPECT_LE(lo - epsilon * n, target + 1e-9) << "q=" << q << " got=" << got;
    EXPECT_GE(r + epsilon * n, target - 1e-9) << "q=" << q << " got=" << got;
  }
}

TEST(QuantileSketch, ExactOnTinyInputs) {
  QuantileSketch s(0.01);
  EXPECT_EQ(s.count(), 0u);
  s.add(42.0);
  EXPECT_EQ(s.quantile(0.0), 42.0);
  EXPECT_EQ(s.quantile(0.5), 42.0);
  EXPECT_EQ(s.quantile(1.0), 42.0);
  s.add(7.0);
  EXPECT_EQ(s.quantile(0.0), 7.0);
  EXPECT_EQ(s.quantile(1.0), 42.0);
  EXPECT_EQ(s.count(), 2u);
}

TEST(QuantileSketch, UniformRandomWithinEpsilon) {
  const double eps = 0.01;
  QuantileSketch s(eps);
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> dist(0.0, 1000.0);
  std::vector<double> data;
  for (int i = 0; i < 50000; ++i) {
    const double v = dist(rng);
    data.push_back(v);
    s.add(v);
  }
  EXPECT_EQ(s.count(), data.size());
  expect_within_epsilon(s, data, eps);
}

TEST(QuantileSketch, SortedAndReversedStreams) {
  for (const bool reversed : {false, true}) {
    const double eps = 0.02;
    QuantileSketch s(eps);
    std::vector<double> data;
    for (int i = 0; i < 20000; ++i) {
      const double v =
          reversed ? static_cast<double>(20000 - i) : static_cast<double>(i);
      data.push_back(v);
      s.add(v);
    }
    expect_within_epsilon(s, data, eps);
  }
}

TEST(QuantileSketch, HeavyDuplicates) {
  const double eps = 0.01;
  QuantileSketch s(eps);
  std::vector<double> data;
  std::mt19937_64 rng(3);
  for (int i = 0; i < 30000; ++i) {
    // 90% of mass on three values, like coalesced burst counts.
    const double v = (rng() % 10 < 9) ? static_cast<double>(rng() % 3)
                                      : static_cast<double>(rng() % 1000);
    data.push_back(v);
    s.add(v);
  }
  expect_within_epsilon(s, data, eps);
}

TEST(QuantileSketch, BoundedMemory) {
  const double eps = 0.01;
  QuantileSketch s(eps);
  for (int i = 0; i < 200000; ++i) {
    s.add(static_cast<double>((i * 2654435761u) % 100000));
  }
  (void)s.quantile(0.5);
  // GK keeps O(1/eps * log(eps n)) tuples; 200k inserts at eps=0.01 must
  // not come anywhere near buffering the input.
  EXPECT_LT(s.tuple_count(), 4000u) << "sketch is buffering, not sketching";
}

TEST(QuantileSketch, MergePreservesBounds) {
  const double eps = 0.02;
  QuantileSketch a(eps), b(eps), c(eps);
  std::vector<double> data;
  std::mt19937_64 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = static_cast<double>(rng() % 5000);
    data.push_back(v);
    if (i % 3 == 0) {
      a.add(v);
    } else if (i % 3 == 1) {
      b.add(v);
    } else {
      c.add(v);
    }
  }
  a.merge(b);
  a.merge(c);
  EXPECT_EQ(a.count(), data.size());
  // Merged sketches lose some precision; allow the standard 2*eps bound.
  expect_within_epsilon(a, data, 2 * eps);
}

TEST(QuantileSketch, MergeWithEmpty) {
  QuantileSketch a(0.01), empty(0.01);
  for (int i = 0; i < 100; ++i) a.add(static_cast<double>(i));
  a.merge(empty);
  EXPECT_EQ(a.count(), 100u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 100u);
  EXPECT_EQ(empty.quantile(0.0), 0.0);
  EXPECT_EQ(empty.quantile(1.0), 99.0);
}

}  // namespace
}  // namespace hpcla
