// Tests for the shared varint/zigzag helpers and the LZ4-style block codec
// (src/common/block_codec.hpp) that the spill tier and columnar extents
// both ride on.
#include "common/block_codec.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <string>

namespace hpcla::codec {
namespace {

TEST(Varint, RoundTripsBoundaryValues) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 16383,
                                 16384,
                                 0xffffffffULL,
                                 std::numeric_limits<std::uint64_t>::max()};
  for (const auto v : cases) {
    std::string buf;
    put_varint(buf, v);
    std::uint64_t got = 0;
    const char* p = get_varint(buf.data(), buf.data() + buf.size(), got);
    ASSERT_NE(p, nullptr) << v;
    EXPECT_EQ(p, buf.data() + buf.size());
    EXPECT_EQ(got, v);
  }
}

TEST(Varint, RejectsTruncatedInput) {
  std::string buf;
  put_varint(buf, 1u << 20);
  std::uint64_t got = 0;
  EXPECT_EQ(get_varint(buf.data(), buf.data() + buf.size() - 1, got), nullptr);
  EXPECT_EQ(get_varint(buf.data(), buf.data(), got), nullptr);
}

TEST(Zigzag, RoundTripsSignedRange) {
  const std::int64_t cases[] = {0, -1, 1, -2, 63, -64,
                                std::numeric_limits<std::int64_t>::min(),
                                std::numeric_limits<std::int64_t>::max()};
  for (const auto v : cases) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v) << v;
  }
  // Small magnitudes map to small codes (the property delta coding needs).
  EXPECT_LT(zigzag_encode(-3), 8u);
}

std::string roundtrip(const std::string& in) {
  const std::string packed = block_compress(in);
  std::string out;
  EXPECT_TRUE(block_decompress(packed, in.size(), out)) << in.size();
  return out;
}

TEST(BlockCodec, RoundTripsEmptyAndTiny) {
  EXPECT_EQ(roundtrip(""), "");
  EXPECT_EQ(roundtrip("a"), "a");
  EXPECT_EQ(roundtrip("abc"), "abc");
}

TEST(BlockCodec, CompressesRepetitiveData) {
  std::string in;
  for (int i = 0; i < 2000; ++i) in += "machine check exception cpu0 ";
  const std::string packed = block_compress(in);
  EXPECT_LT(packed.size(), in.size() / 4) << "repetitive logs should shrink";
  EXPECT_EQ(roundtrip(in), in);
}

TEST(BlockCodec, RoundTripsIncompressibleData) {
  std::mt19937_64 rng(42);
  std::string in;
  in.reserve(64 * 1024);
  for (int i = 0; i < 64 * 1024; ++i) {
    in.push_back(static_cast<char>(rng() & 0xff));
  }
  EXPECT_EQ(roundtrip(in), in);
}

TEST(BlockCodec, RoundTripsOverlappingMatches) {
  // Runs of one byte force maximally overlapping matches (offset 1).
  std::string in(10000, 'x');
  in += "tail";
  in += std::string(500, 'y');
  EXPECT_EQ(roundtrip(in), in);
}

TEST(BlockCodec, RoundTripsMixedContent) {
  std::mt19937_64 rng(7);
  std::string in;
  for (int block = 0; block < 50; ++block) {
    if (block % 2 == 0) {
      in.append(200, static_cast<char>('a' + block % 26));
    } else {
      for (int i = 0; i < 200; ++i) {
        in.push_back(static_cast<char>(rng() & 0xff));
      }
    }
  }
  EXPECT_EQ(roundtrip(in), in);
}

TEST(BlockCodec, DetectsCorruptStreams) {
  std::string in;
  for (int i = 0; i < 500; ++i) in += "abcdefgh";
  std::string packed = block_compress(in);
  std::string out;
  // Wrong raw size.
  EXPECT_FALSE(block_decompress(packed, in.size() + 1, out));
  // Truncated stream.
  EXPECT_FALSE(block_decompress(
      std::string_view(packed.data(), packed.size() / 2), in.size(), out));
}

}  // namespace
}  // namespace hpcla::codec
