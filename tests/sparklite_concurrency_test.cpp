// ThreadSanitizer-targeted tests for concurrent wide operations on one
// shared sparklite Engine: parallel shuffles from multiple driver threads,
// concurrent actions on a shared shuffled dataset (lazy reduce partitions
// reading one bucket matrix), and history/label recording racing with
// readers. Run under -fsanitize=thread in CI; the assertions double as
// correctness checks at any interleaving.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "sparklite/dataset.hpp"
#include "sparklite/engine.hpp"

namespace hpcla::sparklite {
namespace {

Engine::Options opts(std::size_t workers) {
  Engine::Options o;
  o.workers = workers;
  return o;
}

using KV = std::pair<std::string, std::int64_t>;

std::vector<KV> keyed_input(int salt) {
  std::vector<KV> data;
  for (int i = 0; i < 400; ++i) {
    data.emplace_back("k" + std::to_string((i + salt) % 13), 1);
  }
  return data;
}

TEST(SparkliteConcurrencyTest, ConcurrentWideOpsOnSharedEngine) {
  Engine engine(opts(4));
  constexpr int kThreads = 4;
  constexpr int kIters = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> drivers;
  for (int t = 0; t < kThreads; ++t) {
    drivers.emplace_back([&engine, &failures, t] {
      for (int it = 0; it < kIters; ++it) {
        const auto data = keyed_input(t * 100 + it);
        auto ds = Dataset<KV>::parallelize(engine, data, 5);
        switch ((t + it) % 3) {
          case 0: {
            auto got =
                reduce_by_key(ds,
                              [](std::int64_t a, std::int64_t b) {
                                return a + b;
                              },
                              4)
                    .collect();
            std::int64_t total = 0;
            for (const auto& [k, v] : got) total += v;
            if (got.size() != 13 || total != 400) failures++;
            break;
          }
          case 1: {
            auto grouped = group_by_key(ds, 3).collect();
            std::size_t total = 0;
            for (const auto& [k, vs] : grouped) total += vs.size();
            if (total != 400) failures++;
            break;
          }
          default: {
            auto sorted = sort_by(ds,
                                  [](const KV& kv) { return kv.first; }, 4)
                              .collect();
            if (sorted.size() != 400 ||
                !std::is_sorted(sorted.begin(), sorted.end(),
                                [](const KV& a, const KV& b) {
                                  return a.first < b.first;
                                })) {
              failures++;
            }
          }
        }
      }
    });
  }
  for (auto& d : drivers) d.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(engine.metrics().shuffles,
            static_cast<std::uint64_t>(kThreads * kIters));
}

TEST(SparkliteConcurrencyTest, ConcurrentJoinsShareThePool) {
  Engine engine(opts(4));
  std::vector<KV> left, right;
  for (int i = 0; i < 120; ++i) left.emplace_back("k" + std::to_string(i % 9), i);
  for (int i = 0; i < 9; ++i) right.emplace_back("k" + std::to_string(i), 1);
  std::atomic<int> failures{0};
  std::vector<std::thread> drivers;
  for (int t = 0; t < 3; ++t) {
    drivers.emplace_back([&] {
      for (int it = 0; it < 6; ++it) {
        auto l = Dataset<KV>::parallelize(engine, left, 4);
        auto r = Dataset<KV>::parallelize(engine, right, 2);
        if (join(l, r, 3).collect().size() != 120) failures++;
      }
    });
  }
  for (auto& d : drivers) d.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(SparkliteConcurrencyTest, ConcurrentActionsOnOneShuffledDataset) {
  // The lazy reduce partitions of one shuffled dataset share the bucket
  // matrix read-only and race only on the atomic reduce-time counter.
  Engine engine(opts(4));
  auto ds = Dataset<KV>::parallelize(engine, keyed_input(1), 6);
  auto reduced = reduce_by_key(
      ds, [](std::int64_t a, std::int64_t b) { return a + b; }, 8);
  const auto expected = reduced.collect();
  std::atomic<int> failures{0};
  std::vector<std::thread> drivers;
  for (int t = 0; t < 4; ++t) {
    drivers.emplace_back([&] {
      for (int it = 0; it < 10; ++it) {
        if (reduced.collect() != expected) failures++;
      }
    });
  }
  for (auto& d : drivers) d.join();
  EXPECT_EQ(failures.load(), 0);
  const auto history = engine.shuffle_history();
  ASSERT_EQ(history.size(), 1u);
  EXPECT_GT(history[0]->reduce_us.load(), 0u);
}

TEST(SparkliteConcurrencyTest, HistoryRecordingRacesWithReaders) {
  Engine engine(opts(2));
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const auto& rec : engine.stage_history()) {
        // Touch every field; TSan flags torn reads.
        if (rec.tasks > 1000000 || rec.label.empty()) std::abort();
      }
      (void)engine.render_history();
      (void)engine.metrics();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&engine, t] {
      for (int it = 0; it < 120; ++it) {
        engine.set_next_stage_label("job-" + std::to_string(t) + "-" +
                                    std::to_string(it));
        auto ds = Dataset<int>::parallelize(engine, {1, 2, 3, 4}, 2);
        (void)ds.count();
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  // All 360 labeled stages completed; the ring keeps the last 256.
  EXPECT_EQ(engine.stage_history().size(), 256u);
  EXPECT_EQ(engine.metrics().stages, 360u);
}

}  // namespace
}  // namespace hpcla::sparklite
