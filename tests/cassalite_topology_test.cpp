// Elastic topology: versioned rings, ring_diff, Merkle anti-entropy, range
// streaming, pending-range dual writes, and the hinted-handoff LWW-safety
// and exactly-once read-repair guarantees (ISSUE 9 / DESIGN.md §15).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cassalite/cluster.hpp"
#include "cassalite/merkle.hpp"
#include "cassalite/ring.hpp"
#include "common/faultsim.hpp"
#include "common/rng.hpp"

namespace hpcla::cassalite {
namespace {

Row row_of(std::int64_t seq, const std::string& value) {
  Row r;
  r.key = ClusteringKey::of({Value(seq), Value(0)});
  r.set("v", Value(value));
  return r;
}

// ------------------------------------------------------------------- ring

TEST(TokenRingTest, WithAndWithoutNodeTrackMembership) {
  const TokenRing base(4, 8, 1);
  EXPECT_EQ(base.node_count(), 4u);
  EXPECT_TRUE(base.is_member(3));
  EXPECT_FALSE(base.is_member(4));

  const TokenRing grown = base.with_node(4, 8, 77);
  EXPECT_EQ(grown.node_count(), 5u);
  EXPECT_TRUE(grown.is_member(4));
  EXPECT_EQ(grown.tokens_of(4).size(), 8u);
  // The original members' tokens are untouched (consistent hashing: only
  // ranges adjacent to the new tokens move).
  for (NodeIndex n = 0; n < 4; ++n) {
    EXPECT_EQ(grown.tokens_of(n), base.tokens_of(n)) << n;
  }

  const TokenRing shrunk = grown.without_node(1);
  EXPECT_EQ(shrunk.node_count(), 4u);
  EXPECT_FALSE(shrunk.is_member(1));
  EXPECT_TRUE(shrunk.is_member(4));
  EXPECT_TRUE(shrunk.tokens_of(1).empty());
}

TEST(TokenRingTest, AddNodeIsOrderIndependent) {
  // Token derivation is decorrelated per node: the ring after adding nodes
  // 4 then 5 equals the ring after adding 5 then 4.
  const TokenRing base(4, 8, 1);
  const TokenRing ab = base.with_node(4, 8, 9).with_node(5, 8, 9);
  const TokenRing ba = base.with_node(5, 8, 9).with_node(4, 8, 9);
  EXPECT_EQ(ab.boundary_tokens(), ba.boundary_tokens());
  for (NodeIndex n = 0; n < 6; ++n) {
    EXPECT_EQ(ab.tokens_of(n), ba.tokens_of(n)) << n;
  }
}

TEST(TokenRingTest, RingDiffCapturesEveryOwnershipChange) {
  const std::size_t rf = 3;
  const TokenRing before(5, 16, 42);
  const TokenRing after = before.with_node(5, 16, 1234);
  const auto moved = ring_diff(before, after, rf, {});
  ASSERT_FALSE(moved.empty());

  // Every moved range agrees with a direct ownership probe at its upper
  // bound, and gained/lost are consistent set differences.
  for (const auto& m : moved) {
    const auto old_owners = before.replicas_for_token(m.range.hi, rf);
    const auto new_owners = after.replicas_for_token(m.range.hi, rf);
    EXPECT_EQ(m.old_owners, old_owners);
    EXPECT_EQ(m.new_owners, new_owners);
    for (NodeIndex g : m.gained) {
      EXPECT_TRUE(std::find(old_owners.begin(), old_owners.end(), g) ==
                  old_owners.end());
      EXPECT_TRUE(std::find(new_owners.begin(), new_owners.end(), g) !=
                  new_owners.end());
    }
    for (NodeIndex l : m.lost) {
      EXPECT_TRUE(std::find(new_owners.begin(), new_owners.end(), l) ==
                  new_owners.end());
    }
  }

  // Completeness: probe many tokens; every token whose owner set changed
  // must be covered by some moved range.
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const Token t = static_cast<Token>(rng.next_u64());
    const auto o = before.replicas_for_token(t, rf);
    const auto n = after.replicas_for_token(t, rf);
    const bool changed = [&] {
      if (o.size() != n.size()) return true;
      for (NodeIndex x : o) {
        if (std::find(n.begin(), n.end(), x) == n.end()) return true;
      }
      return false;
    }();
    bool covered = false;
    for (const auto& m : moved) {
      if (m.range.contains(t)) {
        covered = true;
        break;
      }
    }
    if (changed) {
      EXPECT_TRUE(covered) << "changed token " << t << " not in any range";
    }
  }
}

TEST(TokenRingTest, ReshuffleKeepsMembersAndVnodeCounts) {
  const TokenRing base(4, 8, 1);
  const TokenRing shuffled = base.reshuffled(999);
  EXPECT_EQ(shuffled.node_count(), 4u);
  for (NodeIndex n = 0; n < 4; ++n) {
    EXPECT_EQ(shuffled.tokens_of(n).size(), 8u);
  }
  EXPECT_NE(shuffled.boundary_tokens(), base.boundary_tokens());
}

// ----------------------------------------------------------------- merkle

TEST(MerkleTreeTest, ScanOrderDoesNotChangeTheTree) {
  const TokenRange full{0, 0, true};
  MerkleTree a(full, 6);
  MerkleTree b(full, 6);
  Rng rng(3);
  std::vector<std::pair<Token, std::uint64_t>> parts;
  for (int i = 0; i < 500; ++i) {
    parts.emplace_back(static_cast<Token>(rng.next_u64()), rng.next_u64());
  }
  for (const auto& [t, d] : parts) a.add(t, d);
  std::reverse(parts.begin(), parts.end());
  for (const auto& [t, d] : parts) b.add(t, d);
  EXPECT_EQ(a.root(), b.root());
  EXPECT_TRUE(MerkleTree::diff(a, b).empty());
}

TEST(MerkleTreeTest, DiffLocalizesTheDivergentLeaf) {
  const TokenRange full{0, 0, true};
  MerkleTree a(full, 5);
  MerkleTree b(full, 5);
  Rng rng(4);
  Token mutated = 0;
  for (int i = 0; i < 300; ++i) {
    const Token t = static_cast<Token>(rng.next_u64());
    const std::uint64_t d = rng.next_u64();
    a.add(t, d);
    if (i == 123) {
      mutated = t;
      b.add(t, d ^ 0xDEADBEEFull);  // same partition, different contents
    } else {
      b.add(t, d);
    }
  }
  EXPECT_NE(a.root(), b.root());
  const auto leaves = MerkleTree::diff(a, b);
  ASSERT_EQ(leaves.size(), 1u);
  EXPECT_EQ(leaves.front(), a.leaf_index(mutated));
  // The divergent leaf's range contains the mutated token.
  EXPECT_TRUE(a.leaf_range(leaves.front()).contains(mutated));
}

TEST(MerkleTreeTest, LeafRangesTileTheRange) {
  // Every token in a narrow range maps to exactly the leaf whose range
  // contains it.
  const TokenRange narrow{-50, 50, false};
  MerkleTree t(narrow, 3);
  for (std::int64_t raw = -50 + 1; raw <= 50; ++raw) {
    const Token tok = static_cast<Token>(raw);
    const std::size_t leaf = t.leaf_index(tok);
    EXPECT_TRUE(t.leaf_range(leaf).contains(tok)) << raw;
    // ...and no other leaf claims it.
    for (std::size_t l = 0; l < t.leaf_count(); ++l) {
      if (l == leaf) continue;
      EXPECT_FALSE(t.leaf_range(l).contains(tok)) << raw << " leaf " << l;
    }
  }
}

// ------------------------------------------------- cluster: add/remove

ClusterOptions small_cluster() {
  ClusterOptions o;
  o.node_count = 4;
  o.replication_factor = 3;
  o.vnodes = 16;
  return o;
}

void load_keys(Cluster& c, int n, const char* prefix = "pk") {
  for (int k = 0; k < n; ++k) {
    ASSERT_TRUE(c.insert("t", prefix + std::to_string(k),
                         row_of(k, "v" + std::to_string(k)),
                         Consistency::kQuorum)
                    .is_ok())
        << k;
  }
}

void expect_all_readable(Cluster& c, int n, const char* prefix = "pk",
                         const char* value_prefix = "v") {
  for (int k = 0; k < n; ++k) {
    ReadQuery q;
    q.table = "t";
    q.partition_key = prefix + std::to_string(k);
    const auto r = c.select(q, Consistency::kQuorum);
    ASSERT_TRUE(r.is_ok()) << q.partition_key << ": " << r.status().to_string();
    ASSERT_FALSE(r->rows.empty()) << q.partition_key << " came back empty";
    EXPECT_EQ(r->rows.front().find("v")->as_text(),
              value_prefix + std::to_string(k));
  }
}

TEST(ElasticTopologyTest, AddNodeStreamsItsRangesAndCommitsANewEpoch) {
  Cluster cluster(small_cluster());
  load_keys(cluster, 64);
  const std::uint64_t epoch0 = cluster.ring_epoch();

  const auto added = cluster.add_node();
  ASSERT_TRUE(added.is_ok()) << added.status().to_string();
  const NodeIndex n = added.value();
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(cluster.member_count(), 5u);
  EXPECT_EQ(cluster.node_count(), 5u);
  // Pending publish + commit: two epoch bumps.
  EXPECT_EQ(cluster.ring_epoch(), epoch0 + 2);
  EXPECT_FALSE(cluster.movement_in_progress());
  EXPECT_GT(cluster.metrics().stream_rows_sent, 0u);
  EXPECT_GT(cluster.metrics().ranges_streamed, 0u);
  EXPECT_EQ(cluster.metrics().topology_changes, 1u);

  // Every key readable at QUORUM against the new ring, and wherever the
  // new node is a replica it holds byte-identical data.
  expect_all_readable(cluster, 64);
  std::size_t keys_on_new_node = 0;
  for (int k = 0; k < 64; ++k) {
    const std::string pk = "pk" + std::to_string(k);
    const auto replicas = cluster.replicas_of(pk);
    if (std::find(replicas.begin(), replicas.end(), n) == replicas.end()) {
      continue;
    }
    ++keys_on_new_node;
    ReadQuery q;
    q.table = "t";
    q.partition_key = pk;
    const std::uint64_t want =
        rows_digest(cluster.engine(replicas.front()).read(q).rows);
    EXPECT_EQ(rows_digest(cluster.engine(n).read(q).rows), want) << pk;
  }
  EXPECT_GT(keys_on_new_node, 0u) << "new node owns no tested key ranges";
}

TEST(ElasticTopologyTest, RemoveNodeRefusedBelowReplicationFactor) {
  ClusterOptions o = small_cluster();
  o.node_count = 3;  // rf == 3: any removal would underflow
  Cluster cluster(o);
  const Status s = cluster.remove_node(0);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << s.to_string();
}

TEST(ElasticTopologyTest, RemoveNodeMovesOwnershipWithoutDataLoss) {
  Cluster cluster(small_cluster());
  load_keys(cluster, 64);
  ASSERT_TRUE(cluster.remove_node(2).is_ok());
  EXPECT_EQ(cluster.member_count(), 3u);
  EXPECT_FALSE(cluster.is_member(2));
  // Engine slots survive decommission (node_count is slot space).
  EXPECT_EQ(cluster.node_count(), 4u);
  expect_all_readable(cluster, 64);
  // Node 2 no longer appears in any replica set.
  for (int k = 0; k < 64; ++k) {
    const auto replicas = cluster.replicas_of("pk" + std::to_string(k));
    EXPECT_TRUE(std::find(replicas.begin(), replicas.end(), 2u) ==
                replicas.end());
  }
}

TEST(ElasticTopologyTest, RebalancePreservesEveryAckedWrite) {
  Cluster cluster(small_cluster());
  load_keys(cluster, 96);
  ASSERT_TRUE(cluster.rebalance(0xFEED).is_ok());
  EXPECT_EQ(cluster.metrics().topology_changes, 1u);
  expect_all_readable(cluster, 96);
  // All replicas of every key byte-identical after the movement.
  for (int k = 0; k < 96; ++k) {
    ReadQuery q;
    q.table = "t";
    q.partition_key = "pk" + std::to_string(k);
    const auto replicas = cluster.replicas_of(q.partition_key);
    const std::uint64_t want =
        rows_digest(cluster.engine(replicas.front()).read(q).rows);
    for (NodeIndex r : replicas) {
      EXPECT_EQ(rows_digest(cluster.engine(r).read(q).rows), want)
          << "replica " << r << " of " << q.partition_key;
    }
  }
}

TEST(ElasticTopologyTest, PendingRangeWritesDualRouteDuringMovement) {
  Cluster cluster(small_cluster());
  load_keys(cluster, 16);
  const std::uint64_t before = cluster.metrics().pending_range_writes;

  // Inject writes + reads at the exact moment the pending ring is live.
  bool observed_movement = false;
  cluster.set_topology_hook([&](TopologyStage stage) {
    if (stage != TopologyStage::kPendingPublished) return;
    observed_movement = cluster.movement_in_progress();
    for (int k = 0; k < 16; ++k) {
      ASSERT_TRUE(cluster
                      .insert("t", "mid" + std::to_string(k),
                              row_of(k, "m" + std::to_string(k)),
                              Consistency::kQuorum)
                      .is_ok())
          << k;
    }
    // Reads during movement stay honest: acked data visible, no phantom
    // empty ranges.
    for (int k = 0; k < 16; ++k) {
      ReadQuery q;
      q.table = "t";
      q.partition_key = "pk" + std::to_string(k);
      const auto r = cluster.select(q, Consistency::kQuorum);
      ASSERT_TRUE(r.is_ok()) << r.status().to_string();
      EXPECT_FALSE(r->rows.empty()) << q.partition_key;
    }
  });
  ASSERT_TRUE(cluster.add_node().is_ok());
  EXPECT_TRUE(observed_movement);
  // At least one mid-movement write must have routed to a pending extra
  // owner (the new node gains ranges, so some key hits a moved range).
  EXPECT_GT(cluster.metrics().pending_range_writes, before);
  // Mid-movement writes survive the commit at QUORUM.
  expect_all_readable(cluster, 16, "mid", "m");
}

TEST(ElasticTopologyTest, SameSeedProducesIdenticalTopology) {
  ClusterOptions o = small_cluster();
  Cluster a(o);
  Cluster b(o);
  load_keys(a, 8);
  load_keys(b, 8);
  ASSERT_TRUE(a.add_node(0, -1, 0xABC).is_ok());
  ASSERT_TRUE(b.add_node(0, -1, 0xABC).is_ok());
  EXPECT_EQ(a.ring().boundary_tokens(), b.ring().boundary_tokens());
  ASSERT_TRUE(a.rebalance(5).is_ok());
  ASSERT_TRUE(b.rebalance(5).is_ok());
  EXPECT_EQ(a.ring().boundary_tokens(), b.ring().boundary_tokens());
}

// ------------------------------------------- streaming source selection

TEST(ElasticTopologyTest, StreamingNeverUsesASuspectedSource) {
  Cluster cluster(small_cluster());
  load_keys(cluster, 64);

  // Node 1 is suspected by the failure detector (still up at the cluster
  // level). The refresher must run before sources are picked.
  bool refreshed = false;
  std::set<NodeIndex> suspected = {1};
  cluster.set_suspicion_refresher([&] { refreshed = true; });
  cluster.set_suspicion_source([&](NodeIndex n) {
    EXPECT_TRUE(refreshed) << "suspicion consulted before refresh";
    return suspected.count(n) != 0;
  });

  ASSERT_TRUE(cluster.add_node().is_ok());
  EXPECT_TRUE(refreshed);
  EXPECT_EQ(cluster.streams_served(1), 0u)
      << "a suspected node served as a streaming source";
  std::uint64_t healthy_streams = 0;
  for (NodeIndex n = 0; n < 4; ++n) {
    if (n != 1) healthy_streams += cluster.streams_served(n);
  }
  EXPECT_GT(healthy_streams, 0u);
  expect_all_readable(cluster, 64);
}

TEST(ElasticTopologyTest, MovementAbortsWhenQuorumOfSourcesIsSuspected) {
  Cluster cluster(small_cluster());
  load_keys(cluster, 16);
  cluster.set_suspicion_source([](NodeIndex) { return true; });
  const std::uint64_t epoch0 = cluster.ring_epoch();
  const auto added = cluster.add_node();
  ASSERT_FALSE(added.is_ok());
  EXPECT_EQ(added.status().code(), StatusCode::kUnavailable)
      << added.status().to_string();
  // The abort republished the old committed ring: membership unchanged,
  // movement flag cleared, and the acked data still reads fine.
  EXPECT_EQ(cluster.member_count(), 4u);
  EXPECT_FALSE(cluster.movement_in_progress());
  EXPECT_GT(cluster.ring_epoch(), epoch0);
  EXPECT_EQ(cluster.metrics().topology_changes, 0u);
  cluster.set_suspicion_source(nullptr);
  expect_all_readable(cluster, 16);
}

// -------------------------------------------------------- merkle repair

TEST(RepairTest, RepairConvergesAHintExpiredReplica) {
  SimClock clock;
  ClusterOptions copts = small_cluster();
  copts.hint_ttl_ms = 1000;
  FaultOptions fopts;
  FaultInjector injector(copts.node_count, fopts, &clock);
  Cluster cluster(copts);
  cluster.set_fault_injector(&injector);

  load_keys(cluster, 32);

  // Take node 2 down via an injected crash window and write over every
  // key: node 2 misses the overwrites, hints pile up.
  injector.crash_window(2, 0, 10'000);
  for (int k = 0; k < 32; ++k) {
    ASSERT_TRUE(cluster
                    .insert("t", "pk" + std::to_string(k),
                            row_of(k, "new" + std::to_string(k)),
                            Consistency::kQuorum)
                    .is_ok());
  }
  // The hints expire before the node returns: honest divergence that only
  // anti-entropy can heal.
  clock.advance_ms(20'000);
  injector.heal_all();
  EXPECT_EQ(cluster.replay_all_hints(), 0u) << "hints should have expired";
  EXPECT_GT(cluster.metrics().hints_expired, 0u);

  const auto report = cluster.repair("t");
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_GT(report->ranges_diverged, 0u);
  EXPECT_GT(report->rows_streamed, 0u);
  const ClusterMetrics m = cluster.metrics();
  EXPECT_EQ(m.repairs_scheduled, 1u);
  EXPECT_GT(m.repair_rows_sent, 0u);

  // Byte-identical replicas everywhere; the overwrites won.
  for (int k = 0; k < 32; ++k) {
    ReadQuery q;
    q.table = "t";
    q.partition_key = "pk" + std::to_string(k);
    const auto replicas = cluster.replicas_of(q.partition_key);
    const std::uint64_t want =
        rows_digest(cluster.engine(replicas.front()).read(q).rows);
    for (NodeIndex r : replicas) {
      EXPECT_EQ(rows_digest(cluster.engine(r).read(q).rows), want)
          << "replica " << r << " of " << q.partition_key;
    }
    const auto read = cluster.select(q, Consistency::kAll);
    ASSERT_TRUE(read.is_ok());
    EXPECT_EQ(read->rows.front().find("v")->as_text(),
              "new" + std::to_string(k));
  }

  // A second repair finds nothing to do.
  const auto again = cluster.repair("t");
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again->ranges_diverged, 0u);
  EXPECT_EQ(again->rows_streamed, 0u);
}

TEST(RepairTest, RepairUnknownTableIsNotFound) {
  Cluster cluster(small_cluster());
  const auto r = cluster.repair("nope");
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

// ----------------------------- satellite (c): hinted handoff LWW safety

TEST(HintSafetyTest, StaleHintReplayNeverResurrectsOverwrittenCells) {
  SimClock clock;
  ClusterOptions copts = small_cluster();
  copts.hint_ttl_ms = 600'000;
  FaultOptions fopts;
  FaultInjector injector(copts.node_count, fopts, &clock);
  Cluster cluster(copts);
  cluster.set_fault_injector(&injector);

  const std::string pk = "pk-lww";
  ASSERT_TRUE(
      cluster.insert("t", pk, row_of(0, "v1"), Consistency::kQuorum).is_ok());

  // Replica r misses the v2 overwrite (crash window): a hint is stored.
  const NodeIndex r = cluster.replicas_of(pk).front();
  injector.crash_window(r, 0, 1'000);
  ASSERT_TRUE(
      cluster.insert("t", pk, row_of(0, "v2"), Consistency::kQuorum).is_ok());
  EXPECT_GT(cluster.pending_hints(), 0u);

  // The window expires (injector heal, NOT revive): the hint stays queued
  // — a "regenerated" target with a stale hint outstanding.
  clock.advance_ms(2'000);
  ASSERT_FALSE(injector.is_down(r));
  // v3 lands everywhere, including r, with a newer write timestamp.
  ASSERT_TRUE(
      cluster.insert("t", pk, row_of(0, "v3"), Consistency::kAll).is_ok());

  // Now the stale v2 hint replays — LWW must keep v3 on the replica.
  (void)cluster.replay_hints(r);
  ReadQuery q;
  q.table = "t";
  q.partition_key = pk;
  EXPECT_EQ(cluster.engine(r).read(q).rows.front().find("v")->as_text(), "v3")
      << "stale hint resurrected an overwritten cell";
  const auto read = cluster.select(q, Consistency::kAll);
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(read->rows.front().find("v")->as_text(), "v3");
}

TEST(HintSafetyTest, HintTtlFollowsTheInjectedSimClock) {
  SimClock clock;
  ClusterOptions copts = small_cluster();
  copts.hint_ttl_ms = 1'000;
  FaultOptions fopts;
  FaultInjector injector(copts.node_count, fopts, &clock);
  Cluster cluster(copts);
  cluster.set_fault_injector(&injector);  // adopts the injector's clock

  const std::string pk = "pk-ttl";
  const NodeIndex victim = cluster.replicas_of(pk).front();
  cluster.kill_node(victim);
  ASSERT_TRUE(
      cluster.insert("t", pk, row_of(0, "x"), Consistency::kQuorum).is_ok());
  ASSERT_GT(cluster.pending_hints(), 0u);

  // Under TTL: the hint replays.
  clock.advance_ms(999);
  EXPECT_EQ(cluster.revive_node(victim), 1u);
  EXPECT_EQ(cluster.metrics().hints_expired, 0u);

  // Past TTL: the hint expires instead (virtual time only — no wall clock).
  cluster.kill_node(victim);
  ASSERT_TRUE(
      cluster.insert("t", pk, row_of(1, "y"), Consistency::kQuorum).is_ok());
  clock.advance_ms(1'001);
  EXPECT_EQ(cluster.revive_node(victim), 0u);
  EXPECT_GT(cluster.metrics().hints_expired, 0u);
}

// ------------------- satellite (d): exactly-once read repair at kAll

TEST(ReadRepairTest, OneStaleReplicaRepairsExactlyOnceAtAll) {
  SimClock clock;
  ClusterOptions copts = small_cluster();
  FaultOptions fopts;
  FaultInjector injector(copts.node_count, fopts, &clock);
  Cluster cluster(copts);
  cluster.set_fault_injector(&injector);

  const std::string pk = "pk-rr";
  ASSERT_TRUE(
      cluster.insert("t", pk, row_of(0, "old"), Consistency::kAll).is_ok());

  // Exactly one replica misses the overwrite (crash window during the
  // write), then comes back without hint replay.
  const NodeIndex stale = cluster.replicas_of(pk).back();
  injector.crash_window(stale, 0, 100);
  ASSERT_TRUE(
      cluster.insert("t", pk, row_of(0, "new"), Consistency::kQuorum).is_ok());
  clock.advance_ms(200);  // window over; hint left unplayed on purpose
  ASSERT_FALSE(injector.is_down(stale));

  const std::uint64_t repairs_before = cluster.metrics().read_repairs;
  ReadQuery q;
  q.table = "t";
  q.partition_key = pk;
  const auto read = cluster.select(q, Consistency::kAll);
  ASSERT_TRUE(read.is_ok()) << read.status().to_string();
  EXPECT_EQ(read->rows.front().find("v")->as_text(), "new");

  // Exactly one repair: the one stale replica; the up-to-date ones were
  // digest-identical to the merged state.
  EXPECT_EQ(cluster.metrics().read_repairs, repairs_before + 1);
  EXPECT_GT(cluster.metrics().digest_mismatches, 0u);

  // The repaired replica is byte-identical to its peers.
  const auto replicas = cluster.replicas_of(pk);
  const std::uint64_t want =
      rows_digest(cluster.engine(replicas.front()).read(q).rows);
  EXPECT_EQ(rows_digest(cluster.engine(stale).read(q).rows), want);

  // A second kAll read finds digests converged: no further repair.
  const std::uint64_t repairs_after = cluster.metrics().read_repairs;
  ASSERT_TRUE(cluster.select(q, Consistency::kAll).is_ok());
  EXPECT_EQ(cluster.metrics().read_repairs, repairs_after);
}

}  // namespace
}  // namespace hpcla::cassalite
