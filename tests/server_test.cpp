// Tests for the analytics server: query classification, the JSON protocol
// for every op, error handling, renderers, and long-poll sessions.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <thread>

#include "common/telemetry.hpp"
#include "model/ingest.hpp"
#include "server/render.hpp"
#include "server/server.hpp"
#include "titanlog/generator.hpp"

namespace hpcla::server {
namespace {

using analytics::Context;
using cassalite::Cluster;
using cassalite::ClusterOptions;
using titanlog::EventType;

constexpr UnixSeconds kT0 = 1489449600;

struct ServerFixture {
  Cluster cluster;
  sparklite::Engine engine;
  AnalyticsServer server;
  titanlog::GeneratedLogs logs;

  ServerFixture()
      : cluster(opts()),
        engine(sparklite::EngineOptions{.workers = 4}),
        server(cluster, engine) {
    HPCLA_CHECK(model::create_data_model(cluster).is_ok());
    HPCLA_CHECK(model::load_eventtypes(cluster).is_ok());

    titanlog::ScenarioConfig cfg;
    cfg.seed = 55;
    cfg.window = TimeRange{kT0, kT0 + 2 * 3600};
    cfg.background_scale = 0.3;
    titanlog::HotspotSpec hs;
    hs.type = EventType::kMachineCheck;
    hs.location = topo::Coord{7, 1, -1, -1, -1};
    hs.window = TimeRange{kT0, kT0 + 3600};
    hs.rate_per_node_hour = 6.0;
    cfg.hotspots.push_back(hs);
    titanlog::LustreStormSpec storm;
    storm.start = kT0 + 5400;
    storm.duration_seconds = 120;
    storm.ost_index = 0x17;
    storm.messages_per_second = 40;
    cfg.storms.push_back(storm);
    cfg.jobs = titanlog::JobMixSpec{.users = 6, .apps = 4, .jobs_per_hour = 30,
                                    .max_size_log2 = 5};
    logs = titanlog::Generator(cfg).generate();
    model::BatchIngestor ingestor(cluster, engine);
    auto report = ingestor.ingest_records(logs.events, logs.jobs);
    HPCLA_CHECK(report.write_failures == 0);

    // nodeinfos: load only the rows the tests touch would be cheating —
    // load the full machine once for the whole suite.
    HPCLA_CHECK(model::load_nodeinfos(cluster).is_ok());
  }

  static ClusterOptions opts() {
    ClusterOptions o;
    o.node_count = 4;
    o.replication_factor = 2;
    return o;
  }

  Json ok(const std::string& request_text) {
    auto request = Json::parse(request_text);
    HPCLA_CHECK(request.is_ok());
    Json response = server.handle(request.value());
    EXPECT_EQ(response["status"].as_string(), "ok")
        << (response["error"].is_string() ? response["error"].as_string()
                                          : std::string());
    return response;
  }

  Json err(const std::string& request_text) {
    auto request = Json::parse(request_text);
    HPCLA_CHECK(request.is_ok());
    Json response = server.handle(request.value());
    EXPECT_EQ(response["status"].as_string(), "error");
    return response;
  }
};

ServerFixture& fixture() {
  static ServerFixture f;
  return f;
}

std::string ctx_json(const char* extra = "") {
  return std::string(R"("context":{"window":{"begin":1489449600,"end":1489456800})") +
         extra + "}";
}

// ----------------------------------------------------------- classification

TEST(ClassifyTest, KnownOps) {
  EXPECT_EQ(classify_query("nodeinfo").value(), QueryPath::kSimple);
  EXPECT_EQ(classify_query("events").value(), QueryPath::kSimple);
  EXPECT_EQ(classify_query("heatmap").value(), QueryPath::kComplex);
  EXPECT_EQ(classify_query("transfer_entropy").value(), QueryPath::kComplex);
  EXPECT_FALSE(classify_query("drop_tables").is_ok());
}

// -------------------------------------------------------------- simple ops

TEST(ServerTest, NodeInfoByNidAndCname) {
  auto& f = fixture();
  auto by_nid = f.ok(R"({"op":"nodeinfo","node":5000})");
  EXPECT_EQ(by_nid["path"].as_string(), "simple");
  EXPECT_EQ(by_nid["result"]["cname"].as_string(), topo::cname_of(5000));
  auto by_cname = f.ok(R"({"op":"nodeinfo","cname":"c3-17c1s5n2"})");
  EXPECT_EQ(by_cname["result"]["nid"].as_int(),
            topo::node_id(topo::parse_cname("c3-17c1s5n2").value()));
  f.err(R"({"op":"nodeinfo","node":99999})");
  f.err(R"({"op":"nodeinfo","cname":"c3-17"})");  // not node-level
  f.err(R"({"op":"nodeinfo"})");
}

TEST(ServerTest, EventTypesCatalog) {
  auto& f = fixture();
  auto response = f.ok(R"({"op":"eventtypes"})");
  EXPECT_EQ(response["result"].as_array().size(), titanlog::kEventTypeCount);
}

TEST(ServerTest, SynopsisWindow) {
  auto& f = fixture();
  auto response = f.ok(
      R"({"op":"synopsis","window":{"begin":1489449600,"end":1489456800}})");
  const auto& rows = response["result"].as_array();
  ASSERT_FALSE(rows.empty());
  std::int64_t total = 0;
  for (const auto& row : rows) total += row["count"].as_int();
  std::int64_t expected = 0;
  for (const auto& e : f.logs.events) expected += e.count;
  EXPECT_EQ(total, expected);
}

TEST(ServerTest, EventsTabularMap) {
  auto& f = fixture();
  auto response =
      f.ok(R"({"op":"events","limit":25,)" + ctx_json() + "}");
  const auto& rows = response["result"].as_array();
  EXPECT_EQ(rows.size(), 25u);
  // Newest first.
  EXPECT_GE(rows.front()["ts"].as_int(), rows.back()["ts"].as_int());
  f.err(R"({"op":"events","limit":0,)" + ctx_json() + "}");
  f.err(R"({"op":"events"})");  // missing context
}

TEST(ServerTest, JobsQuery) {
  auto& f = fixture();
  auto response = f.ok(R"({"op":"jobs",)" + ctx_json() + "}");
  EXPECT_EQ(response["result"].as_array().size(), f.logs.jobs.size());
}

// ------------------------------------------------------------- complex ops

TEST(ServerTest, HeatmapFindsHotCabinet) {
  auto& f = fixture();
  auto response = f.ok(R"({"op":"heatmap",)" + ctx_json(R"(,"types":["MCE"])") + "}");
  EXPECT_EQ(response["path"].as_string(), "complex");
  const Json& result = response["result"];
  EXPECT_GT(result["total"].as_int(), 0);
  const auto& cabinets = result["cabinets"].as_array();
  ASSERT_EQ(cabinets.size(), 200u);
  // Hot cabinet c1-7 (row 7, col 1): index 7*8+1 = 57.
  std::int64_t best = -1;
  std::size_t best_idx = 0;
  for (std::size_t i = 0; i < cabinets.size(); ++i) {
    if (cabinets[i].as_int() > best) {
      best = cabinets[i].as_int();
      best_idx = i;
    }
  }
  EXPECT_EQ(best_idx, 57u);
  EXPECT_FALSE(result["anomalous_nodes"].as_array().empty());
}

TEST(ServerTest, DistributionByType) {
  auto& f = fixture();
  auto response =
      f.ok(R"({"op":"distribution","group_by":"type",)" + ctx_json() + "}");
  const auto& rows = response["result"].as_array();
  ASSERT_FALSE(rows.empty());
  std::int64_t total = 0;
  for (const auto& row : rows) total += row["count"].as_int();
  std::int64_t expected = 0;
  for (const auto& e : f.logs.events) expected += e.count;
  EXPECT_EQ(total, expected);
  f.err(R"({"op":"distribution","group_by":"bogus",)" + ctx_json() + "}");
}

TEST(ServerTest, TimeseriesAndHourly) {
  auto& f = fixture();
  auto ts = f.ok(R"({"op":"timeseries","type":"MCE","bin_seconds":600,)" +
                 ctx_json() + "}");
  EXPECT_EQ(ts["result"]["series"].as_array().size(), 12u);  // 2h / 10min
  auto hourly = f.ok(R"({"op":"hourly",)" + ctx_json() + "}");
  EXPECT_EQ(hourly["result"].as_array().size(), 2u);
}

TEST(ServerTest, WordCountSurfacesStormOst) {
  auto& f = fixture();
  auto response = f.ok(
      R"({"op":"word_count","top_k":5,)" +
      ctx_json(R"(,"types":["LustreError"])") + "}");
  const auto& rows = response["result"].as_array();
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows[0]["term"].as_string(), "ost0017");
}

TEST(ServerTest, StormSignature) {
  auto& f = fixture();
  auto response = f.ok(
      R"({"op":"storm_signature","bucket_seconds":60,"top_k":5,)" +
      ctx_json(R"(,"types":["LustreError"])") + "}");
  const auto& rows = response["result"].as_array();
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows[0]["term"].as_string(), "ost0017");
}

TEST(ServerTest, TransferEntropyOp) {
  auto& f = fixture();
  auto response = f.ok(
      R"({"op":"transfer_entropy","type_a":"HWERR","type_b":"LustreError",)"
      R"("bin_seconds":60,"max_shift":4,)" + ctx_json() + "}");
  const Json& result = response["result"];
  EXPECT_TRUE(result["te_xy"].is_number());
  EXPECT_TRUE(result["te_yx"].is_number());
  EXPECT_EQ(result["profile_xy"].as_array().size(), 5u);
  f.err(R"({"op":"transfer_entropy","type_a":"Nope","type_b":"MCE",)" +
        ctx_json() + "}");
}

TEST(ServerTest, CrossCorrelationOp) {
  auto& f = fixture();
  auto response = f.ok(
      R"({"op":"cross_correlation","type_a":"MCE","type_b":"MemEcc",)"
      R"("bin_seconds":300,"max_lag":5,)" + ctx_json() + "}");
  EXPECT_EQ(response["result"]["correlation"].as_array().size(), 11u);
  EXPECT_TRUE(response["result"]["peak_lag"].is_int());
}

TEST(ServerTest, AppsRunningAndPlacement) {
  auto& f = fixture();
  auto running = f.ok(R"({"op":"apps_running","t":1489453200})");
  std::size_t expected = 0;
  for (const auto& j : f.logs.jobs) {
    if (j.start <= 1489453200 && 1489453200 < j.end) ++expected;
  }
  EXPECT_EQ(running["result"].as_array().size(), expected);

  auto placement = f.ok(R"({"op":"render_placement","t":1489453200})");
  EXPECT_EQ(placement["result"]["jobs"].as_int(),
            static_cast<std::int64_t>(expected));
  EXPECT_NE(placement["result"]["map"].as_string().find("r00 |"),
            std::string::npos);
}

TEST(ServerTest, ReliabilityAndImpact) {
  auto& f = fixture();
  auto rel = f.ok(R"({"op":"reliability",)" + ctx_json() + "}");
  EXPECT_GT(rel["result"]["events_per_node_hour"].as_double(), 0.0);
  auto impact = f.ok(R"({"op":"app_impact",)" + ctx_json() + "}");
  EXPECT_EQ(impact["result"]["jobs"].as_int(),
            static_cast<std::int64_t>(f.logs.jobs.size()));
}

TEST(ServerTest, RenderHeatmapWithPpm) {
  auto& f = fixture();
  const std::string ppm = "/tmp/hpcla_test_heatmap.ppm";
  auto response = f.ok(R"({"op":"render_heatmap","cabinet":57,"ppm_path":")" +
                       ppm + R"(",)" + ctx_json(R"(,"types":["MCE"])") + "}");
  const std::string& map = response["result"]["map"].as_string();
  EXPECT_NE(map.find("r24 |"), std::string::npos);
  EXPECT_NE(response["result"]["cabinet_detail"].as_string().find("c2n3"),
            std::string::npos);
  // PPM was written with the right header.
  std::ifstream in(ppm, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P6");
}

TEST(ServerTest, CqlOpRoundTrip) {
  auto& f = fixture();
  auto response = f.ok(
      R"({"op":"cql","query":"SELECT COUNT(*) FROM event_by_time )"
      R"(WHERE hour = 413736 AND type = 'MCE'"})");
  EXPECT_EQ(response["path"].as_string(), "simple");
  EXPECT_GT(response["result"]["count"].as_int(), 0);
  auto rows = f.ok(
      R"({"op":"cql","query":"SELECT node FROM event_by_time )"
      R"(WHERE hour = 413736 AND type = 'MCE' LIMIT 3"})");
  EXPECT_EQ(rows["result"]["rows"].as_array().size(), 3u);
  f.err(R"({"op":"cql","query":"DROP TABLE event_by_time"})");
  f.err(R"({"op":"cql"})");
}

TEST(ServerTest, CompositeEventsOp) {
  auto& f = fixture();
  // Default rule book runs clean.
  auto defaults = f.ok(R"({"op":"composite_events",)" + ctx_json() + "}");
  EXPECT_TRUE(defaults["result"].is_array());
  // Inline rule definition.
  auto inline_rule = f.ok(
      R"({"op":"composite_events","rules":[
            {"name":"ecc_then_mce","scope":"node",
             "steps":[{"type":"MemEcc"},
                      {"type":"MCE","max_gap_seconds":3600}]}],)" +
      ctx_json() + "}");
  EXPECT_TRUE(inline_rule["result"].is_array());
  // Validation errors.
  f.err(R"({"op":"composite_events","rules":[{"name":"x","steps":[]}],)" +
        ctx_json() + "}");
  f.err(R"({"op":"composite_events","rules":[
             {"name":"x","steps":[{"type":"Bogus"},{"type":"MCE"}]}],)" +
        ctx_json() + "}");
}

TEST(ServerTest, AssociationRulesOp) {
  auto& f = fixture();
  auto response = f.ok(
      R"({"op":"association_rules","bucket_seconds":600,
          "min_support":0.0,"min_confidence":0.0,)" + ctx_json() + "}");
  EXPECT_TRUE(response["result"].is_array());
  for (const auto& row : response["result"].as_array()) {
    EXPECT_TRUE(row["lift"].is_number());
    EXPECT_GT(row["pair_count"].as_int(), 0);
  }
  f.err(R"({"op":"association_rules","bucket_seconds":0,)" + ctx_json() + "}");
}

TEST(ServerTest, AppProfilesOp) {
  auto& f = fixture();
  auto response = f.ok(R"({"op":"app_profiles",)" + ctx_json() + "}");
  const auto& rows = response["result"].as_array();
  ASSERT_FALSE(rows.empty());
  for (const auto& row : rows) {
    EXPECT_TRUE(row["app"].is_string());
    EXPECT_GT(row["runs"].as_int(), 0);
    EXPECT_TRUE(row["events_per_node_hour"].is_number());
  }
}

TEST(ServerTest, PredictFailuresOp) {
  auto& f = fixture();
  auto response = f.ok(
      R"({"op":"predict_failures","threshold":3,"window_seconds":1800,
          "precursors":["MemEcc"],"targets":["KernelPanic"],)" +
      ctx_json() + "}");
  const Json& result = response["result"];
  EXPECT_TRUE(result["precision"].is_number());
  EXPECT_TRUE(result["recall"].is_number());
  EXPECT_GE(result["failures"].as_int(), 0);
  f.err(R"({"op":"predict_failures","threshold":0,)" + ctx_json() + "}");
  f.err(R"({"op":"predict_failures","precursors":["Nope"],)" + ctx_json() +
        "}");
}

// ------------------------------------------------------------------ errors

TEST(ServerTest, ErrorEnvelopes) {
  auto& f = fixture();
  auto no_op = f.err(R"({"hello":1})");
  EXPECT_NE(no_op["error"].as_string().find("op"), std::string::npos);
  f.err(R"({"op":"launch_missiles"})");
  auto before = f.server.metrics().errors;
  (void)f.server.handle_text("this is not json");
  EXPECT_EQ(f.server.metrics().errors, before + 1);
}

TEST(ServerTest, HandleTextRoundTrip) {
  auto& f = fixture();
  auto text = f.server.handle_text(R"({"op":"eventtypes"})");
  auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value()["status"].as_string(), "ok");
}

TEST(ServerTest, MetricsSplitByPath) {
  auto& f = fixture();
  const auto before = f.server.metrics();
  f.ok(R"({"op":"eventtypes"})");
  f.ok(R"({"op":"hourly",)" + ctx_json() + "}");
  const auto after = f.server.metrics();
  EXPECT_EQ(after.simple_queries, before.simple_queries + 1);
  EXPECT_EQ(after.complex_queries, before.complex_queries + 1);
}

TEST(ServerTest, MetricsOpExposesCoordinatorCounters) {
  auto& f = fixture();
  EXPECT_EQ(classify_query("metrics").value(), QueryPath::kSimple);
  f.ok(R"({"op":"eventtypes"})");  // ensure at least one counted query
  auto response = f.ok(R"({"op":"metrics"})");
  const Json& result = response["result"];
  // The fixture's setup ingested data, so write counters are non-zero.
  EXPECT_GT(result["cluster"]["writes_ok"].as_int(), 0);
  EXPECT_GE(result["server"]["simple_queries"].as_int(), 1);
  // Resilience counters exist (zero in a fault-free suite run).
  EXPECT_TRUE(result["cluster"]["speculative_reads"].is_int());
  EXPECT_TRUE(result["cluster"]["replica_timeouts"].is_int());
  EXPECT_TRUE(result["cluster"]["digest_mismatches"].is_int());
  EXPECT_TRUE(result["cluster"]["hints_expired"].is_int());
  EXPECT_TRUE(result["cluster"]["hints_overflowed"].is_int());
  // Rendered scoreboard is human-readable text with both sections.
  const std::string rendered = result["rendered"].as_string();
  EXPECT_NE(rendered.find("coordinator"), std::string::npos);
  EXPECT_NE(rendered.find("hinted handoff"), std::string::npos);
  EXPECT_NE(rendered.find("writes_ok"), std::string::npos);
}

// ------------------------------------------------------- topology + repair

// Admin ops run against a dedicated cluster: mutating the shared fixture's
// ring would reshuffle replica placement under every later test.
struct AdminFixture {
  Cluster cluster;
  sparklite::Engine engine;
  AnalyticsServer server;

  AdminFixture()
      : cluster([] {
          ClusterOptions o;
          o.node_count = 4;
          o.replication_factor = 2;
          return o;
        }()),
        engine(sparklite::EngineOptions{.workers = 2}),
        server(cluster, engine) {}

  Json ok(const std::string& request_text) {
    auto request = Json::parse(request_text);
    HPCLA_CHECK(request.is_ok());
    Json response = server.handle(request.value());
    EXPECT_EQ(response["status"].as_string(), "ok")
        << (response["error"].is_string() ? response["error"].as_string()
                                          : std::string());
    return response;
  }

  Json err(const std::string& request_text) {
    auto request = Json::parse(request_text);
    HPCLA_CHECK(request.is_ok());
    Json response = server.handle(request.value());
    EXPECT_EQ(response["status"].as_string(), "error");
    return response;
  }
};

TEST(ServerTest, TopologyOpViewsAndMutatesTheRing) {
  EXPECT_EQ(classify_query("topology").value(), QueryPath::kSimple);
  AdminFixture f;

  auto view = f.ok(R"({"op":"topology"})");
  EXPECT_EQ(view["result"]["members"].as_int(), 4);
  EXPECT_EQ(view["result"]["node_slots"].as_int(), 4);
  EXPECT_EQ(view["result"]["replication_factor"].as_int(), 2);
  EXPECT_FALSE(view["result"]["movement_in_progress"].as_bool());
  const std::int64_t epoch0 = view["result"]["epoch"].as_int();

  auto added = f.ok(R"({"op":"topology","action":"add_node"})");
  EXPECT_EQ(added["result"]["members"].as_int(), 5);
  EXPECT_GT(added["result"]["epoch"].as_int(), epoch0);
  const auto& ring = added["result"]["ring"].as_array();
  ASSERT_EQ(ring.size(), 5u);
  EXPECT_TRUE(ring[0]["alive"].as_bool());
  EXPECT_GT(ring[4]["vnodes"].as_int(), 0);

  auto rebalanced =
      f.ok(R"({"op":"topology","action":"rebalance","token_seed":77})");
  EXPECT_EQ(rebalanced["result"]["members"].as_int(), 5);
  EXPECT_GT(rebalanced["result"]["epoch"].as_int(),
            added["result"]["epoch"].as_int());

  auto removed = f.ok(R"({"op":"topology","action":"remove_node","node":1})");
  EXPECT_EQ(removed["result"]["members"].as_int(), 4);

  // Error envelopes: unknown verb, missing required seed, bad node.
  f.err(R"({"op":"topology","action":"explode"})");
  f.err(R"({"op":"topology","action":"rebalance"})");
  f.err(R"({"op":"topology","action":"remove_node","node":-1})");
}

TEST(ServerTest, RepairOpReportsConvergence) {
  EXPECT_EQ(classify_query("repair").value(), QueryPath::kSimple);
  AdminFixture f;

  for (int k = 0; k < 12; ++k) {
    cassalite::Row r;
    r.key = cassalite::ClusteringKey::of({cassalite::Value(k)});
    r.set("v", cassalite::Value("x" + std::to_string(k)));
    HPCLA_CHECK(f.cluster
                    .insert("t", "pk" + std::to_string(k), r,
                            cassalite::Consistency::kAll)
                    .is_ok());
  }

  // A healthy cluster repairs to "nothing to do".
  auto all = f.ok(R"({"op":"repair"})");
  EXPECT_GE(all["result"]["tables"].as_int(), 1);
  EXPECT_GT(all["result"]["ranges_checked"].as_int(), 0);
  EXPECT_EQ(all["result"]["ranges_diverged"].as_int(), 0);
  EXPECT_EQ(all["result"]["rows_streamed"].as_int(), 0);

  auto one = f.ok(R"({"op":"repair","table":"t"})");
  EXPECT_EQ(one["result"]["tables"].as_int(), 1);

  // Unknown table surfaces as an error envelope, not a silent no-op.
  f.err(R"({"op":"repair","table":"no_such_table"})");
}

// --------------------------------------------------------------- telemetry

TEST(ServerTest, MetricsOpExposesRegistryAndPrometheus) {
  auto& f = fixture();
  // At least one query on each path so the latency histograms are fed.
  f.ok(R"({"op":"eventtypes"})");
  f.ok(R"({"op":"hourly",)" + ctx_json() + "}");
  auto response = f.ok(R"({"op":"metrics"})");
  const Json& reg = response["result"]["registry"];
  // Stable names across the stack, aggregated from live collectors.
  EXPECT_GT(reg["counters"]["cassalite.write.ok"].as_int(), 0);
  EXPECT_TRUE(reg["counters"]["cassalite.read.retries"].is_int());
  EXPECT_TRUE(reg["counters"]["cassalite.replica.timeouts"].is_int());
  EXPECT_GT(reg["counters"]["cassalite.storage.writes"].as_int(), 0);
  EXPECT_GT(reg["counters"]["sparklite.stages"].as_int(), 0);
  EXPECT_GT(reg["counters"]["sparklite.tasks"].as_int(), 0);
  EXPECT_GE(reg["counters"]["server.queries.simple"].as_int(), 1);
  EXPECT_GE(reg["counters"]["server.queries.complex"].as_int(), 1);
  // Histograms expose count + percentile fields.
  const Json& hist = reg["histograms"]["server.query.complex.us"];
  EXPECT_GT(hist["count"].as_int(), 0);
  EXPECT_GT(hist["p50_us"].as_double(), 0.0);
  EXPECT_GE(hist["p99_us"].as_double(), hist["p50_us"].as_double());
  EXPECT_GE(hist["max_us"].as_int(), hist["min_us"].as_int());
  // Prometheus text exposition covers the same instruments.
  const std::string prom = response["result"]["prometheus"].as_string();
  EXPECT_NE(prom.find("cassalite_write_ok"), std::string::npos);
  // Native cumulative histogram series (no synthetic quantile rows).
  EXPECT_NE(prom.find("# TYPE server_query_complex_us histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("server_query_complex_us_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("server_query_complex_us_sum"), std::string::npos);
  EXPECT_NE(prom.find("server_query_complex_us_count"), std::string::npos);
  EXPECT_EQ(prom.find("{quantile"), std::string::npos);
}

TEST(ServerTest, HeatmapQueryProducesCrossLayerTrace) {
  auto& f = fixture();
  telemetry::tracer().clear();
  auto response =
      f.ok(R"({"op":"heatmap",)" + ctx_json(R"(,"types":["MCE"])") + "}");
  ASSERT_TRUE(response["trace_id"].is_int());
  const std::int64_t tid = response["trace_id"].as_int();
  ASSERT_GT(tid, 0);

  auto trace =
      f.ok(R"({"op":"trace","trace_id":)" + std::to_string(tid) + "}");
  const auto& spans = trace["result"]["spans"].as_array();
  ASSERT_FALSE(spans.empty());

  // The trace must span all three layers, each with measured time.
  std::map<std::string, std::int64_t> layer_max;
  std::set<std::int64_t> ids;
  std::int64_t root_spans = 0;
  for (const auto& s : spans) {
    const std::string& name = s["name"].as_string();
    const std::string layer = name.substr(0, name.find('.'));
    layer_max[layer] =
        std::max(layer_max[layer], s["duration_us"].as_int());
    ids.insert(s["span_id"].as_int());
    if (s["parent_id"].as_int() == 0) ++root_spans;
  }
  EXPECT_GT(layer_max["server"], 0);
  EXPECT_GT(layer_max["sparklite"], 0);
  EXPECT_GT(layer_max["cassalite"], 0);
  // Spans form a single tree: one root, every parent link resolves.
  EXPECT_EQ(root_spans, 1);
  for (const auto& s : spans) {
    const std::int64_t parent = s["parent_id"].as_int();
    if (parent != 0) {
      EXPECT_EQ(ids.count(parent), 1u)
          << "dangling parent for " << s["name"].as_string();
    }
  }
  // Flame-style rendering names the root op.
  const std::string rendered = trace["result"]["rendered"].as_string();
  EXPECT_NE(rendered.find("server.heatmap"), std::string::npos);
  EXPECT_NE(rendered.find("sparklite.stage"), std::string::npos);

  // Unknown trace ids are honest errors.
  f.err(R"({"op":"trace","trace_id":9999999999})");
  f.err(R"({"op":"trace"})");
}

TEST(ServerTest, SlowlogOpSurfacesSlowSpans) {
  auto& f = fixture();
  auto& tr = telemetry::tracer();
  const std::int64_t saved = tr.slow_threshold_us();
  tr.clear();
  tr.set_slow_threshold_us(1);  // everything qualifies
  f.ok(R"({"op":"eventtypes"})");
  auto response = f.ok(R"({"op":"slowlog"})");
  tr.set_slow_threshold_us(saved);
  EXPECT_EQ(response["result"]["threshold_us"].as_int(), 1);
  const auto& spans = response["result"]["spans"].as_array();
  ASSERT_FALSE(spans.empty());
  // Slowest first, and every entry carries its trace id.
  std::int64_t prev = spans.front()["duration_us"].as_int();
  bool found_root = false;
  for (const auto& s : spans) {
    EXPECT_LE(s["duration_us"].as_int(), prev);
    prev = s["duration_us"].as_int();
    EXPECT_GT(s["trace_id"].as_int(), 0);
    if (s["name"].as_string() == "server.eventtypes") found_root = true;
  }
  EXPECT_TRUE(found_root);
  tr.clear();
}

// -------------------------------------------------- trace renderer hardening

telemetry::SpanRecord span_rec(std::uint64_t span_id, std::uint64_t parent_id,
                               const std::string& name, std::int64_t start_us,
                               std::int64_t duration_us) {
  telemetry::SpanRecord s;
  s.trace_id = 1;
  s.span_id = span_id;
  s.parent_id = parent_id;
  s.name = name;
  s.start_us = start_us;
  s.duration_us = duration_us;
  return s;
}

TEST(RenderTraceTest, OrphanedChildrenRenderAsRoots) {
  // Parent 99 was evicted/capped out of the sink: its children must still
  // render (as extra roots), not vanish.
  const std::vector<telemetry::SpanRecord> spans = {
      span_rec(1, 0, "root.op", 0, 100),
      span_rec(2, 99, "orphan.a", 10, 50),
      span_rec(3, 99, "orphan.b", 20, 30),
  };
  const std::string out = render_trace(spans);
  EXPECT_NE(out.find("root.op"), std::string::npos);
  EXPECT_NE(out.find("orphan.a"), std::string::npos);
  EXPECT_NE(out.find("orphan.b"), std::string::npos);
  // Orphans are top-level rows: no leading indent before their names.
  EXPECT_NE(out.find("\norphan.a"), std::string::npos);
}

TEST(RenderTraceTest, OutOfOrderCompletionNestsBySpanStart) {
  // Completion order (vector order) is children-first and scrambled; the
  // tree must still nest by parent links and order siblings by start.
  const std::vector<telemetry::SpanRecord> spans = {
      span_rec(3, 1, "child.late", 50, 20),
      span_rec(2, 1, "child.early", 10, 20),
      span_rec(1, 0, "root.op", 0, 100),
  };
  const std::string out = render_trace(spans);
  const auto root_pos = out.find("root.op");
  const auto early_pos = out.find("  child.early");
  const auto late_pos = out.find("  child.late");
  ASSERT_NE(root_pos, std::string::npos);
  ASSERT_NE(early_pos, std::string::npos);
  ASSERT_NE(late_pos, std::string::npos);
  EXPECT_LT(root_pos, early_pos);
  EXPECT_LT(early_pos, late_pos);
}

TEST(RenderTraceTest, NestingBeyondDepthLimitIsElided) {
  // A 40-deep parent chain: rows past depth 32 are replaced by one
  // elision marker per branch instead of unbounded indentation.
  std::vector<telemetry::SpanRecord> spans;
  for (std::uint64_t i = 1; i <= 40; ++i) {
    spans.push_back(span_rec(i, i - 1, "s" + std::to_string(i),
                             static_cast<std::int64_t>(i), 10));
  }
  const std::string out = render_trace(spans);
  EXPECT_NE(out.find("s33"), std::string::npos);  // depth 32: last rendered
  EXPECT_EQ(out.find("s34"), std::string::npos);  // depth 33: elided
  EXPECT_NE(out.find("... (deeper spans elided)"), std::string::npos);
}

TEST(RenderTraceTest, CyclicParentChainTerminates) {
  // Corrupted records: 10 <-> 11 reference each other, reachable from no
  // root. The renderer must terminate and still show both spans.
  const std::vector<telemetry::SpanRecord> spans = {
      span_rec(1, 0, "root.op", 0, 100),
      span_rec(10, 11, "cycle.a", 10, 20),
      span_rec(11, 10, "cycle.b", 15, 10),
  };
  const std::string out = render_trace(spans);
  EXPECT_NE(out.find("root.op"), std::string::npos);
  EXPECT_NE(out.find("cycle.a"), std::string::npos);
  EXPECT_NE(out.find("cycle.b"), std::string::npos);
}

TEST(RenderTraceTest, EmptyTraceRendersPlaceholder) {
  EXPECT_EQ(render_trace({}), "(empty trace)\n");
}

TEST(ServerTest, TraceOpAfterEvictionIsNotFound) {
  auto& f = fixture();
  telemetry::tracer().clear();
  auto response = f.ok(R"({"op":"heatmap",)" + ctx_json() + "}");
  ASSERT_TRUE(response["trace_id"].is_int());
  const std::int64_t tid = response["trace_id"].as_int();
  // The trace evaporates between the response and the trace lookup
  // (eviction under sink pressure); the op answers honestly.
  telemetry::tracer().clear();
  f.err(R"({"op":"trace","trace_id":)" + std::to_string(tid) + "}");
}

// ------------------------------------------------------ self-telemetry ops

TEST(ServerTest, AlertsAndSelfqueryRequireAttachedLoop) {
  auto& f = fixture();
  // The fixture server has no SelfTelemetryLoop attached.
  auto alerts = f.err(R"({"op":"alerts"})");
  EXPECT_NE(alerts["error"].as_string().find("not attached"),
            std::string::npos);
  f.err(R"({"op":"selfquery","what":"ops","begin":0,"end":10})");
}

TEST(ServerTest, SelfqueryValidatesItsArguments) {
  auto& f = fixture();
  buslite::Broker broker;
  model::selftel::SelfTelemetryLoop loop(f.cluster, broker);
  f.server.set_self_telemetry(&loop);
  // Both ops classify as simple-path queries.
  EXPECT_EQ(classify_query("alerts").value(), QueryPath::kSimple);
  EXPECT_EQ(classify_query("selfquery").value(), QueryPath::kSimple);

  f.err(R"({"op":"selfquery","what":"ops"})");  // begin/end required
  f.err(R"({"op":"selfquery","what":"ops","begin":100,"end":50})");
  f.err(R"({"op":"selfquery","what":"nonsense","begin":0,"end":10})");
  // > 1024 hours of partition keys is refused, not fanned out.
  f.err(R"({"op":"selfquery","what":"ops","begin":0,"end":40000000})");
  // latency_p99 needs a metric, and an unpopulated window is not_found.
  f.err(R"({"op":"selfquery","what":"latency_p99","begin":0,"end":10})");
  f.err(
      R"({"op":"selfquery","what":"latency_p99","metric":"no.such.metric","begin":0,"end":10})");
  // slow_spans needs a spanop; an empty window returns an empty list.
  f.err(R"({"op":"selfquery","what":"slow_spans","begin":0,"end":10})");
  auto empty = f.ok(
      R"({"op":"selfquery","what":"slow_spans","spanop":"nothing","begin":0,"end":10})");
  EXPECT_TRUE(empty["result"]["spans"].as_array().empty());
  // An attached loop makes the alerts op answer.
  auto alerts = f.ok(R"({"op":"alerts"})");
  EXPECT_TRUE(alerts["result"]["fired"].is_int());
  f.server.set_self_telemetry(nullptr);
}

// ----------------------------------------------------------- async session

TEST(AsyncSessionTest, SubmitPollWait) {
  auto& f = fixture();
  AsyncSession session(f.server);
  auto heavy = Json::parse(R"({"op":"hourly",)" + ctx_json() + "}");
  ASSERT_TRUE(heavy.is_ok());
  const auto t1 = session.submit(heavy.value());
  const auto t2 = session.submit(Json::parse(R"({"op":"eventtypes"})").value());
  auto r1 = session.wait(t1);
  ASSERT_TRUE(r1.is_ok());
  EXPECT_EQ(r1.value()["status"].as_string(), "ok");
  auto r2 = session.wait(t2);
  ASSERT_TRUE(r2.is_ok());
  // Delivered tickets are forgotten.
  EXPECT_EQ(session.poll(t1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(session.poll(999).status().code(), StatusCode::kNotFound);
}

TEST(AsyncSessionTest, PollEventuallyReady) {
  auto& f = fixture();
  AsyncSession session(f.server);
  const auto ticket =
      session.submit(Json::parse(R"({"op":"eventtypes"})").value());
  // Poll until ready (bounded), yielding so the worker can run.
  Result<Json> r = unavailable("pending");
  for (int i = 0; i < 10000 && !r.is_ok(); ++i) {
    r = session.poll(ticket);
    if (!r.is_ok()) {
      ASSERT_EQ(r.status().code(), StatusCode::kUnavailable);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value()["status"].as_string(), "ok");
}

// -------------------------------------------------------------- renderers

TEST(RenderTest, PpmPixelsEncodeHeat) {
  // One maximally hot node (nid 0 -> pixel (0,0)) on a cold machine.
  analytics::HeatMap hm;
  hm.node_counts.assign(static_cast<std::size_t>(topo::TitanGeometry::kTotalNodes), 0);
  hm.node_counts[0] = 100;
  hm.total = 100;
  hm.peak = 100;
  hm.peak_node = 0;
  const std::string path = "/tmp/hpcla_pixel_test.ppm";
  ASSERT_TRUE(write_heatmap_ppm(hm, path).is_ok());

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  int w = 0;
  int h = 0;
  int maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 71);   // 8 cabinets * 8 slots + 7 gutters
  EXPECT_EQ(h, 324);  // 25 rows * 12 node-rows + 24 gutters
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after the header
  std::vector<unsigned char> pixels(static_cast<std::size_t>(w * h * 3));
  in.read(reinterpret_cast<char*>(pixels.data()),
          static_cast<std::streamsize>(pixels.size()));
  ASSERT_TRUE(in.good());
  // Hot node at (0,0): full white-hot ramp (r=g=b=255).
  EXPECT_EQ(pixels[0], 255);
  EXPECT_EQ(pixels[1], 255);
  EXPECT_EQ(pixels[2], 255);
  // A neighboring cold node pixel (x=1, y=0 -> slot 1): dark base.
  EXPECT_EQ(pixels[3], 40);
  EXPECT_EQ(pixels[4], 40);
  // A gutter pixel (x=8, y=0) keeps the background color (20).
  EXPECT_EQ(pixels[8 * 3], 20);
}

TEST(RenderTest, TemporalMap) {
  std::vector<double> series{0, 1, 5, 2, 0};
  auto art = render_temporal_map(series, kT0, 60);
  EXPECT_NE(art.find("bin=60s"), std::string::npos);
  EXPECT_NE(art.find("2017-03-14"), std::string::npos);
  EXPECT_NE(art.find("peak_bin_count=5"), std::string::npos);
}

TEST(RenderTest, WordBubbles) {
  std::vector<analytics::TermCount> terms{{"ost0042", 100}, {"mds", 10}};
  auto art = render_word_bubbles(terms);
  EXPECT_NE(art.find("ost0042"), std::string::npos);
  // Dominant term gets the longest bubble.
  EXPECT_NE(art.find(std::string(40, 'o')), std::string::npos);
}

TEST(RenderTest, PlacementMapLegend) {
  titanlog::JobRecord big;
  big.apid = 1;
  big.app_name = "HACC";
  big.user = "usr9";
  big.start = 0;
  big.end = 100;
  for (topo::NodeId n = 0; n < 192; ++n) big.nodes.push_back(n);  // 2 cabinets
  titanlog::JobRecord small;
  small.apid = 2;
  small.app_name = "VASP";
  small.user = "usr3";
  small.start = 0;
  small.end = 100;
  small.nodes = {500};
  auto art = render_placement_map({small, big});
  // Big job is 'A' (sorted by size), occupies cabinets 0 and 1.
  EXPECT_NE(art.find("A: apid=1"), std::string::npos);
  EXPECT_NE(art.find("B: apid=2"), std::string::npos);
  EXPECT_NE(art.find("r00 | A  A"), std::string::npos);
}

}  // namespace
}  // namespace hpcla::server
