// Tests for the CART decision tree and the job-failure classifier adapter.
#include "analytics/dtree.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "model/ingest.hpp"
#include "titanlog/generator.hpp"

namespace hpcla::analytics {
namespace {

constexpr UnixSeconds kT0 = 1489449600;

Sample sample(std::initializer_list<double> f, bool label) {
  return Sample{std::vector<double>(f), label};
}

TEST(DTreeTest, LearnsSingleThreshold) {
  // label = (x >= 5)
  std::vector<Sample> data;
  for (int x = 0; x < 100; ++x) {
    data.push_back(sample({static_cast<double>(x)}, x >= 50));
  }
  DTreeConfig cfg;
  cfg.min_samples_leaf = 2;
  auto tree = DecisionTree::train(data, {"x"}, cfg);
  EXPECT_EQ(tree.depth(), 1);
  EXPECT_EQ(tree.leaf_count(), 2u);
  EXPECT_FALSE(tree.predict({10.0}));
  EXPECT_TRUE(tree.predict({90.0}));
  auto eval = tree.evaluate(data);
  EXPECT_DOUBLE_EQ(eval.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(eval.precision(), 1.0);
  EXPECT_DOUBLE_EQ(eval.recall(), 1.0);
}

TEST(DTreeTest, LearnsAxisAlignedQuadrant) {
  // label = (x > 0.5 && y > 0.5): needs depth 2.
  Rng rng(3);
  std::vector<Sample> data;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform();
    const double y = rng.uniform();
    data.push_back(sample({x, y}, x > 0.5 && y > 0.5));
  }
  DTreeConfig cfg;
  cfg.max_depth = 3;
  cfg.min_samples_leaf = 4;
  auto tree = DecisionTree::train(data, {"x", "y"}, cfg);
  auto eval = tree.evaluate(data);
  EXPECT_GT(eval.accuracy(), 0.97);
  EXPECT_TRUE(tree.predict({0.9, 0.9}));
  EXPECT_FALSE(tree.predict({0.9, 0.1}));
  EXPECT_FALSE(tree.predict({0.1, 0.9}));
}

TEST(DTreeTest, RespectsDepthLimit) {
  Rng rng(7);
  std::vector<Sample> data;
  for (int i = 0; i < 500; ++i) {
    // Noisy labels force the tree to keep splitting if allowed.
    data.push_back(sample({rng.uniform(), rng.uniform(), rng.uniform()},
                          rng.chance(0.5)));
  }
  DTreeConfig cfg;
  cfg.max_depth = 2;
  cfg.min_samples_leaf = 2;
  auto tree = DecisionTree::train(data, {"a", "b", "c"}, cfg);
  EXPECT_LE(tree.depth(), 2);
  EXPECT_LE(tree.leaf_count(), 4u);
}

TEST(DTreeTest, PureNodeBecomesLeaf) {
  std::vector<Sample> data(50, sample({1.0}, true));
  auto tree = DecisionTree::train(data, {"x"});
  EXPECT_EQ(tree.depth(), 0);
  EXPECT_DOUBLE_EQ(tree.predict_prob({1.0}), 1.0);
}

TEST(DTreeTest, ConstantFeatureCannotSplit) {
  std::vector<Sample> data;
  for (int i = 0; i < 40; ++i) data.push_back(sample({7.0}, i % 2 == 0));
  auto tree = DecisionTree::train(data, {"x"});
  EXPECT_EQ(tree.depth(), 0);
  EXPECT_NEAR(tree.predict_prob({7.0}), 0.5, 1e-9);
}

TEST(DTreeTest, RenderShowsFeatureNames) {
  std::vector<Sample> data;
  for (int x = 0; x < 100; ++x) {
    data.push_back(sample({static_cast<double>(x)}, x >= 50));
  }
  DTreeConfig cfg;
  cfg.min_samples_leaf = 2;
  auto tree = DecisionTree::train(data, {"fatal_events"}, cfg);
  const std::string art = tree.render();
  EXPECT_NE(art.find("if fatal_events <"), std::string::npos);
  EXPECT_NE(art.find("leaf p(fail)="), std::string::npos);
}

TEST(DTreeTest, TrainValidationErrors) {
  EXPECT_ANY_THROW(DecisionTree::train({}, {"x"}));
  std::vector<Sample> bad{sample({1.0, 2.0}, true)};
  EXPECT_ANY_THROW(DecisionTree::train(bad, {"x"}));  // arity mismatch
  auto tree = DecisionTree::train({sample({1.0}, true)}, {"x"});
  EXPECT_ANY_THROW((void)tree.predict({1.0, 2.0}));
}

TEST(DTreeTest, JobFailureClassifierOnGeneratedDay) {
  // End-to-end §V scenario: failures driven by fatal events on a job's
  // nodes must be learnable from the event features.
  cassalite::ClusterOptions copts;
  copts.node_count = 4;
  cassalite::Cluster cluster(copts);
  sparklite::Engine engine(sparklite::EngineOptions{.workers = 4});
  HPCLA_CHECK(model::create_data_model(cluster).is_ok());

  titanlog::ScenarioConfig cfg;
  cfg.seed = 99;
  cfg.window = TimeRange{kT0, kT0 + 24 * 3600};
  cfg.background_scale = 1.0;
  cfg.jobs = titanlog::JobMixSpec{.users = 20, .apps = 8,
                                  .jobs_per_hour = 60, .max_size_log2 = 9,
                                  .base_failure_prob = 0.02};
  auto logs = titanlog::Generator(cfg).generate();
  model::BatchIngestor(cluster, engine).ingest_records(logs.events, logs.jobs);

  Context ctx;
  ctx.window = cfg.window;
  auto samples = job_failure_samples(engine, cluster, ctx);
  ASSERT_EQ(samples.size(), logs.jobs.size());
  std::size_t failures = 0;
  for (const auto& s : samples) failures += s.label ? 1 : 0;
  ASSERT_GT(failures, 20u);
  ASSERT_LT(failures, samples.size() / 2);

  // Split train/test deterministically.
  std::vector<Sample> train;
  std::vector<Sample> test;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    (i % 4 == 0 ? test : train).push_back(samples[i]);
  }
  DTreeConfig tcfg;
  tcfg.max_depth = 3;
  tcfg.min_samples_leaf = 10;
  auto tree = DecisionTree::train(train, job_failure_feature_names(), tcfg);
  auto eval = tree.evaluate(test);

  // Baseline: predict "never fails".
  std::size_t test_failures = 0;
  for (const auto& s : test) test_failures += s.label ? 1 : 0;
  const double baseline =
      1.0 - static_cast<double>(test_failures) / static_cast<double>(test.size());
  EXPECT_GT(eval.accuracy(), baseline);
  EXPECT_GT(eval.recall(), 0.5);  // catches most event-driven failures
  // The learned tree splits on the fatal-event feature somewhere.
  EXPECT_NE(tree.render().find("fatal_events_on_nodes"), std::string::npos);
}

}  // namespace
}  // namespace hpcla::analytics
