#include <gtest/gtest.h>

#include <set>

#include "topo/cname.hpp"
#include "topo/machine.hpp"

namespace hpcla::topo {
namespace {

using G = TitanGeometry;

TEST(GeometryTest, TitanShape) {
  EXPECT_EQ(G::kCabinets, 200);
  EXPECT_EQ(G::kNodesPerCabinet, 96);
  EXPECT_EQ(G::kTotalNodes, 19200);
}

TEST(CnameTest, NodeIdRoundTripExhaustive) {
  // Property: node_id and coord_of are exact inverses over the machine.
  for (NodeId id = 0; id < G::kTotalNodes; ++id) {
    EXPECT_EQ(node_id(coord_of(id)), id);
  }
}

TEST(CnameTest, NodeIdsAreDenseAndOrdered) {
  EXPECT_EQ(node_id(Coord{0, 0, 0, 0, 0}), 0);
  EXPECT_EQ(node_id(Coord{0, 0, 0, 0, 1}), 1);
  EXPECT_EQ(node_id(Coord{0, 0, 0, 1, 0}), 4);
  EXPECT_EQ(node_id(Coord{0, 0, 1, 0, 0}), 32);
  EXPECT_EQ(node_id(Coord{0, 1, 0, 0, 0}), 96);
  EXPECT_EQ(node_id(Coord{1, 0, 0, 0, 0}), 96 * 8);
  EXPECT_EQ(node_id(Coord{24, 7, 2, 7, 3}), G::kTotalNodes - 1);
}

TEST(CnameTest, FormatLevels) {
  EXPECT_EQ(format_cname(Coord{}), "system");
  EXPECT_EQ(format_cname(Coord{17, 3, -1, -1, -1}), "c3-17");
  EXPECT_EQ(format_cname(Coord{17, 3, 1, -1, -1}), "c3-17c1");
  EXPECT_EQ(format_cname(Coord{17, 3, 1, 5, -1}), "c3-17c1s5");
  EXPECT_EQ(format_cname(Coord{17, 3, 1, 5, 2}), "c3-17c1s5n2");
}

TEST(CnameTest, ParseLevels) {
  auto cab = parse_cname("c3-17");
  ASSERT_TRUE(cab.is_ok());
  EXPECT_EQ(cab->level(), LocationLevel::kCabinet);
  EXPECT_EQ(cab->col, 3);
  EXPECT_EQ(cab->row, 17);

  auto cage = parse_cname("c3-17c2");
  ASSERT_TRUE(cage.is_ok());
  EXPECT_EQ(cage->level(), LocationLevel::kCage);
  EXPECT_EQ(cage->cage, 2);

  auto blade = parse_cname("c3-17c2s7");
  ASSERT_TRUE(blade.is_ok());
  EXPECT_EQ(blade->level(), LocationLevel::kBlade);
  EXPECT_EQ(blade->slot, 7);

  auto node = parse_cname("c3-17c2s7n3");
  ASSERT_TRUE(node.is_ok());
  EXPECT_EQ(node->level(), LocationLevel::kNode);
  EXPECT_EQ(node->node, 3);
}

TEST(CnameTest, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_cname("").is_ok());
  EXPECT_FALSE(parse_cname("x3-17").is_ok());
  EXPECT_FALSE(parse_cname("c3").is_ok());
  EXPECT_FALSE(parse_cname("c3-").is_ok());
  EXPECT_FALSE(parse_cname("c8-17").is_ok());       // col 8 out of range
  EXPECT_FALSE(parse_cname("c3-25").is_ok());       // row 25 out of range
  EXPECT_FALSE(parse_cname("c3-17c3").is_ok());     // cage 3 out of range
  EXPECT_FALSE(parse_cname("c3-17c1s8").is_ok());   // slot 8 out of range
  EXPECT_FALSE(parse_cname("c3-17c1s5n4").is_ok()); // node 4 out of range
  EXPECT_FALSE(parse_cname("c3-17c1s5n2x").is_ok());// trailing garbage
  EXPECT_FALSE(parse_cname("c3-17s5").is_ok());     // slot without cage
}

class CnameRoundTripTest : public ::testing::TestWithParam<NodeId> {};

TEST_P(CnameRoundTripTest, FormatParseRoundTrip) {
  const NodeId id = GetParam();
  auto parsed = parse_cname(cname_of(id));
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(node_id(parsed.value()), id);
}

INSTANTIATE_TEST_SUITE_P(Sample, CnameRoundTripTest,
                         ::testing::Values(0, 1, 95, 96, 767, 768, 9599, 9600,
                                           19199));

TEST(CnameTest, ComponentIndices) {
  // First node of the second cabinet.
  EXPECT_EQ(cabinet_of(96), 1);
  EXPECT_EQ(blade_of(96), 24);
  EXPECT_EQ(gemini_of(96), 48);
  // Gemini pairing: (0,1) share, (2,3) share, never across.
  EXPECT_EQ(gemini_of(0), gemini_of(1));
  EXPECT_NE(gemini_of(1), gemini_of(2));
  EXPECT_EQ(gemini_of(2), gemini_of(3));
  EXPECT_EQ(gemini_peer(0), 1);
  EXPECT_EQ(gemini_peer(1), 0);
  EXPECT_EQ(gemini_peer(2), 3);
}

TEST(CnameTest, ContainsHierarchy) {
  const Coord node{17, 3, 1, 5, 2};
  EXPECT_TRUE(contains(Coord{}, node));                       // system
  EXPECT_TRUE(contains(Coord{17, 3, -1, -1, -1}, node));      // cabinet
  EXPECT_TRUE(contains(Coord{17, 3, 1, -1, -1}, node));       // cage
  EXPECT_TRUE(contains(Coord{17, 3, 1, 5, -1}, node));        // blade
  EXPECT_TRUE(contains(node, node));                          // itself
  EXPECT_FALSE(contains(Coord{17, 4, -1, -1, -1}, node));     // other cabinet
  EXPECT_FALSE(contains(Coord{17, 3, 2, -1, -1}, node));      // other cage
  EXPECT_FALSE(contains(Coord{17, 3, 1, 6, -1}, node));       // other blade
}

TEST(MachineTest, BuildsAllNodes) {
  const Machine& m = titan();
  EXPECT_EQ(m.node_count(), 19200);
  EXPECT_EQ(m.node(0).cname, "c0-0c0s0n0");
  EXPECT_EQ(m.node(19199).cname, "c7-24c2s7n3");
}

TEST(MachineTest, NodeInfoFields) {
  const NodeInfo& n = titan().node(5000);
  EXPECT_EQ(n.id, 5000);
  EXPECT_EQ(n.cabinet, cabinet_of(5000));
  EXPECT_EQ(n.blade, blade_of(5000));
  EXPECT_EQ(n.gemini, gemini_of(5000));
  EXPECT_EQ(n.cpu_cores, 16);
  EXPECT_EQ(n.cpu_memory_gb, 32);
  EXPECT_EQ(n.gpu_memory_gb, 6);
  EXPECT_NE(n.cpu_model.find("Opteron"), std::string::npos);
  EXPECT_NE(n.gpu_model.find("K20X"), std::string::npos);
}

TEST(MachineTest, NodeInfoJson) {
  Json j = titan().node(0).to_json();
  EXPECT_EQ(j["nid"].as_int(), 0);
  EXPECT_EQ(j["cname"].as_string(), "c0-0c0s0n0");
  EXPECT_EQ(j["torus"]["x"].as_int(), 0);
  EXPECT_EQ(j["gpu_memory_gb"].as_int(), 6);
}

TEST(MachineTest, NodesInCabinet) {
  auto ids = titan().nodes_in_cabinet(3);
  ASSERT_EQ(ids.size(), 96u);
  for (NodeId id : ids) EXPECT_EQ(cabinet_of(id), 3);
  EXPECT_EQ(ids.front(), 3 * 96);
}

TEST(MachineTest, NodesInHierarchy) {
  const Machine& m = titan();
  EXPECT_EQ(m.nodes_in(Coord{}).size(), 19200u);
  EXPECT_EQ(m.nodes_in(Coord{4, 2, -1, -1, -1}).size(), 96u);
  EXPECT_EQ(m.nodes_in(Coord{4, 2, 1, -1, -1}).size(), 32u);
  EXPECT_EQ(m.nodes_in(Coord{4, 2, 1, 3, -1}).size(), 4u);
  EXPECT_EQ(m.nodes_in(Coord{4, 2, 1, 3, 2}).size(), 1u);
}

TEST(MachineTest, NodesInCoverWholeMachineWithoutOverlap) {
  // Property: cabinets partition the machine.
  std::set<NodeId> seen;
  for (int cab = 0; cab < G::kCabinets; ++cab) {
    for (NodeId id : titan().nodes_in_cabinet(cab)) {
      EXPECT_TRUE(seen.insert(id).second) << "duplicate node " << id;
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(G::kTotalNodes));
}

TEST(MachineTest, NodesAtCname) {
  const Machine& m = titan();
  auto blade = m.nodes_at("c3-17c1s5");
  ASSERT_TRUE(blade.is_ok());
  EXPECT_EQ(blade->size(), 4u);
  auto all = m.nodes_at("system");
  ASSERT_TRUE(all.is_ok());
  EXPECT_EQ(all->size(), 19200u);
  EXPECT_FALSE(m.nodes_at("c99-0").is_ok());
}

TEST(MachineTest, TorusCoordsDistinctPerCabinetGeminis) {
  // Within a cabinet, the 48 Geminis get distinct Z coordinates.
  const Machine& m = titan();
  std::set<int> zs;
  for (NodeId id = 0; id < G::kNodesPerCabinet; id += 2) {
    zs.insert(m.node(id).torus.z);
  }
  EXPECT_EQ(zs.size(), 48u);
}

}  // namespace
}  // namespace hpcla::topo
