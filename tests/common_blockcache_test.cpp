// BlockCache unit tests: byte-budget enforcement with LRU eviction,
// MRU promotion on lookup, owner teardown, capacity shrink/disable
// semantics, oversized-block rejection, and a concurrent hammer that
// checks the resident-bytes accounting stays consistent.
#include "common/block_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace hpcla {
namespace {

std::shared_ptr<const void> block_of(int v) {
  return std::make_shared<int>(v);
}

int value_of(const std::shared_ptr<const void>& p) {
  return *static_cast<const int*>(p.get());
}

TEST(BlockCache, DisabledCacheAdmitsNothing) {
  BlockCache cache(0);
  cache.insert(1, 1, block_of(7), 100);
  EXPECT_EQ(cache.lookup(1, 1), nullptr);
  const auto s = cache.stats();
  EXPECT_EQ(s.inserts, 0u);
  EXPECT_EQ(s.resident_bytes, 0u);
}

TEST(BlockCache, LookupReturnsInsertedBlock) {
  BlockCache cache(1u << 20);
  cache.insert(1, 5, block_of(42), 128);
  auto hit = cache.lookup(1, 5);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(value_of(hit), 42);
  EXPECT_EQ(cache.lookup(1, 6), nullptr);
  EXPECT_EQ(cache.lookup(2, 5), nullptr);
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.resident_bytes, 128u);
}

TEST(BlockCache, EvictsLeastRecentlyUsedWithinBudget) {
  // One owner, blocks hash to various shards; use a big charge so each
  // shard holds at most a few entries and eviction is forced.
  BlockCache cache(16u * 1024);  // 1 KiB per shard
  // Fill one logical stream far past the budget.
  for (std::uint64_t b = 0; b < 64; ++b) {
    cache.insert(9, b, block_of(static_cast<int>(b)), 512);
  }
  const auto s = cache.stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.resident_bytes, 16u * 1024);
  // Whatever is resident must still be correct.
  for (std::uint64_t b = 0; b < 64; ++b) {
    auto hit = cache.lookup(9, b);
    if (hit != nullptr) EXPECT_EQ(value_of(hit), static_cast<int>(b));
  }
}

TEST(BlockCache, LookupPromotesToMru) {
  // Two entries that land in the same shard (same owner, probe block ids
  // until two share a shard budget): keep touching the first, insert a
  // third — the untouched one must go first. We approximate by using one
  // entry per shard-sized charge: with budget = 1 entry per shard, the
  // re-inserted key replaces in place rather than evicting the hot one.
  BlockCache cache(16u * 600);
  cache.insert(1, 0, block_of(0), 512);
  ASSERT_NE(cache.lookup(1, 0), nullptr);  // promote
  cache.insert(1, 0, block_of(1), 512);    // replace same key in place
  auto hit = cache.lookup(1, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(value_of(hit), 1);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(BlockCache, RejectsBlocksLargerThanShardBudget) {
  BlockCache cache(16u * 1024);
  cache.insert(3, 0, block_of(1), 4096);  // > 1 KiB shard budget
  EXPECT_EQ(cache.lookup(3, 0), nullptr);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
}

TEST(BlockCache, EraseOwnerDropsOnlyThatOwner) {
  BlockCache cache(1u << 20);
  for (std::uint64_t b = 0; b < 8; ++b) {
    cache.insert(1, b, block_of(1), 64);
    cache.insert(2, b, block_of(2), 64);
  }
  cache.erase_owner(1);
  for (std::uint64_t b = 0; b < 8; ++b) {
    EXPECT_EQ(cache.lookup(1, b), nullptr);
    ASSERT_NE(cache.lookup(2, b), nullptr);
  }
  EXPECT_EQ(cache.stats().entries, 8u);
  EXPECT_EQ(cache.stats().resident_bytes, 8u * 64);
}

TEST(BlockCache, ShrinkingCapacityEvictsAndZeroDisables) {
  BlockCache cache(1u << 20);
  for (std::uint64_t b = 0; b < 32; ++b) cache.insert(1, b, block_of(1), 256);
  EXPECT_EQ(cache.stats().entries, 32u);
  cache.set_capacity(16u * 256);  // shrink: evict down to the new budget
  EXPECT_LE(cache.stats().resident_bytes, 16u * 256);
  cache.set_capacity(0);  // disable: drop everything
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
  cache.insert(1, 0, block_of(1), 64);
  EXPECT_EQ(cache.lookup(1, 0), nullptr);
}

TEST(BlockCache, NewOwnerIdsAreUniqueAndNonZero) {
  const auto a = BlockCache::new_owner_id();
  const auto b = BlockCache::new_owner_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(BlockCache, ConcurrentMixedTrafficKeepsAccountingSane) {
  BlockCache cache(64u * 1024);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      const std::uint64_t owner = static_cast<std::uint64_t>(t % 2 + 1);
      for (int i = 0; i < 2000; ++i) {
        const std::uint64_t b = static_cast<std::uint64_t>(i % 64);
        if (i % 3 == 0) {
          cache.insert(owner, b, block_of(i), 256);
        } else if (i % 97 == 0) {
          cache.erase_owner(owner);
        } else {
          auto hit = cache.lookup(owner, b);
          if (hit != nullptr) (void)value_of(hit);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto s = cache.stats();
  EXPECT_LE(s.resident_bytes, 64u * 1024);
  EXPECT_EQ(s.resident_bytes, s.entries * 256);
}

}  // namespace
}  // namespace hpcla
