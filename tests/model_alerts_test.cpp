// AlertEngine unit tests: z-score step detection (test-then-update),
// abs_floor and cooldown guards, burn-rate windows with pruning and
// minimum volume, hysteresis, fingerprint determinism, history bounds.
#include "model/alerts/alerts.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hpcla::model::alerts {
namespace {

using titanlog::MetricSample;

MetricSample sample(const std::string& name, UnixSeconds ts, double value,
                    std::int64_t seq = 0) {
  MetricSample s;
  s.ts = ts;
  s.name = name;
  s.kind = "counter";
  s.value = value;
  s.seq = seq;
  return s;
}

MetricSample hist_sample(const std::string& name, UnixSeconds ts,
                         double p99_us, std::int64_t seq = 0) {
  MetricSample s;
  s.ts = ts;
  s.name = name;
  s.kind = "hist";
  s.value = 1.0;
  s.p99_us = p99_us;
  s.seq = seq;
  return s;
}

ZScoreRule steady_rule() {
  ZScoreRule r;
  r.name = "test-zscore";
  r.metric = "test.metric";
  r.field = "value";
  r.alpha = 0.3;
  r.z_threshold = 3.0;
  r.min_samples = 5;
  r.abs_floor = 0.0;
  r.cooldown_s = 60;
  return r;
}

// ------------------------------------------------------------------ z-score

TEST(ZScoreRuleTest, FiresOnStepChangeAfterWarmup) {
  AlertEngine eng;
  auto rule = steady_rule();
  rule.abs_floor = 1.0;
  eng.add_rule(rule);
  // Steady baseline: 10 identical samples, variance collapses to ~0.
  UnixSeconds ts = 1000;
  for (int i = 0; i < 10; ++i) {
    eng.observe(sample("test.metric", ts++, 100.0, i));
  }
  EXPECT_EQ(eng.fired_count(), 0u);
  // Step to 200: dev=100 >> 3 sigma (~0) and >= floor.
  eng.observe(sample("test.metric", ts, 200.0, 10));
  ASSERT_EQ(eng.fired_count(), 1u);
  const auto hist = eng.history();
  ASSERT_EQ(hist.size(), 1u);
  EXPECT_EQ(hist[0].rule, "test-zscore");
  EXPECT_EQ(hist[0].metric, "test.metric");
  EXPECT_EQ(hist[0].ts, ts);
  EXPECT_EQ(hist[0].seq, 10);
  EXPECT_DOUBLE_EQ(hist[0].value, 200.0);
}

TEST(ZScoreRuleTest, DoesNotFireDuringWarmup) {
  AlertEngine eng;
  eng.add_rule(steady_rule());
  // The very first samples jump around, but min_samples gates firing.
  eng.observe(sample("test.metric", 1, 0.0));
  eng.observe(sample("test.metric", 2, 1000.0));
  eng.observe(sample("test.metric", 3, -500.0));
  eng.observe(sample("test.metric", 4, 2000.0));
  EXPECT_EQ(eng.fired_count(), 0u);
}

TEST(ZScoreRuleTest, AbsFloorSuppressesQuietMetricNoise) {
  AlertEngine eng;
  auto rule = steady_rule();
  rule.abs_floor = 50.0;
  eng.add_rule(rule);
  UnixSeconds ts = 1000;
  for (int i = 0; i < 10; ++i) {
    eng.observe(sample("test.metric", ts++, 100.0));
  }
  // A 10-unit wiggle is a huge z-score on zero variance but under floor.
  eng.observe(sample("test.metric", ts++, 110.0));
  EXPECT_EQ(eng.fired_count(), 0u);
  // A 100-unit step clears the floor.
  eng.observe(sample("test.metric", ts, 210.0));
  EXPECT_EQ(eng.fired_count(), 1u);
}

TEST(ZScoreRuleTest, CooldownSuppressesRefiring) {
  AlertEngine eng;
  auto rule = steady_rule();
  rule.cooldown_s = 60;
  eng.add_rule(rule);
  UnixSeconds ts = 1000;
  for (int i = 0; i < 10; ++i) {
    eng.observe(sample("test.metric", ts++, 100.0));
  }
  eng.observe(sample("test.metric", ts, 500.0));
  ASSERT_EQ(eng.fired_count(), 1u);
  // Still anomalous 10 s later: refreshed but within cooldown.
  eng.observe(sample("test.metric", ts + 10, 900.0));
  EXPECT_EQ(eng.fired_count(), 1u);
  EXPECT_EQ(eng.active().size(), 1u);
  // Past cooldown, a fresh anomaly fires again.
  eng.observe(sample("test.metric", ts + 120, 5000.0));
  EXPECT_EQ(eng.fired_count(), 2u);
}

TEST(ZScoreRuleTest, HysteresisClearsAfterCooldownOfNormalSamples) {
  AlertEngine eng;
  eng.add_rule(steady_rule());
  UnixSeconds ts = 1000;
  for (int i = 0; i < 10; ++i) {
    eng.observe(sample("test.metric", ts++, 100.0));
  }
  eng.observe(sample("test.metric", ts, 500.0));
  ASSERT_EQ(eng.active().size(), 1u);
  // Normal sample within cooldown: still listed active.
  eng.observe(sample("test.metric", ts + 5, 100.0));
  EXPECT_EQ(eng.active().size(), 1u);
  // Normal sample after cooldown expires: clears.
  eng.observe(sample("test.metric", ts + 120, 100.0));
  EXPECT_TRUE(eng.active().empty());
}

TEST(ZScoreRuleTest, HistogramPercentileFieldIsWatched) {
  AlertEngine eng;
  ZScoreRule rule = steady_rule();
  rule.metric = "server.query.complex.us";
  rule.field = "p99_us";
  rule.abs_floor = 1000.0;
  eng.add_rule(rule);
  UnixSeconds ts = 5000;
  for (int i = 0; i < 8; ++i) {
    eng.observe(hist_sample("server.query.complex.us", ts++, 2000.0, i));
  }
  EXPECT_EQ(eng.fired_count(), 0u);
  eng.observe(hist_sample("server.query.complex.us", ts, 50'000.0, 8));
  EXPECT_EQ(eng.fired_count(), 1u);
}

TEST(ZScoreRuleTest, UnrelatedMetricsDoNotAdvanceState) {
  AlertEngine eng;
  eng.add_rule(steady_rule());
  for (int i = 0; i < 20; ++i) {
    eng.observe(sample("other.metric", 1000 + i, i * 1000.0));
  }
  EXPECT_EQ(eng.fired_count(), 0u);
}

// ---------------------------------------------------------------- burn rate

BurnRateRule burn_rule() {
  BurnRateRule r;
  r.name = "test-burn";
  r.numerator = {"test.errors"};
  r.denominator = {"test.requests"};
  r.budget = 0.01;
  r.burn_threshold = 10.0;
  r.window_s = 300;
  r.min_denominator = 10.0;
  r.cooldown_s = 60;
  return r;
}

TEST(BurnRateRuleTest, FiresWhenBurnCrossesThreshold) {
  AlertEngine eng;
  eng.add_rule(burn_rule());
  // 100 requests, 5 errors: rate 0.05, burn 5x — below the 10x threshold.
  eng.observe(sample("test.requests", 1000, 100.0));
  eng.observe(sample("test.errors", 1000, 5.0));
  eng.evaluate(1000);
  EXPECT_EQ(eng.fired_count(), 0u);
  // 15 more errors: rate 0.2, burn 20x — fires.
  eng.observe(sample("test.errors", 1010, 15.0));
  eng.evaluate(1010);
  ASSERT_EQ(eng.fired_count(), 1u);
  const auto hist = eng.history();
  EXPECT_EQ(hist[0].rule, "test-burn");
  EXPECT_EQ(hist[0].metric, "test.errors/test.requests");
  EXPECT_EQ(hist[0].ts, 1010);
  EXPECT_DOUBLE_EQ(hist[0].value, 20.0);
}

TEST(BurnRateRuleTest, MinDenominatorGatesLowVolume) {
  AlertEngine eng;
  eng.add_rule(burn_rule());
  // 5 requests all failing: 100% error rate, but volume is below 10.
  eng.observe(sample("test.requests", 1000, 5.0));
  eng.observe(sample("test.errors", 1000, 5.0));
  eng.evaluate(1000);
  EXPECT_EQ(eng.fired_count(), 0u);
}

TEST(BurnRateRuleTest, WindowPrunesOldDeltas) {
  AlertEngine eng;
  eng.add_rule(burn_rule());
  // Errors at t=1000 burn hard...
  eng.observe(sample("test.requests", 1000, 50.0));
  eng.observe(sample("test.errors", 1000, 50.0));
  eng.evaluate(1000);
  ASSERT_EQ(eng.fired_count(), 1u);
  // ...but 400 s later they have aged out of the 300 s window; fresh
  // healthy traffic keeps the denominator above the volume gate.
  eng.observe(sample("test.requests", 1400, 100.0));
  eng.evaluate(1400);
  EXPECT_EQ(eng.fired_count(), 1u);
  EXPECT_TRUE(eng.active().empty());
}

TEST(BurnRateRuleTest, MultiMetricDenominatorSums) {
  AlertEngine eng;
  BurnRateRule rule;
  rule.name = "test-hitrate";
  rule.numerator = {"test.misses"};
  rule.denominator = {"test.hits", "test.misses"};
  rule.budget = 0.5;
  rule.burn_threshold = 1.0;
  rule.window_s = 300;
  rule.min_denominator = 10.0;
  rule.cooldown_s = 60;
  eng.add_rule(rule);
  // 60% misses of 100 lookups: rate 0.6 vs budget 0.5 — burns at 1.2x.
  eng.observe(sample("test.hits", 1000, 40.0));
  eng.observe(sample("test.misses", 1000, 60.0));
  eng.evaluate(1000);
  ASSERT_EQ(eng.fired_count(), 1u);
  EXPECT_NEAR(eng.history()[0].value, 1.2, 1e-9);
}

TEST(BurnRateRuleTest, CooldownAndHysteresis) {
  AlertEngine eng;
  eng.add_rule(burn_rule());
  eng.observe(sample("test.requests", 1000, 50.0));
  eng.observe(sample("test.errors", 1000, 50.0));
  eng.evaluate(1000);
  ASSERT_EQ(eng.fired_count(), 1u);
  // Still burning 10 s later: active but not re-fired.
  eng.evaluate(1010);
  EXPECT_EQ(eng.fired_count(), 1u);
  EXPECT_EQ(eng.active().size(), 1u);
  // Past cooldown and still burning: fires again.
  eng.evaluate(1070);
  EXPECT_EQ(eng.fired_count(), 2u);
}

// ------------------------------------------------------------ whole engine

TEST(AlertEngineTest, DefaultRulePackInstallsAndEvaluates) {
  AlertEngine eng;
  eng.install_default_rules();
  // Replica timeouts burning hard against a healthy read volume.
  eng.observe(sample("cassalite.read.ok", 2000, 100.0));
  eng.observe(sample("cassalite.replica.timeouts", 2000, 50.0));
  eng.evaluate(2000);
  ASSERT_EQ(eng.fired_count(), 1u);
  EXPECT_EQ(eng.history()[0].rule, "replica-timeout-burn");
}

TEST(AlertEngineTest, FingerprintIsDeterministicAcrossReplays) {
  const auto replay = [] {
    AlertEngine eng;
    eng.install_default_rules();
    eng.add_rule(steady_rule());
    UnixSeconds ts = 1000;
    for (int i = 0; i < 10; ++i) {
      eng.observe(sample("test.metric", ts++, 100.0, i));
    }
    eng.observe(sample("test.metric", ts, 900.0, 10));
    eng.observe(sample("cassalite.read.ok", ts, 100.0, 10));
    eng.observe(sample("cassalite.replica.timeouts", ts, 50.0, 10));
    eng.evaluate(ts);
    return std::pair(eng.fired_count(), eng.fingerprint());
  };
  const auto a = replay();
  const auto b = replay();
  EXPECT_EQ(a.first, 2u);
  EXPECT_EQ(a, b);
}

TEST(AlertEngineTest, FingerprintChangesWithAlertSequence) {
  AlertEngine a;
  a.add_rule(steady_rule());
  AlertEngine b;
  b.add_rule(steady_rule());
  const std::uint64_t empty_fp = a.fingerprint();
  UnixSeconds ts = 1000;
  for (int i = 0; i < 10; ++i) {
    a.observe(sample("test.metric", ts + i, 100.0));
    b.observe(sample("test.metric", ts + i, 100.0));
  }
  a.observe(sample("test.metric", ts + 10, 900.0));  // fires at ts+10
  b.observe(sample("test.metric", ts + 11, 900.0));  // fires at ts+11
  EXPECT_NE(a.fingerprint(), empty_fp);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(AlertEngineTest, HistoryIsBoundedToCap) {
  AlertEngine eng;
  auto rule = steady_rule();
  rule.cooldown_s = 0;  // every anomalous sample fires
  rule.alpha = 1.0;     // baseline = previous sample, variance = 0
  eng.add_rule(rule);
  UnixSeconds ts = 1000;
  for (int i = 0; i < 10; ++i) {
    eng.observe(sample("test.metric", ts++, 100.0));
  }
  // With alpha=1 every alternation is an infinite-z step, so each fires.
  for (int i = 0; i < 400; ++i) {
    const double v = (i % 2 == 0) ? 1e9 : -1e9;
    eng.observe(sample("test.metric", ts++, v));
  }
  EXPECT_GT(eng.fired_count(), AlertEngine::kHistoryCap);
  EXPECT_EQ(eng.history().size(), AlertEngine::kHistoryCap);
}

TEST(AlertEngineTest, ToJsonShapeAndClear) {
  AlertEngine eng;
  eng.add_rule(steady_rule());
  UnixSeconds ts = 1000;
  for (int i = 0; i < 10; ++i) {
    eng.observe(sample("test.metric", ts++, 100.0));
  }
  eng.observe(sample("test.metric", ts, 900.0, 7));
  Json j = eng.to_json();
  EXPECT_EQ(j["fired"].as_int(), 1);
  EXPECT_EQ(j["fingerprint"].as_string().size(), 16u);
  ASSERT_EQ(j["active"].as_array().size(), 1u);
  ASSERT_EQ(j["history"].as_array().size(), 1u);
  const Json& a = j["history"].as_array()[0];
  EXPECT_EQ(a["rule"].as_string(), "test-zscore");
  EXPECT_EQ(a["seq"].as_int(), 7);
  const std::string fp = j["fingerprint"].as_string();

  eng.clear();
  Json cleared = eng.to_json();
  EXPECT_EQ(cleared["fired"].as_int(), 0);
  EXPECT_TRUE(cleared["active"].as_array().empty());
  EXPECT_TRUE(cleared["history"].as_array().empty());
  EXPECT_NE(cleared["fingerprint"].as_string(), fp);
}

}  // namespace
}  // namespace hpcla::model::alerts
