// Tests for the CQL dialect: lexing/parsing, schema-aware validation, and
// execution semantics on the data model's tables.
#include "cassalite/cql.hpp"

#include <gtest/gtest.h>

#include "model/tables.hpp"

namespace hpcla::cassalite {
namespace {

using titanlog::EventType;

constexpr std::int64_t kT0 = 1489449600;
const std::int64_t kHour0 = kT0 / 3600;

struct CqlFixture {
  Cluster cluster;

  CqlFixture() : cluster(opts()) {
    HPCLA_CHECK(model::create_data_model(cluster).is_ok());
    // Ten MCEs in hour0 at ts kT0+0..9s, nodes 100..109.
    for (int i = 0; i < 10; ++i) {
      titanlog::EventRecord e;
      e.ts = kT0 + i;
      e.seq = i;
      e.type = EventType::kMachineCheck;
      e.node = 100 + i;
      e.message = "bank " + std::to_string(i);
      HPCLA_CHECK(cluster.insert(std::string(model::kEventByTime),
                                 model::event_time_key(kHour0, e.type),
                                 model::event_time_row(e)).is_ok());
    }
  }

  static ClusterOptions opts() {
    ClusterOptions o;
    o.node_count = 3;
    o.replication_factor = 2;
    return o;
  }

  Result<CqlResult> run(const std::string& q) {
    return execute_cql(cluster, q);
  }
};

// ------------------------------------------------------------------ parser

TEST(CqlParseTest, SelectStar) {
  auto stmt = parse_cql(
      "SELECT * FROM event_by_time WHERE hour = 413185 AND type = 'MCE'");
  ASSERT_TRUE(stmt.is_ok()) << stmt.status().to_string();
  ASSERT_TRUE(stmt->select.has_value());
  EXPECT_EQ(stmt->select->table, "event_by_time");
  EXPECT_TRUE(stmt->select->columns.empty());
  EXPECT_EQ(stmt->select->partition_eq.size(), 2u);
  EXPECT_EQ(stmt->select->partition_eq[0].first, "hour");
  EXPECT_EQ(stmt->select->partition_eq[0].second.as_int(), 413185);
  EXPECT_EQ(stmt->select->partition_eq[1].second.as_text(), "MCE");
}

TEST(CqlParseTest, SelectColumnsRangeOrderLimit) {
  auto stmt = parse_cql(
      "select node, message from event_by_time where hour=1 and type='MCE' "
      "and ts >= 10 and ts < 20 order by ts desc limit 5;");
  ASSERT_TRUE(stmt.is_ok()) << stmt.status().to_string();
  const auto& sel = *stmt->select;
  EXPECT_EQ(sel.columns, (std::vector<std::string>{"node", "message"}));
  ASSERT_TRUE(sel.ck_lower.has_value());
  EXPECT_EQ(sel.ck_lower->as_int(), 10);
  EXPECT_FALSE(sel.ck_lower_strict);
  ASSERT_TRUE(sel.ck_upper.has_value());
  EXPECT_EQ(sel.ck_upper->as_int(), 20);
  EXPECT_FALSE(sel.ck_upper_inclusive);
  EXPECT_TRUE(sel.order_desc);
  EXPECT_EQ(sel.limit, 5u);
}

TEST(CqlParseTest, CountStar) {
  auto stmt = parse_cql("SELECT COUNT(*) FROM eventsynopsis WHERE hour=1");
  ASSERT_TRUE(stmt.is_ok());
  EXPECT_TRUE(stmt->select->count_only);
}

TEST(CqlParseTest, Insert) {
  auto stmt = parse_cql(
      "INSERT INTO eventtypes (type, description, flag, weight, note) "
      "VALUES ('X', 'desc with ''quote''', true, 2.5, null)");
  ASSERT_TRUE(stmt.is_ok()) << stmt.status().to_string();
  ASSERT_TRUE(stmt->insert.has_value());
  const auto& ins = *stmt->insert;
  EXPECT_EQ(ins.table, "eventtypes");
  ASSERT_EQ(ins.values.size(), 5u);
  EXPECT_EQ(ins.values[1].second.as_text(), "desc with 'quote'");
  EXPECT_EQ(ins.values[2].second.as_bool(), true);
  EXPECT_DOUBLE_EQ(ins.values[3].second.as_double(), 2.5);
  EXPECT_TRUE(ins.values[4].second.is_null());
}

TEST(CqlParseTest, Rejections) {
  EXPECT_FALSE(parse_cql("").is_ok());
  EXPECT_FALSE(parse_cql("DROP TABLE x").is_ok());
  EXPECT_FALSE(parse_cql("SELECT FROM t").is_ok());
  EXPECT_FALSE(parse_cql("SELECT * FROM t WHERE").is_ok());
  EXPECT_FALSE(parse_cql("SELECT * FROM t WHERE a == 1").is_ok());
  EXPECT_FALSE(parse_cql("SELECT * FROM t LIMIT 0").is_ok());
  EXPECT_FALSE(parse_cql("SELECT * FROM t LIMIT -3").is_ok());
  EXPECT_FALSE(parse_cql("SELECT * FROM t; garbage").is_ok());
  EXPECT_FALSE(parse_cql("INSERT INTO t (a, b) VALUES (1)").is_ok());
  EXPECT_FALSE(parse_cql("SELECT * FROM t WHERE a = 'unterminated").is_ok());
}

// --------------------------------------------------------------- execution

TEST(CqlExecTest, SelectWholePartition) {
  CqlFixture f;
  auto r = f.run("SELECT * FROM event_by_time WHERE hour = " +
                 std::to_string(kHour0) + " AND type = 'MCE'");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_TRUE(r->is_rows);
  EXPECT_EQ(r->count, 10);
  ASSERT_EQ(r->rows.as_array().size(), 10u);
  // Clustering columns materialized by name; cells present.
  const Json& first = r->rows.as_array().front();
  EXPECT_EQ(first["ts"].as_int(), kT0);
  EXPECT_EQ(first["seq"].as_int(), 0);
  EXPECT_EQ(first["node"].as_int(), 100);
  EXPECT_EQ(first["message"].as_string(), "bank 0");
}

TEST(CqlExecTest, RangeAndLimit) {
  CqlFixture f;
  const std::string base = "SELECT * FROM event_by_time WHERE hour = " +
                           std::to_string(kHour0) + " AND type = 'MCE' ";
  auto r = f.run(base + "AND ts >= " + std::to_string(kT0 + 3) +
                 " AND ts < " + std::to_string(kT0 + 7));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->count, 4);  // ts +3,+4,+5,+6

  auto strict = f.run(base + "AND ts > " + std::to_string(kT0 + 3) +
                      " AND ts <= " + std::to_string(kT0 + 7));
  ASSERT_TRUE(strict.is_ok());
  EXPECT_EQ(strict->count, 4);  // +4..+7
  EXPECT_EQ(strict->rows.as_array().front()["ts"].as_int(), kT0 + 4);
  EXPECT_EQ(strict->rows.as_array().back()["ts"].as_int(), kT0 + 7);

  auto limited = f.run(base + "LIMIT 3");
  ASSERT_TRUE(limited.is_ok());
  EXPECT_EQ(limited->count, 3);
}

TEST(CqlExecTest, OrderDescWithLimitIsNewestFirst) {
  CqlFixture f;
  auto r = f.run("SELECT * FROM event_by_time WHERE hour = " +
                 std::to_string(kHour0) +
                 " AND type = 'MCE' ORDER BY ts DESC LIMIT 2");
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r->rows.as_array().size(), 2u);
  EXPECT_EQ(r->rows.as_array()[0]["ts"].as_int(), kT0 + 9);
  EXPECT_EQ(r->rows.as_array()[1]["ts"].as_int(), kT0 + 8);
}

TEST(CqlExecTest, ClusteringEquality) {
  CqlFixture f;
  auto r = f.run("SELECT * FROM event_by_time WHERE hour = " +
                 std::to_string(kHour0) + " AND type = 'MCE' AND ts = " +
                 std::to_string(kT0 + 5));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->count, 1);
  EXPECT_EQ(r->rows.as_array()[0]["node"].as_int(), 105);
}

TEST(CqlExecTest, CountStar) {
  CqlFixture f;
  auto r = f.run("SELECT COUNT(*) FROM event_by_time WHERE hour = " +
                 std::to_string(kHour0) + " AND type = 'MCE' AND ts >= " +
                 std::to_string(kT0 + 8));
  ASSERT_TRUE(r.is_ok());
  EXPECT_FALSE(r->is_rows);
  EXPECT_EQ(r->count, 2);
}

TEST(CqlExecTest, ColumnProjection) {
  CqlFixture f;
  auto r = f.run("SELECT node FROM event_by_time WHERE hour = " +
                 std::to_string(kHour0) + " AND type = 'MCE' LIMIT 1");
  ASSERT_TRUE(r.is_ok());
  const Json& row = r->rows.as_array().front();
  EXPECT_TRUE(row["node"].is_int());
  EXPECT_TRUE(row["message"].is_null());       // projected away
  EXPECT_EQ(row["ts"].as_int(), kT0);          // key columns always present
}

TEST(CqlExecTest, InsertThenSelect) {
  CqlFixture f;
  auto ins = f.run(
      "INSERT INTO event_by_time (hour, type, ts, seq, node, message, extra) "
      "VALUES (" + std::to_string(kHour0) + ", 'GPUDbe', " +
      std::to_string(kT0 + 100) + ", 0, 7, 'dbe detected', 42)");
  ASSERT_TRUE(ins.is_ok()) << ins.status().to_string();
  EXPECT_EQ(ins->count, 1);
  auto r = f.run("SELECT * FROM event_by_time WHERE hour = " +
                 std::to_string(kHour0) + " AND type = 'GPUDbe'");
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r->count, 1);
  const Json& row = r->rows.as_array().front();
  EXPECT_EQ(row["message"].as_string(), "dbe detected");
  EXPECT_EQ(row["extra"].as_int(), 42);  // flexible schema: ad-hoc column
}

TEST(CqlExecTest, SchemaValidation) {
  CqlFixture f;
  // Unknown table.
  EXPECT_EQ(f.run("SELECT * FROM nope WHERE x = 1").status().code(),
            StatusCode::kNotFound);
  // Missing partition column.
  EXPECT_FALSE(f.run("SELECT * FROM event_by_time WHERE hour = 1").is_ok());
  // Range on a non-clustering column.
  EXPECT_FALSE(
      f.run("SELECT * FROM event_by_time WHERE hour = 1 AND type = 'MCE' "
            "AND node > 5").is_ok());
  // ORDER BY a non-clustering column.
  EXPECT_FALSE(
      f.run("SELECT * FROM event_by_time WHERE hour = 1 AND type = 'MCE' "
            "ORDER BY node").is_ok());
  // Equality on a regular column.
  EXPECT_FALSE(
      f.run("SELECT * FROM event_by_time WHERE hour = 1 AND type = 'MCE' "
            "AND message = 'x'").is_ok());
  // INSERT missing clustering column.
  EXPECT_FALSE(
      f.run("INSERT INTO event_by_time (hour, type, ts) VALUES (1, 'MCE', 2)")
          .is_ok());
}

TEST(CqlExecTest, EmptyResultIsOk) {
  CqlFixture f;
  auto r = f.run(
      "SELECT * FROM event_by_time WHERE hour = 999999 AND type = 'MCE'");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->count, 0);
  EXPECT_TRUE(r->rows.as_array().empty());
}

}  // namespace
}  // namespace hpcla::cassalite
