// Closed-loop self-telemetry tests (DESIGN.md §16): sys_* row codecs,
// span view tiles, the full workload -> export -> ingest -> selfquery
// loop, idle-loop suppression (an idle pump publishes zero events), DLQ
// quarantine of corrupt telemetry payloads, and the seeded chaos probe —
// a FaultInjector latency fault raises exactly the replica-timeout-burn
// alert, bit-identically across two replays.
#include "model/selftel/selftel.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <vector>

#include "common/faultsim.hpp"
#include "common/telemetry.hpp"
#include "model/streaming_ingest.hpp"
#include "model/tables.hpp"
#include "server/server.hpp"

namespace hpcla::model::selftel {
namespace {

using cassalite::Cluster;
using cassalite::ClusterOptions;
using cassalite::ClusteringKey;
using cassalite::Consistency;
using cassalite::ReadQuery;
using cassalite::Row;
using cassalite::TableSchema;
using cassalite::Value;
using titanlog::MetricSample;
using titanlog::SpanSample;

constexpr UnixSeconds kT0 = 1489449600;  // 2017-03-14 00:00:00 UTC

// -------------------------------------------------------------- row codecs

TEST(SysCodecTest, MetricRowRoundTripsCounterKind) {
  MetricSample s;
  s.ts = kT0 + 17;
  s.name = "cassalite.read.ok";
  s.kind = "counter";
  s.value = 42.0;
  s.seq = 3;
  const std::string key = sys_metric_key(hour_bucket(s.ts), s.name);
  EXPECT_EQ(key, std::to_string(hour_bucket(kT0)) + "|cassalite.read.ok");
  auto back = decode_sys_metric_row(key, sys_metric_row(s));
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back.value(), s);
}

TEST(SysCodecTest, MetricRowRoundTripsHistKind) {
  MetricSample s;
  s.ts = kT0 + 90;
  s.name = "server.query.complex.us";
  s.kind = "hist";
  s.value = 12.0;
  s.sum_us = 90'000.0;
  s.p50_us = 4'000.0;
  s.p95_us = 9'000.0;
  s.p99_us = 11'000.0;
  s.max_us = 12'000.0;
  s.seq = 7;
  const std::string key = sys_metric_key(hour_bucket(s.ts), s.name);
  auto back = decode_sys_metric_row(key, sys_metric_row(s));
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back.value(), s);
}

TEST(SysCodecTest, SpanRowRoundTrips) {
  SpanSample s;
  s.ts = kT0 + 300;
  s.op = "server.heatmap";
  s.name = "cassalite.read";
  s.trace_id = 99;
  s.span_id = 1234;
  s.parent_id = 1230;
  s.start_us = 5'000;
  s.duration_us = 62'000;
  s.slow = true;
  s.errored = false;
  const std::string key = sys_span_key(hour_bucket(s.ts), s.op);
  auto back = decode_sys_span_row(key, sys_span_row(s));
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back.value(), s);
}

TEST(SysCodecTest, BadPartitionKeysAreRejected) {
  MetricSample s;
  s.ts = kT0;
  s.name = "m";
  s.kind = "counter";
  const Row row = sys_metric_row(s);
  EXPECT_FALSE(decode_sys_metric_row("no-separator", row).is_ok());
  EXPECT_FALSE(decode_sys_metric_row("|name", row).is_ok());
  EXPECT_FALSE(decode_sys_metric_row("12a|name", row).is_ok());
  // A corrupt clustering key is a decode error, not a crash.
  Row bad = row;
  bad.key = ClusteringKey::of({Value(std::string("not-ts"))});
  const std::string key = sys_metric_key(hour_bucket(kT0), "m");
  EXPECT_FALSE(decode_sys_metric_row(key, bad).is_ok());
}

// ---------------------------------------------------------------- SysViews

SpanSample view_span(UnixSeconds ts, const std::string& op,
                     std::uint64_t parent, std::int64_t duration_us,
                     bool slow = false, bool errored = false) {
  static std::uint64_t next_id = 1;
  SpanSample s;
  s.ts = ts;
  s.op = op;
  s.name = parent == 0 ? op : op + ".child";
  s.trace_id = next_id;
  s.span_id = next_id++;
  s.parent_id = parent;
  s.duration_us = duration_us;
  s.slow = slow;
  s.errored = errored;
  return s;
}

TEST(SysViewsTest, OnlyRootSpansFeedTheTiles) {
  SysViews views;
  views.apply(view_span(kT0, "server.hourly", 0, 1000));
  views.apply(view_span(kT0, "server.hourly", 42, 900));  // child: ignored
  views.apply(view_span(kT0, "server.hourly", 42, 800));  // child: ignored
  EXPECT_EQ(views.applied(), 1u);
  const auto sums = views.summaries(hour_bucket(kT0), hour_bucket(kT0));
  ASSERT_EQ(sums.size(), 1u);
  EXPECT_EQ(sums[0].op, "server.hourly");
  EXPECT_EQ(sums[0].spans, 1u);
}

TEST(SysViewsTest, SummariesMergeHoursAndSort) {
  SysViews views;
  const UnixSeconds h0 = kT0;
  const UnixSeconds h1 = kT0 + kSecondsPerHour;
  // "busy" gets 3 root spans across two hours (one slow, one errored);
  // "quiet" gets 1.
  views.apply(view_span(h0, "busy", 0, 10'000));
  views.apply(view_span(h0 + 10, "busy", 0, 80'000, /*slow=*/true));
  views.apply(
      view_span(h1 + 5, "busy", 0, 20'000, /*slow=*/false, /*errored=*/true));
  views.apply(view_span(h1 + 6, "quiet", 0, 5'000));
  const auto sums = views.summaries(hour_bucket(h0), hour_bucket(h1));
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_EQ(sums[0].op, "busy");  // more spans sorts first
  EXPECT_EQ(sums[0].spans, 3u);
  EXPECT_EQ(sums[0].slow, 1u);
  EXPECT_EQ(sums[0].errored, 1u);
  EXPECT_GT(sums[0].p99_us, 0.0);
  EXPECT_GE(sums[0].p99_us, sums[0].p50_us);
  EXPECT_EQ(sums[1].op, "quiet");
  // Hour filtering: the second hour alone only sees two ops' later spans.
  const auto late = views.summaries(hour_bucket(h1), hour_bucket(h1));
  ASSERT_EQ(late.size(), 2u);
  EXPECT_EQ(late[0].spans, 1u);
  EXPECT_EQ(late[1].spans, 1u);
  // An empty window yields nothing.
  EXPECT_TRUE(views.summaries(hour_bucket(h0) - 10, hour_bucket(h0) - 5)
                  .empty());
}

// ---------------------------------------------------------- closed loop

struct LoopFixture {
  Cluster cluster;
  sparklite::Engine engine;
  buslite::Broker broker;
  server::AnalyticsServer server;
  SelfTelemetryLoop loop;

  LoopFixture()
      : cluster(opts()),
        engine(sparklite::EngineOptions{.workers = 2}),
        server(cluster, engine),
        loop(cluster, broker) {
    HPCLA_CHECK(model::create_data_model(cluster).is_ok());
    server.set_self_telemetry(&loop);
  }

  static ClusterOptions opts() {
    ClusterOptions o;
    o.node_count = 4;
    o.replication_factor = 2;
    return o;
  }

  Json ok(const std::string& request_text) {
    auto request = Json::parse(request_text);
    HPCLA_CHECK(request.is_ok());
    Json response = server.handle(request.value());
    EXPECT_EQ(response["status"].as_string(), "ok")
        << (response["error"].is_string() ? response["error"].as_string()
                                          : std::string());
    return response;
  }
};

std::string window_json(UnixSeconds begin, UnixSeconds end) {
  return R"("begin":)" + std::to_string(begin) + R"(,"end":)" +
         std::to_string(end);
}

TEST(ClosedLoopTest, WorkloadRoundTripsIntoSysTablesAndSelfquery) {
  telemetry::tracer().clear();
  LoopFixture f;
  const UnixSeconds before = std::time(nullptr);

  // Foreground workload: complex queries (feed server.query.complex.us)
  // plus one artificially slow root trace for the slow_spans path.
  const std::string ctx =
      R"("context":{"window":{"begin":1489449600,"end":1489453200}})";
  for (int i = 0; i < 3; ++i) {
    f.ok(R"({"op":"hourly",)" + ctx + "}");
  }
  {
    auto span = telemetry::Span::root("selftest.slowop");
    span.set_duration_us(500'000);  // over the 50 ms slow threshold
  }

  const auto pump = f.loop.pump();
  const UnixSeconds after = std::time(nullptr);
  EXPECT_GT(pump.published, 0u);
  EXPECT_GT(pump.drained.metrics_in, 0u);
  EXPECT_GT(pump.drained.spans_in, 0u);
  EXPECT_GT(pump.drained.rows_written, 0u);
  EXPECT_EQ(pump.drained.decode_failures, 0u);
  EXPECT_EQ(pump.drained.write_failures, 0u);

  // The system's own latency histogram landed in cassalite, shaped like
  // any other event table: partition per metric-hour.
  std::size_t sys_rows = 0;
  for (std::int64_t h = hour_bucket(before); h <= hour_bucket(after); ++h) {
    ReadQuery q;
    q.table = std::string(kSysMetrics);
    q.partition_key = sys_metric_key(h, "server.query.complex.us");
    auto read = f.cluster.select(q, Consistency::kOne);
    if (read.is_ok()) sys_rows += read->rows.size();
  }
  EXPECT_GE(sys_rows, 1u);

  // selfquery answers the workload's own p99 out of cassalite.
  auto p99 = f.ok(
      R"({"op":"selfquery","what":"latency_p99","metric":"server.query.complex.us",)" +
      window_json(before - 1, after + 1) + "}");
  EXPECT_EQ(p99["path"].as_string(), "simple");
  const Json& latest = p99["result"]["latest"];
  EXPECT_GE(p99["result"]["rows"].as_int(), 1);
  EXPECT_EQ(latest["kind"].as_string(), "hist");
  EXPECT_GT(latest["p99_us"].as_double(), 0.0);
  EXPECT_GE(latest["value"].as_double(), 3.0);  // the 3 complex queries

  // metric_series returns the same rows, ascending, with a limit.
  auto series = f.ok(
      R"({"op":"selfquery","what":"metric_series","metric":"server.query.complex.us","limit":1,)" +
      window_json(before - 1, after + 1) + "}");
  EXPECT_EQ(series["result"]["series"].as_array().size(), 1u);

  // The span views summarize the workload's ops without a table scan.
  auto ops = f.ok(R"({"op":"selfquery","what":"ops",)" +
                  window_json(before - 1, after + 1) + "}");
  bool saw_hourly = false;
  for (const auto& s : ops["result"]["ops"].as_array()) {
    if (s["op"].as_string() == "server.hourly") {
      saw_hourly = true;
      EXPECT_GE(s["spans"].as_int(), 3);
    }
  }
  EXPECT_TRUE(saw_hourly);

  // slow_spans surfaces the tail-sampled slow trace from sys_spans.
  auto slow = f.ok(
      R"({"op":"selfquery","what":"slow_spans","spanop":"selftest.slowop",)" +
      window_json(before - 1, after + 1) + "}");
  const auto& slow_arr = slow["result"]["spans"].as_array();
  ASSERT_GE(slow_arr.size(), 1u);
  EXPECT_TRUE(slow_arr[0]["slow"].as_bool());
  EXPECT_EQ(slow_arr[0]["duration_us"].as_int(), 500'000);

  // alerts op responds through the attached loop (nothing fired here).
  auto alerts = f.ok(R"({"op":"alerts"})");
  EXPECT_TRUE(alerts["result"]["fired"].is_int());
  EXPECT_EQ(alerts["result"]["fingerprint"].as_string().size(), 16u);

  // Unattached server: both ops are failed preconditions.
  server::AnalyticsServer bare(f.cluster, f.engine);
  auto parsed = Json::parse(R"({"op":"alerts"})");
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(bare.handle(parsed.value())["status"].as_string(), "error");
}

TEST(ClosedLoopTest, IdleLoopPublishesZeroEvents) {
  telemetry::tracer().clear();
  LoopFixture f;
  // First pump absorbs whatever the fixture setup moved.
  (void)f.loop.pump();
  // With no foreground work between cycles, the loop's own drain traffic
  // is fully suppressed: no spans (SuppressScope), no exported metrics
  // (selftel. exclusion + rebaseline), no internal-topic bus feedback.
  for (int cycle = 0; cycle < 3; ++cycle) {
    const auto idle = f.loop.pump();
    EXPECT_EQ(idle.published, 0u) << "cycle " << cycle;
    EXPECT_EQ(idle.drained.metrics_in, 0u) << "cycle " << cycle;
    EXPECT_EQ(idle.drained.spans_in, 0u) << "cycle " << cycle;
    EXPECT_EQ(idle.drained.rows_written, 0u) << "cycle " << cycle;
  }
}

TEST(ClosedLoopTest, CorruptTelemetryPayloadsQuarantineToDlq) {
  telemetry::tracer().clear();
  Cluster cluster(LoopFixture::opts());
  buslite::Broker broker;
  SelfTelemetryLoop loop(cluster, broker);
  (void)loop.pump();  // absorb construction movement
  ASSERT_TRUE(broker
                  .produce(titanlog::kTelemetryMetricsTopic, "k",
                           "not json at all", 1000)
                  .is_ok());
  ASSERT_TRUE(broker
                  .produce(titanlog::kTelemetrySpansTopic, "k",
                           R"({"ts":"wrong-type"})", 2000)
                  .is_ok());
  const auto report = loop.ingestor().drain();
  EXPECT_EQ(report.decode_failures, 2u);
  EXPECT_EQ(report.quarantined, 2u);
  EXPECT_EQ(report.rows_written, 0u);
  // The rejects land byte-for-byte on the per-topic DLQs.
  const std::string metrics_dlq =
      dead_letter_topic(titanlog::kTelemetryMetricsTopic);
  std::vector<buslite::Message> rejects;
  const auto parts = broker.partition_count(metrics_dlq);
  ASSERT_TRUE(parts.is_ok());
  for (int p = 0; p < parts.value(); ++p) {
    auto fetched = broker.fetch(metrics_dlq, p, 0, 100);
    if (!fetched.is_ok()) continue;
    for (auto& m : fetched.value()) rejects.push_back(std::move(m));
  }
  ASSERT_EQ(rejects.size(), 1u);
  EXPECT_EQ(rejects[0].value, "not json at all");
  EXPECT_EQ(rejects[0].timestamp, 1000);
}

// ------------------------------------------------- seeded alert determinism

struct AlertRunResult {
  std::uint64_t fired = 0;
  std::uint64_t fingerprint = 0;
  std::string rule;
  UnixSeconds alert_ts = 0;
  std::uint64_t rows_written = 0;
  std::size_t idle_events = 0;
};

/// One seeded chaos run: a slow replica pushes reads over the timeout so
/// cassalite.replica.timeouts burns the read-error budget; the loop's
/// next pump must fire exactly the replica-timeout-burn alert.
AlertRunResult run_seeded_alert_scenario(std::uint64_t seed) {
  telemetry::tracer().clear();
  SimClock clock;
  clock.reset(kT0 * 1000);

  FaultOptions fopts;
  fopts.seed = seed;
  fopts.base_latency_ms = 2;
  fopts.slow_latency_ms = 40;
  ClusterOptions copts;
  copts.node_count = 4;
  copts.replication_factor = 3;
  copts.read_timeout_ms = 30;  // the slow replica (40 ms) overshoots this
  copts.speculative_delay_ms = 5;
  FaultInjector injector(copts.node_count, fopts, &clock);
  Cluster cluster(copts);
  cluster.set_fault_injector(&injector);

  buslite::Broker broker;
  telemetry::ExporterOptions eopts;
  eopts.sim_clock = &clock;
  SelfTelemetryLoop loop(cluster, broker, eopts);

  TableSchema schema;
  schema.name = "t";
  schema.partition_key_columns = {"pk"};
  schema.clustering_key_columns = {"seq"};
  HPCLA_CHECK(cluster.create_table(schema).is_ok());
  std::vector<std::string> pks;
  for (int p = 0; p < 8; ++p) pks.push_back("pk" + std::to_string(p));
  for (std::int64_t i = 0; i < 32; ++i) {
    Row row;
    row.key = ClusteringKey::of({Value(i)});
    row.set("v", Value(std::string("v") + std::to_string(i)));
    HPCLA_CHECK(cluster
                    .insert("t", pks[static_cast<std::size_t>(i) % pks.size()],
                            row, Consistency::kQuorum)
                    .is_ok());
  }
  // Absorb the healthy setup so the fault window's deltas stand alone.
  (void)loop.pump();

  // Latency fault: node 0 answers at 40 ms for the rest of the run.
  injector.slow_window(0, clock.now_ms(), clock.now_ms() + 1'000'000);
  for (int i = 0; i < 40; ++i) {
    ReadQuery q;
    q.table = "t";
    q.partition_key = pks[static_cast<std::size_t>(i) % pks.size()];
    (void)cluster.select(q, Consistency::kQuorum);
    clock.advance_ms(100);
  }

  const auto pump = loop.pump();
  AlertRunResult result;
  result.fired = loop.alerts().fired_count();
  result.fingerprint = loop.alerts().fingerprint();
  result.rows_written = pump.drained.rows_written;
  const auto history = loop.alerts().history();
  if (!history.empty()) {
    result.rule = history.back().rule;
    result.alert_ts = history.back().ts;
  }
  // A follow-up idle pump publishes nothing even mid-chaos-aftermath.
  result.idle_events = loop.pump().published;
  return result;
}

TEST(ClosedLoopTest, SeededLatencyFaultFiresExactlyOneAlertBitIdentically) {
  constexpr std::uint64_t kSeed = 0x5E1F7E1ull;
  const AlertRunResult first = run_seeded_alert_scenario(kSeed);
  const AlertRunResult second = run_seeded_alert_scenario(kSeed);

  EXPECT_EQ(first.fired, 1u);
  EXPECT_EQ(first.rule, "replica-timeout-burn");
  EXPECT_GE(first.alert_ts, kT0);
  EXPECT_GT(first.rows_written, 0u);
  EXPECT_EQ(first.idle_events, 0u);
  EXPECT_EQ(second.fired, first.fired);
  EXPECT_EQ(second.fingerprint, first.fingerprint)
      << "same seed did not replay bit-identically";

  const char* json_path = std::getenv("SELFTEL_JSON");
  if (json_path != nullptr && *json_path != '\0') {
    // Probe summary for tools/check_trend.py --report selftelemetry.
    std::FILE* out = std::fopen(json_path, "w");
    ASSERT_NE(out, nullptr);
    std::fprintf(
        out,
        "{\n  \"bench\": \"selftelemetry\",\n  \"results\": [],\n"
        "  \"selftelemetry\": {\"seed\": %llu, \"alerts_fired\": %llu, "
        "\"rule\": \"%s\", \"fingerprint\": \"%016llx\", "
        "\"replay_identical\": %s, \"rows_written\": %llu, "
        "\"idle_events\": %zu}\n}\n",
        static_cast<unsigned long long>(kSeed),
        static_cast<unsigned long long>(first.fired), first.rule.c_str(),
        static_cast<unsigned long long>(first.fingerprint),
        first.fingerprint == second.fingerprint && first.fired == second.fired
            ? "true"
            : "false",
        static_cast<unsigned long long>(first.rows_written),
        first.idle_events);
    std::fclose(out);
  }
}

}  // namespace
}  // namespace hpcla::model::selftel
