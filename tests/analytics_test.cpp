// Tests for contexts, the scan planner, spatio-temporal queries, heat maps,
// distributions, time series, transfer entropy, text analytics, and
// reliability reports — each exercised against generated scenarios with
// known ground truth.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "analytics/context.hpp"
#include "analytics/distribution.hpp"
#include "analytics/heatmap.hpp"
#include "analytics/queries.hpp"
#include "analytics/reliability.hpp"
#include "analytics/text.hpp"
#include "analytics/timeseries.hpp"
#include "analytics/transfer_entropy.hpp"
#include "model/ingest.hpp"
#include "titanlog/generator.hpp"

namespace hpcla::analytics {
namespace {

using cassalite::Cluster;
using cassalite::ClusterOptions;
using model::BatchIngestor;
using titanlog::EventRecord;
using titanlog::EventType;
using titanlog::Generator;
using titanlog::ScenarioConfig;

constexpr UnixSeconds kT0 = 1489449600;  // 2017-03-14 00:00:00 UTC
const std::int64_t kHour0 = hour_bucket(kT0);

// Shared fixture: one 4-node cluster loaded with a rich 4-hour scenario.
struct LoadedCluster {
  Cluster cluster;
  sparklite::Engine engine;
  titanlog::GeneratedLogs logs;

  explicit LoadedCluster(ScenarioConfig cfg)
      : cluster(make_opts()),
        engine(sparklite::EngineOptions{.workers = 4}) {
    HPCLA_CHECK(model::create_data_model(cluster).is_ok());
    logs = Generator(std::move(cfg)).generate();
    BatchIngestor ingestor(cluster, engine);
    auto report = ingestor.ingest_records(logs.events, logs.jobs);
    HPCLA_CHECK(report.write_failures == 0);
  }

  static ClusterOptions make_opts() {
    ClusterOptions o;
    o.node_count = 4;
    o.replication_factor = 2;
    return o;
  }
};

ScenarioConfig rich_scenario() {
  ScenarioConfig cfg;
  cfg.seed = 101;
  cfg.window = TimeRange{kT0, kT0 + 4 * 3600};
  cfg.background_scale = 0.5;
  titanlog::HotspotSpec hs;
  hs.type = EventType::kMachineCheck;
  hs.location = topo::Coord{4, 2, -1, -1, -1};  // cabinet c2-4
  hs.window = TimeRange{kT0 + 3600, kT0 + 2 * 3600};
  hs.rate_per_node_hour = 8.0;
  cfg.hotspots.push_back(hs);
  cfg.jobs = titanlog::JobMixSpec{.users = 8, .apps = 5, .jobs_per_hour = 40,
                                  .max_size_log2 = 6};
  return cfg;
}

LoadedCluster& shared_fixture() {
  static LoadedCluster fixture(rich_scenario());
  return fixture;
}

// ----------------------------------------------------------------- context

TEST(ContextTest, JsonRoundTrip) {
  Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 3600};
  ctx.types = {EventType::kMachineCheck, EventType::kLustreError};
  ctx.location = topo::Coord{17, 3, 1, -1, -1};
  ctx.users = {"usr1"};
  ctx.apps = {"LAMMPS", "VASP"};
  auto back = Context::from_json(ctx.to_json());
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back->window, ctx.window);
  EXPECT_EQ(back->types, ctx.types);
  EXPECT_EQ(topo::format_cname(*back->location), "c3-17c1");
  EXPECT_EQ(back->users, ctx.users);
  EXPECT_EQ(back->apps, ctx.apps);
}

TEST(ContextTest, FromJsonValidation) {
  auto bad = [](const char* text) {
    auto j = Json::parse(text);
    HPCLA_CHECK(j.is_ok());
    return Context::from_json(j.value());
  };
  EXPECT_FALSE(bad(R"({})").is_ok());  // missing window
  EXPECT_FALSE(bad(R"({"window":{"begin":10,"end":10}})").is_ok());  // empty
  EXPECT_FALSE(bad(R"({"window":{"begin":0,"end":1},"types":["Nope"]})").is_ok());
  EXPECT_FALSE(bad(R"({"window":{"begin":0,"end":1},"location":"c99-0"})").is_ok());
  EXPECT_FALSE(bad(R"({"window":{"begin":0,"end":1},"users":"usr1"})").is_ok());
  auto system_loc =
      bad(R"({"window":{"begin":0,"end":1},"location":"system"})");
  ASSERT_TRUE(system_loc.is_ok());
  EXPECT_FALSE(system_loc->location.has_value());
}

TEST(ContextTest, Predicates) {
  Context ctx;
  ctx.window = TimeRange{0, 10};
  EXPECT_TRUE(ctx.wants_type(EventType::kDvsError));  // empty = all
  ctx.types = {EventType::kMachineCheck};
  EXPECT_TRUE(ctx.wants_type(EventType::kMachineCheck));
  EXPECT_FALSE(ctx.wants_type(EventType::kDvsError));
  EXPECT_TRUE(ctx.wants_node(0));
  ctx.location = topo::Coord{0, 0, -1, -1, -1};
  EXPECT_TRUE(ctx.wants_node(0));
  EXPECT_FALSE(ctx.wants_node(96));  // second cabinet
  EXPECT_TRUE(ctx.wants_user("anyone"));
  ctx.users = {"usr1"};
  EXPECT_FALSE(ctx.wants_user("usr2"));
}

// ----------------------------------------------------------------- planner

TEST(PlannerTest, TypeRestrictedContextsScanByTime) {
  Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 3600};
  ctx.types = {EventType::kMachineCheck};
  EXPECT_EQ(plan_event_scan(ctx), ScanPlan::kByTime);
  EXPECT_EQ(event_partition_keys(ctx, ScanPlan::kByTime).size(), 1u);
}

TEST(PlannerTest, NarrowLocationScansByLocation) {
  Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 3600};
  ctx.location = topo::Coord{0, 0, 0, 0, -1};  // one blade = 4 nodes
  EXPECT_EQ(plan_event_scan(ctx), ScanPlan::kByLocation);
  EXPECT_EQ(event_partition_keys(ctx, ScanPlan::kByLocation).size(), 4u);
}

TEST(PlannerTest, WholeCabinetWithTypesPrefersByTime) {
  Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 3600};
  ctx.location = topo::Coord{4, 2, -1, -1, -1};  // 96 nodes
  ctx.types = {EventType::kMachineCheck};        // 1 key vs 96 keys
  EXPECT_EQ(plan_event_scan(ctx), ScanPlan::kByTime);
}

TEST(PlannerTest, KeysCoverHourRange) {
  Context ctx;
  ctx.window = TimeRange{kT0 + 1800, kT0 + 3 * 3600 + 1};  // hours 0,1,2,3
  ctx.types = {EventType::kLustreError};
  auto keys = event_partition_keys(ctx, ScanPlan::kByTime);
  ASSERT_EQ(keys.size(), 4u);
  EXPECT_EQ(keys.front(), model::event_time_key(kHour0, EventType::kLustreError));
  EXPECT_EQ(keys.back(),
            model::event_time_key(kHour0 + 3, EventType::kLustreError));
}

// ------------------------------------------------------------------ events

TEST(FetchEventsTest, MatchesGroundTruthExactly) {
  auto& f = shared_fixture();
  Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 4 * 3600};
  auto fetched = fetch_events(f.engine, f.cluster, ctx);
  ASSERT_EQ(fetched.size(), f.logs.events.size());
  for (std::size_t i = 0; i < fetched.size(); ++i) {
    EXPECT_EQ(fetched[i], f.logs.events[i]) << "at " << i;
  }
}

TEST(FetchEventsTest, WindowSubsetsAreExact) {
  auto& f = shared_fixture();
  Context ctx;
  ctx.window = TimeRange{kT0 + 1234, kT0 + 7777};
  auto fetched = fetch_events(f.engine, f.cluster, ctx);
  std::size_t expected = 0;
  for (const auto& e : f.logs.events) {
    if (ctx.window.contains(e.ts)) ++expected;
  }
  EXPECT_EQ(fetched.size(), expected);
}

TEST(FetchEventsTest, TypeAndLocationFiltersAgree) {
  auto& f = shared_fixture();
  Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 4 * 3600};
  ctx.types = {EventType::kMachineCheck};
  ctx.location = topo::Coord{4, 2, -1, -1, -1};
  auto fetched = fetch_events(f.engine, f.cluster, ctx);
  std::size_t expected = 0;
  for (const auto& e : f.logs.events) {
    if (e.type == EventType::kMachineCheck && ctx.wants_node(e.node)) {
      ++expected;
    }
  }
  EXPECT_EQ(fetched.size(), expected);
  EXPECT_GT(fetched.size(), 100u);  // the hotspot is here
}

TEST(FetchEventsTest, BothPlansReturnIdenticalResults) {
  auto& f = shared_fixture();
  Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 2 * 3600};
  ctx.location = topo::Coord{4, 2, 0, -1, -1};  // one cage: 32 nodes
  // Force each plan via the key enumerator + manual filtering comparison.
  auto via_planner = fetch_events(f.engine, f.cluster, ctx);
  std::set<std::pair<UnixSeconds, std::int64_t>> seen;
  for (const auto& e : via_planner) seen.insert({e.ts, e.seq});
  std::size_t expected = 0;
  for (const auto& e : f.logs.events) {
    if (ctx.window.contains(e.ts) && ctx.wants_node(e.node)) {
      ++expected;
      EXPECT_TRUE(seen.contains({e.ts, e.seq}));
    }
  }
  EXPECT_EQ(via_planner.size(), expected);
}

TEST(RawLogViewTest, NewestFirstAndBounded) {
  auto& f = shared_fixture();
  Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 4 * 3600};
  auto view = raw_log_view(f.engine, f.cluster, ctx, 50);
  ASSERT_EQ(view.size(), 50u);
  for (std::size_t i = 1; i < view.size(); ++i) {
    EXPECT_GE(view[i - 1].ts, view[i].ts);
  }
}

// -------------------------------------------------------------------- jobs

TEST(FetchJobsTest, OverlapSemantics) {
  auto& f = shared_fixture();
  Context ctx;
  ctx.window = TimeRange{kT0 + 3600, kT0 + 7200};
  auto jobs = fetch_jobs(f.engine, f.cluster, ctx);
  std::set<std::int64_t> expected;
  for (const auto& j : f.logs.jobs) {
    if (j.end > ctx.window.begin && j.start < ctx.window.end) {
      expected.insert(j.apid);
    }
  }
  std::set<std::int64_t> got;
  for (const auto& j : jobs) got.insert(j.apid);
  EXPECT_EQ(got, expected);
}

TEST(FetchJobsTest, UserRestrictionUsesUserTable) {
  auto& f = shared_fixture();
  Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 4 * 3600};
  ctx.users = {"usr1"};
  auto jobs = fetch_jobs(f.engine, f.cluster, ctx);
  ASSERT_FALSE(jobs.empty());
  std::size_t expected = 0;
  for (const auto& j : f.logs.jobs) {
    if (j.user == "usr1") ++expected;
  }
  EXPECT_EQ(jobs.size(), expected);
  for (const auto& j : jobs) EXPECT_EQ(j.user, "usr1");
}

TEST(FetchJobsTest, AppRestriction) {
  auto& f = shared_fixture();
  Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 4 * 3600};
  ctx.apps = {"LAMMPS"};
  auto jobs = fetch_jobs(f.engine, f.cluster, ctx);
  ASSERT_FALSE(jobs.empty());
  for (const auto& j : jobs) EXPECT_EQ(j.app_name, "LAMMPS");
}

TEST(AppsRunningAtTest, SnapshotMatchesGroundTruth) {
  auto& f = shared_fixture();
  const UnixSeconds t = kT0 + 2 * 3600;
  auto running = apps_running_at(f.engine, f.cluster, t);
  std::set<std::int64_t> expected;
  for (const auto& j : f.logs.jobs) {
    if (j.start <= t && t < j.end) expected.insert(j.apid);
  }
  std::set<std::int64_t> got;
  for (const auto& j : running) got.insert(j.apid);
  EXPECT_EQ(got, expected);
  EXPECT_FALSE(got.empty());
}

// ---------------------------------------------------------------- synopsis

TEST(SynopsisTest, CountsMatchGroundTruth) {
  auto& f = shared_fixture();
  auto entries = fetch_synopsis(f.cluster, TimeRange{kT0, kT0 + 4 * 3600});
  std::map<std::pair<std::int64_t, EventType>, std::int64_t> expected;
  for (const auto& e : f.logs.events) {
    expected[{hour_bucket(e.ts), e.type}] += e.count;
  }
  ASSERT_EQ(entries.size(), expected.size());
  for (const auto& entry : entries) {
    EXPECT_EQ(entry.count, (expected[{entry.hour, entry.type}]))
        << "hour " << entry.hour << " type "
        << titanlog::event_id(entry.type);
  }
}

// ----------------------------------------------------------------- heatmap

TEST(HeatMapTest, MatchesGroundTruthAndFindsHotCabinet) {
  auto& f = shared_fixture();
  Context ctx;
  ctx.window = TimeRange{kT0 + 3600, kT0 + 2 * 3600};  // the hotspot hour
  ctx.types = {EventType::kMachineCheck};
  auto hm = build_heatmap(f.engine, f.cluster, ctx);

  std::vector<EventRecord> truth;
  for (const auto& e : f.logs.events) {
    if (e.type == EventType::kMachineCheck && ctx.window.contains(e.ts)) {
      truth.push_back(e);
    }
  }
  auto expected = heatmap_from_events(truth);
  EXPECT_EQ(hm.node_counts, expected.node_counts);
  EXPECT_EQ(hm.total, expected.total);

  // The hotspot cabinet dominates the cabinet roll-up.
  auto cabinets = hm.cabinet_counts();
  const int hot = (topo::Coord{4, 2, -1, -1, -1}).cabinet_index();
  const auto hottest = static_cast<int>(
      std::max_element(cabinets.begin(), cabinets.end()) - cabinets.begin());
  EXPECT_EQ(hottest, hot);
  // And the detector flags nodes inside it.
  auto anomalous = hm.anomalous_nodes(3.0);
  ASSERT_FALSE(anomalous.empty());
  EXPECT_EQ(topo::cabinet_of(anomalous.front().first), hot);
  EXPECT_EQ(hm.peak, anomalous.front().second);
}

TEST(HeatMapTest, EmptyContextIsAllZero) {
  auto& f = shared_fixture();
  Context ctx;
  ctx.window = TimeRange{kT0 + 100000 * 3600, kT0 + 100001 * 3600};
  auto hm = build_heatmap(f.engine, f.cluster, ctx);
  EXPECT_EQ(hm.total, 0);
  EXPECT_EQ(hm.peak, 0);
  EXPECT_TRUE(hm.anomalous_nodes().empty());
}

// ------------------------------------------------------------ distribution

TEST(DistributionTest, GroupByNamesRoundTrip) {
  for (auto g : {GroupBy::kCabinet, GroupBy::kCage, GroupBy::kBlade,
                 GroupBy::kNode, GroupBy::kEventType, GroupBy::kApplication,
                 GroupBy::kUser}) {
    auto back = group_by_from_string(group_by_name(g));
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value(), g);
  }
  EXPECT_FALSE(group_by_from_string("bogus").is_ok());
}

TEST(DistributionTest, ByTypeMatchesGroundTruth) {
  auto& f = shared_fixture();
  Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 4 * 3600};
  auto dist = distribution(f.engine, f.cluster, ctx, GroupBy::kEventType);
  std::map<std::string, std::int64_t> expected;
  for (const auto& e : f.logs.events) {
    expected[std::string(titanlog::event_id(e.type))] += e.count;
  }
  ASSERT_EQ(dist.size(), expected.size());
  std::int64_t prev = std::numeric_limits<std::int64_t>::max();
  for (const auto& entry : dist) {
    EXPECT_EQ(entry.count, expected[entry.label]) << entry.label;
    EXPECT_LE(entry.count, prev);  // descending
    prev = entry.count;
  }
}

TEST(DistributionTest, ByCabinetTopIsHotspot) {
  auto& f = shared_fixture();
  Context ctx;
  ctx.window = TimeRange{kT0 + 3600, kT0 + 2 * 3600};
  ctx.types = {EventType::kMachineCheck};
  auto dist = distribution(f.engine, f.cluster, ctx, GroupBy::kCabinet);
  ASSERT_FALSE(dist.empty());
  EXPECT_EQ(dist.front().label, "c2-4");
}

TEST(DistributionTest, ByBladeLabelsAreBladeLevel) {
  auto& f = shared_fixture();
  Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 3600};
  auto dist = distribution(f.engine, f.cluster, ctx, GroupBy::kBlade);
  ASSERT_FALSE(dist.empty());
  for (const auto& entry : dist) {
    auto coord = topo::parse_cname(entry.label);
    ASSERT_TRUE(coord.is_ok()) << entry.label;
    EXPECT_EQ(coord->level(), topo::LocationLevel::kBlade);
  }
}

TEST(DistributionTest, ByApplicationAttributesEvents) {
  auto& f = shared_fixture();
  Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 4 * 3600};
  auto dist = distribution(f.engine, f.cluster, ctx, GroupBy::kApplication);
  ASSERT_FALSE(dist.empty());
  // Ground truth via the same semantics.
  std::map<std::string, std::int64_t> expected;
  for (const auto& e : f.logs.events) {
    std::string label = "(idle)";
    for (const auto& j : f.logs.jobs) {
      if (j.start <= e.ts && e.ts < j.end &&
          std::find(j.nodes.begin(), j.nodes.end(), e.node) != j.nodes.end()) {
        label = j.app_name;
        break;
      }
    }
    expected[label] += e.count;
  }
  std::int64_t total_dist = 0;
  for (const auto& entry : dist) {
    EXPECT_EQ(entry.count, expected[entry.label]) << entry.label;
    total_dist += entry.count;
  }
  std::int64_t total_expected = 0;
  for (const auto& [_, c] : expected) total_expected += c;
  EXPECT_EQ(total_dist, total_expected);
}

TEST(DistributionTest, HourlyCoversWindow) {
  auto& f = shared_fixture();
  Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 4 * 3600};
  auto hourly = hourly_distribution(f.engine, f.cluster, ctx);
  ASSERT_EQ(hourly.size(), 4u);
  std::map<std::int64_t, std::int64_t> expected;
  for (const auto& e : f.logs.events) expected[hour_bucket(e.ts)] += e.count;
  for (const auto& [hour, count] : hourly) {
    EXPECT_EQ(count, expected[hour]) << hour;
  }
}

// -------------------------------------------------------------- timeseries

TEST(TimeSeriesTest, BinningEdges) {
  std::vector<EventRecord> events;
  EventRecord e;
  e.type = EventType::kMachineCheck;
  e.node = 0;
  for (UnixSeconds ts : {0, 59, 60, 119, 120}) {
    e.ts = ts;
    events.push_back(e);
  }
  auto series = bin_series(events, TimeRange{0, 180}, 60);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0], 2.0);
  EXPECT_DOUBLE_EQ(series[1], 2.0);
  EXPECT_DOUBLE_EQ(series[2], 1.0);
  // Partial last bin.
  auto partial = bin_series(events, TimeRange{0, 150}, 60);
  EXPECT_EQ(partial.size(), 3u);
  // Weighted by count.
  events[0].count = 10;
  auto weighted = bin_series(events, TimeRange{0, 180}, 60);
  EXPECT_DOUBLE_EQ(weighted[0], 11.0);
}

TEST(TimeSeriesTest, CrossCorrelationDetectsKnownLag) {
  // b = a shifted right by 3 bins.
  std::vector<double> a(200, 0.0);
  std::vector<double> b(200, 0.0);
  Rng rng(5);
  for (int i = 0; i < 180; ++i) {
    if (rng.chance(0.2)) {
      a[static_cast<std::size_t>(i)] = 1.0;
      b[static_cast<std::size_t>(i + 3)] = 1.0;
    }
  }
  auto corr = cross_correlation(a, b, 10);
  EXPECT_EQ(peak_lag(corr, 10), 3);
  EXPECT_GT(corr[13], 0.9);
}

TEST(TimeSeriesTest, CrossCorrelationOfConstantIsZero) {
  std::vector<double> a(50, 1.0);
  std::vector<double> b(50, 2.0);
  auto corr = cross_correlation(a, b, 5);
  for (double c : corr) EXPECT_DOUBLE_EQ(c, 0.0);
}

// -------------------------------------------------------- transfer entropy

TEST(TransferEntropyTest, DirectionalCoupling) {
  // y[t+1] = x[t]: maximal X->Y transfer, none the other way.
  Rng rng(17);
  std::vector<double> x(2000);
  std::vector<double> y(2000, 0.0);
  for (std::size_t t = 0; t < x.size(); ++t) x[t] = rng.chance(0.5) ? 1.0 : 0.0;
  for (std::size_t t = 0; t + 1 < y.size(); ++t) y[t + 1] = x[t];
  auto r = transfer_entropy_pair(x, y);
  EXPECT_GT(r.te_xy, 0.8);   // ~1 bit
  EXPECT_LT(r.te_yx, 0.05);
  EXPECT_GT(r.net(), 0.75);
}

TEST(TransferEntropyTest, IndependentSeriesNearZero) {
  Rng rng(23);
  std::vector<double> x(2000);
  std::vector<double> y(2000);
  for (std::size_t t = 0; t < x.size(); ++t) {
    x[t] = rng.chance(0.3) ? 1.0 : 0.0;
    y[t] = rng.chance(0.3) ? 1.0 : 0.0;
  }
  auto r = transfer_entropy_pair(x, y);
  EXPECT_LT(r.te_xy, 0.02);
  EXPECT_LT(r.te_yx, 0.02);
}

TEST(TransferEntropyTest, NonNegativeAndSymmetricOnIdentical) {
  std::vector<double> x{1, 0, 1, 1, 0, 0, 1, 0, 1, 1};
  auto r = transfer_entropy_pair(x, x);
  EXPECT_GE(r.te_xy, 0.0);
  EXPECT_NEAR(r.te_xy, r.te_yx, 1e-12);
}

TEST(TransferEntropyTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(transfer_entropy({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(transfer_entropy({1.0}, {1.0}), 0.0);
  std::vector<double> flat(100, 0.0);
  EXPECT_DOUBLE_EQ(transfer_entropy(flat, flat), 0.0);
}

TEST(TransferEntropyTest, ProfilePeaksAtCouplingLag) {
  // y[t] = x[t-4]; profile over shifts should peak at s = 3 (since the TE
  // estimator already looks one step ahead).
  Rng rng(29);
  std::vector<double> x(3000);
  std::vector<double> y(3000, 0.0);
  for (std::size_t t = 0; t < x.size(); ++t) x[t] = rng.chance(0.4) ? 1.0 : 0.0;
  for (std::size_t t = 4; t < y.size(); ++t) y[t] = x[t - 4];
  auto profile = transfer_entropy_profile(x, y, 8);
  const auto peak = static_cast<std::size_t>(
      std::max_element(profile.begin(), profile.end()) - profile.begin());
  EXPECT_EQ(peak, 3u);
  EXPECT_GT(profile[3], 0.8);
}

class TransferEntropyBinsTest : public ::testing::TestWithParam<int> {};

TEST_P(TransferEntropyBinsTest, CoupledBeatsIndependentAtAnyBinCount) {
  const int levels = GetParam();
  Rng rng(31);
  std::vector<double> x(3000);
  std::vector<double> y(3000, 0.0);
  std::vector<double> z(3000);
  for (std::size_t t = 0; t < x.size(); ++t) {
    x[t] = static_cast<double>(rng.next_below(5));
    z[t] = static_cast<double>(rng.next_below(5));
  }
  for (std::size_t t = 0; t + 1 < y.size(); ++t) y[t + 1] = x[t];
  EXPECT_GT(transfer_entropy(x, y, levels), transfer_entropy(z, y, levels) + 0.1);
}

INSTANTIATE_TEST_SUITE_P(Bins, TransferEntropyBinsTest,
                         ::testing::Values(2, 3, 4, 8));

// -------------------------------------------------------------------- text

TEST(TextTest, TokenizeBehaviour) {
  auto tokens = tokenize(
      "LustreError: 137-5: atlas-OST0042-osc: operation ost_write failed "
      "rc = -110");
  // Lowercased, >= 2 chars, pure numbers dropped, ids kept.
  EXPECT_TRUE(std::find(tokens.begin(), tokens.end(), "ost0042") != tokens.end());
  EXPECT_TRUE(std::find(tokens.begin(), tokens.end(), "ost_write") != tokens.end());
  EXPECT_TRUE(std::find(tokens.begin(), tokens.end(), "137") == tokens.end());
  EXPECT_TRUE(std::find(tokens.begin(), tokens.end(), "110") == tokens.end());
  EXPECT_TRUE(std::find(tokens.begin(), tokens.end(), "lustreerror") != tokens.end());
  EXPECT_TRUE(tokenize("...!!!").empty());
  EXPECT_TRUE(tokenize("").empty());
}

TEST(TextTest, WordCountMessagesFindsDominantTerm) {
  std::vector<std::string> messages;
  for (int i = 0; i < 50; ++i) {
    messages.push_back("ost0042 unreachable from client");
  }
  for (int i = 0; i < 5; ++i) {
    messages.push_back("ost0007 slow ping");
  }
  auto top = word_count_messages(messages, 3);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].term, "ost0042");
  EXPECT_EQ(top[0].count, 50);
}

TEST(TextTest, TfIdfPicksBucketSpecificTerm) {
  // 4 documents of generic chatter; one document saturated with a unique id.
  std::vector<std::vector<std::string>> docs(5);
  for (int d = 0; d < 4; ++d) {
    for (int i = 0; i < 20; ++i) {
      docs[static_cast<std::size_t>(d)].push_back("chatter");
      docs[static_cast<std::size_t>(d)].push_back("osc");
    }
  }
  for (int i = 0; i < 40; ++i) docs[4].push_back("ost0042");
  auto top = tf_idf_top_terms(docs, 2);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].term, "ost0042");
}

TEST(TextTest, StormScenarioRootCause) {
  // Fig 7 reproduction at test scale: storm + background chatter; both
  // word count and the TF-IDF storm signature must surface the faulty OST.
  ScenarioConfig cfg;
  cfg.seed = 77;
  cfg.window = TimeRange{kT0, kT0 + 3600};
  cfg.background_scale = 1.0;
  titanlog::LustreStormSpec storm;
  storm.start = kT0 + 1200;
  storm.duration_seconds = 180;
  storm.ost_index = 0x42;
  storm.messages_per_second = 60;
  cfg.storms.push_back(storm);
  LoadedCluster f(cfg);

  Context ctx;
  ctx.window = cfg.window;
  ctx.types = {EventType::kLustreError};
  auto top = word_count(f.engine, f.cluster, ctx, 5);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].term, "ost0042");

  auto signature = storm_signature(f.engine, f.cluster, ctx, 60, 5);
  ASSERT_FALSE(signature.empty());
  EXPECT_EQ(signature[0].term, "ost0042");
}

// ------------------------------------------------------------- reliability

TEST(ReliabilityTest, ReportConsistentWithGroundTruth) {
  auto& f = shared_fixture();
  Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 4 * 3600};
  auto report = reliability_report(f.engine, f.cluster, ctx);
  std::map<EventType, std::int64_t> expected;
  std::int64_t fatal = 0;
  for (const auto& e : f.logs.events) {
    expected[e.type] += e.count;
    if (titanlog::event_info(e.type).severity == titanlog::Severity::kFatal) {
      fatal += e.count;
    }
  }
  EXPECT_EQ(report.counts_by_type, expected);
  EXPECT_EQ(report.fatal_events, fatal);
  if (fatal > 0) {
    EXPECT_NEAR(report.mtbf_seconds,
                4.0 * 3600.0 / static_cast<double>(fatal), 1e-9);
  }
  EXPECT_GT(report.events_per_node_hour, 0.0);
  EXPECT_GT(report.affected_nodes, 0);
}

TEST(ReliabilityTest, AppImpactLinksFailuresToEvents) {
  auto& f = shared_fixture();
  Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 4 * 3600};
  auto impact = app_impact(f.engine, f.cluster, ctx);
  EXPECT_EQ(impact.jobs, static_cast<std::int64_t>(f.logs.jobs.size()));
  std::int64_t failed = 0;
  for (const auto& j : f.logs.jobs) failed += j.failed() ? 1 : 0;
  EXPECT_EQ(impact.failed_jobs, failed);
  EXPECT_GE(impact.failed_with_event, 0);
  EXPECT_LE(impact.failed_with_event, impact.failed_jobs);
}

}  // namespace
}  // namespace hpcla::analytics
