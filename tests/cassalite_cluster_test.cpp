// Tests for the token ring and the replicated cluster: placement, balance,
// consistency levels, hinted handoff, read repair, fault injection.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <thread>

#include "cassalite/cluster.hpp"
#include "cassalite/ring.hpp"
#include "common/faultsim.hpp"

namespace hpcla::cassalite {
namespace {

Row event_row(std::int64_t ts, std::int64_t seq, const std::string& msg) {
  Row r;
  r.key = ClusteringKey::of({Value(ts), Value(seq)});
  r.set("msg", msg);
  return r;
}

// -------------------------------------------------------------------- ring

TEST(TokenRingTest, PrimaryIsDeterministic) {
  TokenRing ring(8);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_EQ(ring.primary(key), ring.primary(key));
  }
}

TEST(TokenRingTest, ReplicasAreDistinctAndPrimaryFirst) {
  TokenRing ring(8);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "partition-" + std::to_string(i);
    auto reps = ring.replicas(key, 3);
    ASSERT_EQ(reps.size(), 3u);
    EXPECT_EQ(reps[0], ring.primary(key));
    std::set<NodeIndex> uniq(reps.begin(), reps.end());
    EXPECT_EQ(uniq.size(), 3u);
  }
}

TEST(TokenRingTest, RfClampedToNodeCount) {
  TokenRing ring(2);
  auto reps = ring.replicas("k", 5);
  EXPECT_EQ(reps.size(), 2u);
  auto zero = ring.replicas("k", 0);
  EXPECT_EQ(zero.size(), 1u);
}

TEST(TokenRingTest, LoadIsBalanced) {
  // Property (Fig 4): with vnodes, partitions spread evenly; CV of the
  // per-node partition counts stays small.
  for (std::size_t nodes : {4u, 8u, 16u, 32u}) {
    TokenRing ring(nodes, 128);
    std::map<NodeIndex, int> counts;
    const int kKeys = 20000;
    for (int i = 0; i < kKeys; ++i) {
      counts[ring.primary("hour-" + std::to_string(i) + "|type-" +
                          std::to_string(i % 17))]++;
    }
    EXPECT_EQ(counts.size(), nodes);
    double mean = static_cast<double>(kKeys) / static_cast<double>(nodes);
    for (const auto& [_, c] : counts) {
      EXPECT_GT(c, mean * 0.6);
      EXPECT_LT(c, mean * 1.4);
    }
  }
}

TEST(TokenRingTest, SingleNodeOwnsEverything) {
  TokenRing ring(1);
  EXPECT_EQ(ring.primary("anything"), 0u);
  EXPECT_EQ(ring.replicas("anything", 3).size(), 1u);
}

TEST(TokenRingTest, SeedChangesPlacement) {
  TokenRing a(8, 64, 1);
  TokenRing b(8, 64, 2);
  int moved = 0;
  for (int i = 0; i < 100; ++i) {
    const std::string key = "k" + std::to_string(i);
    moved += a.primary(key) != b.primary(key) ? 1 : 0;
  }
  EXPECT_GT(moved, 50);
}

// ------------------------------------------------------------- consistency

TEST(RequiredAcksTest, Table) {
  EXPECT_EQ(required_acks(Consistency::kOne, 3), 1u);
  EXPECT_EQ(required_acks(Consistency::kQuorum, 3), 2u);
  EXPECT_EQ(required_acks(Consistency::kQuorum, 5), 3u);
  EXPECT_EQ(required_acks(Consistency::kQuorum, 1), 1u);
  EXPECT_EQ(required_acks(Consistency::kAll, 3), 3u);
}

// ----------------------------------------------------------------- cluster

ClusterOptions small_cluster() {
  ClusterOptions o;
  o.node_count = 4;
  o.replication_factor = 3;
  return o;
}

TEST(ClusterTest, DdlRegistryAndDuplicates) {
  Cluster c(small_cluster());
  TableSchema s;
  s.name = "event_by_time";
  s.partition_key_columns = {"hour", "type"};
  s.clustering_key_columns = {"ts", "seq"};
  EXPECT_TRUE(c.create_table(s).is_ok());
  EXPECT_EQ(c.create_table(s).code(), StatusCode::kAlreadyExists);
  auto fetched = c.schema("event_by_time");
  ASSERT_TRUE(fetched.is_ok());
  EXPECT_EQ(fetched->partition_key_columns.size(), 2u);
  EXPECT_FALSE(c.schema("nope").is_ok());
  EXPECT_EQ(c.schemas().size(), 1u);
}

TEST(ClusterTest, WriteReadRoundTrip) {
  Cluster c(small_cluster());
  ASSERT_TRUE(c.insert("t", "pk", event_row(10, 0, "hello")).is_ok());
  ReadQuery q;
  q.table = "t";
  q.partition_key = "pk";
  auto r = c.select(q);
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0].find("msg")->as_text(), "hello");
}

TEST(ClusterTest, DataLandsOnAllReplicas) {
  Cluster c(small_cluster());
  ASSERT_TRUE(c.insert("t", "pk", event_row(1, 0, "x"),
                       Consistency::kAll).is_ok());
  auto reps = c.replicas_of("pk");
  ASSERT_EQ(reps.size(), 3u);
  ReadQuery q;
  q.table = "t";
  q.partition_key = "pk";
  for (NodeIndex n : reps) {
    EXPECT_EQ(c.engine(n).read(q).rows.size(), 1u) << "replica " << n;
  }
  // The non-replica node must NOT have the data (ring boundaries hold).
  for (NodeIndex n = 0; n < c.node_count(); ++n) {
    if (std::find(reps.begin(), reps.end(), n) == reps.end()) {
      EXPECT_TRUE(c.engine(n).read(q).rows.empty()) << "non-replica " << n;
    }
  }
}

TEST(ClusterTest, WriteSurvivesMinorityNodeFailureAtQuorum) {
  Cluster c(small_cluster());
  auto reps = c.replicas_of("pk");
  c.kill_node(reps[0]);
  EXPECT_TRUE(c.insert("t", "pk", event_row(1, 0, "x"),
                       Consistency::kQuorum).is_ok());
  ReadQuery q;
  q.table = "t";
  q.partition_key = "pk";
  auto r = c.select(q, Consistency::kQuorum);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->rows.size(), 1u);
}

TEST(ClusterTest, WriteFailsWhenQuorumLost) {
  Cluster c(small_cluster());
  auto reps = c.replicas_of("pk");
  c.kill_node(reps[0]);
  c.kill_node(reps[1]);
  auto status = c.insert("t", "pk", event_row(1, 0, "x"), Consistency::kQuorum);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  // ONE still succeeds via the last live replica.
  EXPECT_TRUE(c.insert("t", "pk", event_row(2, 0, "y"),
                       Consistency::kOne).is_ok());
}

TEST(ClusterTest, AllRequiresEveryReplica) {
  Cluster c(small_cluster());
  auto reps = c.replicas_of("pk");
  c.kill_node(reps[2]);
  EXPECT_EQ(c.insert("t", "pk", event_row(1, 0, "x"), Consistency::kAll).code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(c.insert("t", "pk", event_row(1, 0, "x"),
                       Consistency::kQuorum).is_ok());
}

TEST(ClusterTest, HintedHandoffConvergesRevivedNode) {
  Cluster c(small_cluster());
  auto reps = c.replicas_of("pk");
  c.kill_node(reps[1]);
  for (std::int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(c.insert("t", "pk", event_row(i, 0, "m" + std::to_string(i)),
                         Consistency::kQuorum).is_ok());
  }
  EXPECT_EQ(c.pending_hints(), 10u);
  const std::size_t replayed = c.revive_node(reps[1]);
  EXPECT_EQ(replayed, 10u);
  EXPECT_EQ(c.pending_hints(), 0u);

  // The revived node now serves the full partition on a direct read.
  ReadQuery q;
  q.table = "t";
  q.partition_key = "pk";
  EXPECT_EQ(c.engine(reps[1]).read(q).rows.size(), 10u);
  EXPECT_EQ(c.metrics().hints_replayed, 10u);
}

TEST(ClusterTest, ReadRepairFixesStaleReplica) {
  Cluster c(small_cluster());
  auto reps = c.replicas_of("pk");
  // Write at ALL, then a newer overwrite while one replica is down (ONE ack
  // needed, hints disabled by... hints exist; to exercise read repair rather
  // than handoff, revive the node but drop its hints by reading first).
  ASSERT_TRUE(c.insert("t", "pk", event_row(1, 0, "v1"),
                       Consistency::kAll).is_ok());
  c.kill_node(reps[2]);
  ASSERT_TRUE(c.insert("t", "pk", event_row(1, 0, "v2"),
                       Consistency::kQuorum).is_ok());
  // Revive replays hints; to test read repair instead, inject staleness by
  // writing an extra row only reachable via the two live replicas, and
  // clear hints via revive on a *different* partition... Simplest: verify a
  // QUORUM read returns v2 regardless and repairs if views diverge.
  c.revive_node(reps[2]);
  ReadQuery q;
  q.table = "t";
  q.partition_key = "pk";
  auto r = c.select(q, Consistency::kAll);
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0].find("msg")->as_text(), "v2");
}

TEST(ClusterTest, ReadReconciliationPicksNewestAcrossReplicas) {
  // Force divergence: write v1 at ALL; kill replica A; write v2 at QUORUM;
  // read at ALL after reviving A *without* hint replay being possible —
  // we simulate that by checking the merged read wins even while A is
  // stale (read at QUORUM might not touch A, so use ALL and kill hints by
  // reading before revive).
  Cluster c(small_cluster());
  auto reps = c.replicas_of("pk");
  ASSERT_TRUE(c.insert("t", "pk", event_row(1, 0, "v1"),
                       Consistency::kAll).is_ok());
  c.kill_node(reps[0]);
  ASSERT_TRUE(c.insert("t", "pk", event_row(1, 0, "v2"),
                       Consistency::kQuorum).is_ok());
  // ALL read fails while a replica is down.
  ReadQuery q;
  q.table = "t";
  q.partition_key = "pk";
  EXPECT_EQ(c.select(q, Consistency::kAll).status().code(),
            StatusCode::kUnavailable);
  // QUORUM read (two live replicas) returns the newest value.
  auto r = c.select(q, Consistency::kQuorum);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->rows[0].find("msg")->as_text(), "v2");
}

TEST(ClusterTest, LiveNodeCountTracksKillsAndRevives) {
  Cluster c(small_cluster());
  EXPECT_EQ(c.live_node_count(), 4u);
  c.kill_node(0);
  c.kill_node(3);
  EXPECT_EQ(c.live_node_count(), 2u);
  EXPECT_FALSE(c.is_alive(0));
  EXPECT_TRUE(c.is_alive(1));
  c.revive_node(0);
  EXPECT_EQ(c.live_node_count(), 3u);
}

TEST(ClusterTest, PartitionKeyEnumeration) {
  ClusterOptions o;
  o.node_count = 4;
  o.replication_factor = 2;
  Cluster c(o);
  std::set<std::string> expected;
  for (int i = 0; i < 40; ++i) {
    const std::string pk = "part-" + std::to_string(i);
    ASSERT_TRUE(c.insert("t", pk, event_row(i, 0, "m")).is_ok());
    expected.insert(pk);
  }
  auto all = c.all_partition_keys("t");
  EXPECT_EQ(std::set<std::string>(all.begin(), all.end()), expected);

  // Primary partition keys across nodes partition the key set exactly.
  std::set<std::string> primaries;
  for (NodeIndex n = 0; n < c.node_count(); ++n) {
    for (const auto& k : c.primary_partition_keys(n, "t")) {
      EXPECT_TRUE(primaries.insert(k).second) << "key owned twice: " << k;
    }
  }
  EXPECT_EQ(primaries, expected);
}

TEST(ClusterTest, ConcurrentWritersAllLand) {
  ClusterOptions o;
  o.node_count = 4;
  o.replication_factor = 3;
  Cluster c(o);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(c.insert("t", "pk",
                             event_row(t, i, "w"),
                             Consistency::kQuorum).is_ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  ReadQuery q;
  q.table = "t";
  q.partition_key = "pk";
  auto r = c.select(q, Consistency::kAll);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->rows.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(c.metrics().writes_ok, static_cast<std::uint64_t>(kThreads * kPerThread));
}

// -------------------------------------------------------------- rack aware

TEST(RackAwareTest, ReplicasSpanDistinctRacks) {
  TokenRing ring(6, 64);
  std::vector<int> rack_of{0, 1, 2, 0, 1, 2};  // 6 nodes over 3 racks
  for (int i = 0; i < 200; ++i) {
    auto reps = ring.replicas_rack_aware("k" + std::to_string(i), 3, rack_of);
    ASSERT_EQ(reps.size(), 3u);
    std::set<int> racks;
    for (auto n : reps) racks.insert(rack_of[n]);
    EXPECT_EQ(racks.size(), 3u) << "key k" << i;
  }
}

TEST(RackAwareTest, FillsBeyondRackCount) {
  TokenRing ring(6, 64);
  std::vector<int> rack_of{0, 1, 0, 1, 0, 1};  // 2 racks
  auto reps = ring.replicas_rack_aware("key", 4, rack_of);
  ASSERT_EQ(reps.size(), 4u);
  std::set<NodeIndex> distinct(reps.begin(), reps.end());
  EXPECT_EQ(distinct.size(), 4u);
  std::set<int> racks;
  for (auto n : reps) racks.insert(rack_of[n]);
  EXPECT_EQ(racks.size(), 2u);  // both racks used before doubling up
}

TEST(RackAwareTest, PrimaryMatchesRingOwner) {
  TokenRing ring(6, 64);
  std::vector<int> rack_of{0, 1, 2, 0, 1, 2};
  for (int i = 0; i < 50; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_EQ(ring.replicas_rack_aware(key, 3, rack_of).front(),
              ring.primary(key));
  }
}

TEST(RackAwareTest, ClusterSurvivesWholeRackLossAtQuorum) {
  ClusterOptions o;
  o.node_count = 6;
  o.replication_factor = 3;
  o.racks = 3;
  Cluster c(o);
  EXPECT_EQ(c.rack_of(0), 0);
  EXPECT_EQ(c.rack_of(4), 1);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(c.insert("t", "p" + std::to_string(i), event_row(i, i, "m"),
                         Consistency::kQuorum).is_ok());
  }
  // An entire rack burns down: every partition still has 2 of 3 replicas.
  c.kill_rack(1);
  EXPECT_EQ(c.live_node_count(), 4u);
  for (int i = 0; i < 30; ++i) {
    ReadQuery q;
    q.table = "t";
    q.partition_key = "p" + std::to_string(i);
    auto r = c.select(q, Consistency::kQuorum);
    ASSERT_TRUE(r.is_ok()) << "partition p" << i;
    EXPECT_EQ(r->rows.size(), 1u);
    ASSERT_TRUE(c.insert("t", q.partition_key, event_row(100 + i, i, "w"),
                         Consistency::kQuorum).is_ok());
  }
}

TEST(RackAwareTest, RackBlindClusterCanLoseQuorumToOneRack) {
  // Control: without rack awareness some partition has 2+ replicas in one
  // "rack" (node index mod 3), so losing that rack kills its quorum.
  ClusterOptions o;
  o.node_count = 6;
  o.replication_factor = 3;
  o.racks = 0;
  Cluster c(o);
  EXPECT_EQ(c.rack_of(2), -1);
  bool some_partition_vulnerable = false;
  for (int i = 0; i < 200 && !some_partition_vulnerable; ++i) {
    auto reps = c.replicas_of("p" + std::to_string(i));
    std::map<int, int> per_rack;
    for (auto n : reps) per_rack[static_cast<int>(n % 3)]++;
    for (const auto& [_, count] : per_rack) {
      if (count >= 2) some_partition_vulnerable = true;
    }
  }
  EXPECT_TRUE(some_partition_vulnerable);
}

TEST(ClusterPagingTest, WalksWholePartitionWithoutDupsOrGaps) {
  Cluster c(small_cluster());
  constexpr int kRows = 100;
  for (int i = 0; i < kRows; ++i) {
    ASSERT_TRUE(c.insert("t", "pk", event_row(i, i, "m" + std::to_string(i)))
                    .is_ok());
  }
  ReadQuery q;
  q.table = "t";
  q.partition_key = "pk";
  std::vector<std::int64_t> seen;
  std::optional<ClusteringKey> token;
  int pages = 0;
  while (true) {
    auto page = c.select_page(q, 7, token);
    ASSERT_TRUE(page.is_ok());
    for (const auto& row : page->rows) {
      seen.push_back(row.key.parts[0].as_int());
    }
    ++pages;
    if (!page->next) break;
    token = page->next;
    ASSERT_LT(pages, 200) << "paging did not terminate";
  }
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kRows));
  for (int i = 0; i < kRows; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(pages, (kRows + 6) / 7);
}

TEST(ClusterPagingTest, ExactMultipleEndsWithEmptyLastSignal) {
  Cluster c(small_cluster());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(c.insert("t", "pk", event_row(i, i, "m")).is_ok());
  }
  ReadQuery q;
  q.table = "t";
  q.partition_key = "pk";
  auto first = c.select_page(q, 10);
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(first->rows.size(), 10u);
  EXPECT_FALSE(first->next.has_value());  // peeked row proves completion
}

TEST(ClusterPagingTest, RespectsSliceBounds) {
  Cluster c(small_cluster());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(c.insert("t", "pk", event_row(i, i, "m")).is_ok());
  }
  ReadQuery q;
  q.table = "t";
  q.partition_key = "pk";
  q.slice.lower = ClusteringKey::of({Value(5)});
  q.slice.upper = ClusteringKey::of({Value(15)});
  std::size_t total = 0;
  std::optional<ClusteringKey> token;
  while (true) {
    auto page = c.select_page(q, 4, token);
    ASSERT_TRUE(page.is_ok());
    total += page->rows.size();
    for (const auto& row : page->rows) {
      EXPECT_GE(row.key.parts[0].as_int(), 5);
      EXPECT_LT(row.key.parts[0].as_int(), 15);
    }
    if (!page->next) break;
    token = page->next;
  }
  EXPECT_EQ(total, 10u);
}

TEST(ClusterPagingTest, EmptyPartition) {
  Cluster c(small_cluster());
  ReadQuery q;
  q.table = "t";
  q.partition_key = "absent";
  auto page = c.select_page(q, 5);
  ASSERT_TRUE(page.is_ok());
  EXPECT_TRUE(page->rows.empty());
  EXPECT_FALSE(page->next.has_value());
}

// -------------------------------------------------------------- resilience

TEST(ResilienceTest, HintQueueIsBoundedPerNodeOldestDroppedFirst) {
  ClusterOptions o = small_cluster();
  o.max_hints_per_node = 4;
  Cluster c(o);
  const auto reps = c.replicas_of("pk");
  c.kill_node(reps[1]);
  for (std::int64_t i = 0; i < 7; ++i) {
    ASSERT_TRUE(c.insert("t", "pk", event_row(i, 0, "m" + std::to_string(i)),
                         Consistency::kQuorum)
                    .is_ok());
  }
  EXPECT_EQ(c.pending_hints(), 4u);  // bound held
  EXPECT_EQ(c.metrics().hints_overflowed, 3u);
  EXPECT_EQ(c.revive_node(reps[1]), 4u);

  // Only the 4 newest writes were hinted; the revived node misses 0..2
  // until read repair touches the partition.
  ReadQuery q;
  q.table = "t";
  q.partition_key = "pk";
  const auto rows = c.engine(reps[1]).read(q).rows;
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows.front().key.parts[0].as_int(), 3);
}

TEST(ResilienceTest, ExpiredHintsAreDroppedNotReplayed) {
  SimClock clock;
  ClusterOptions o = small_cluster();
  o.hint_ttl_ms = 100;
  Cluster c(o);
  c.set_clock(&clock);
  const auto reps = c.replicas_of("pk");
  c.kill_node(reps[1]);
  ASSERT_TRUE(
      c.insert("t", "pk", event_row(1, 0, "old"), Consistency::kQuorum)
          .is_ok());
  clock.advance_ms(150);  // past the TTL
  ASSERT_TRUE(
      c.insert("t", "pk", event_row(2, 0, "new"), Consistency::kQuorum)
          .is_ok());
  // Replay applies only the fresh hint; the expired one is counted, not
  // delivered.
  EXPECT_EQ(c.revive_node(reps[1]), 1u);
  EXPECT_EQ(c.metrics().hints_expired, 1u);
  ReadQuery q;
  q.table = "t";
  q.partition_key = "pk";
  const auto rows = c.engine(reps[1]).read(q).rows;
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].find("msg")->as_text(), "new");
}

TEST(ResilienceTest, TransientWriteErrorsAreRetriedAndCounted) {
  SimClock clock;
  FaultOptions fopts;
  fopts.seed = 21;
  fopts.write_error_rate = 0.3;
  fopts.base_latency_ms = 1;
  ClusterOptions o = small_cluster();
  FaultInjector injector(o.node_count, fopts, &clock);
  Cluster c(o);
  c.set_fault_injector(&injector);
  for (std::int64_t i = 0; i < 100; ++i) {
    // At a 30% transient error rate with 2 retries per replica, QUORUM
    // writes virtually never fail (p(replica lost) ~ 0.027).
    const Status st = c.insert("t", "pk" + std::to_string(i % 5),
                               event_row(i, 0, "m"), Consistency::kQuorum);
    EXPECT_TRUE(st.is_ok() || st.code() == StatusCode::kUnavailable);
  }
  const ClusterMetrics m = c.metrics();
  EXPECT_GT(m.write_retries, 0u);
  EXPECT_GT(m.writes_ok, 90u);
  EXPECT_GT(injector.counts().write_errors, 0u);
}

TEST(ResilienceTest, DigestMismatchTriggersRepairOfStaleReplica) {
  // Build divergence the honest way: a hint expires, so the revived
  // replica never hears about the overwrite. A QUORUM-of-digests read then
  // disagrees, falls back to full reads + LWW merge, and repairs it.
  SimClock clock;
  ClusterOptions o = small_cluster();
  o.hint_ttl_ms = 50;
  Cluster c(o);
  c.set_clock(&clock);
  ASSERT_TRUE(
      c.insert("t", "pk", event_row(1, 0, "v1"), Consistency::kAll).is_ok());
  const auto reps = c.replicas_of("pk");
  c.kill_node(reps[0]);
  ASSERT_TRUE(
      c.insert("t", "pk", event_row(1, 0, "v2"), Consistency::kQuorum)
          .is_ok());
  clock.advance_ms(100);         // the hint for reps[0] expires
  EXPECT_EQ(c.revive_node(reps[0]), 0u);
  EXPECT_EQ(c.metrics().hints_expired, 1u);

  ReadQuery q;
  q.table = "t";
  q.partition_key = "pk";
  // The stale replica really is stale before the coordinated read...
  ASSERT_EQ(c.engine(reps[0]).read(q).rows[0].find("msg")->as_text(), "v1");
  const auto r = c.select(q, Consistency::kAll);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->rows[0].find("msg")->as_text(), "v2");
  EXPECT_GT(c.metrics().digest_mismatches, 0u);
  EXPECT_GT(c.metrics().read_repairs, 0u);
  // ...and repaired after it.
  EXPECT_EQ(c.engine(reps[0]).read(q).rows[0].find("msg")->as_text(), "v2");
}

TEST(ResilienceTest, TracedReadReportsSpeculationAndLatency) {
  SimClock clock;
  FaultOptions fopts;
  fopts.seed = 4;
  fopts.base_latency_ms = 5;
  fopts.slow_latency_ms = 200;
  ClusterOptions o;
  o.node_count = 5;
  o.replication_factor = 3;
  o.speculative_delay_ms = 5;
  o.read_timeout_ms = 1000;
  FaultInjector injector(o.node_count, fopts, &clock);
  Cluster c(o);
  c.set_fault_injector(&injector);
  ASSERT_TRUE(
      c.insert("t", "pk", event_row(1, 0, "x"), Consistency::kAll).is_ok());

  ReadQuery q;
  q.table = "t";
  q.partition_key = "pk";
  const auto order = c.read_order_of("pk");
  ASSERT_GE(order.size(), 3u);
  injector.slow_window(order[0], 0, INT64_MAX / 2);  // first-choice replica

  const auto traced = c.select_traced(q, Consistency::kQuorum);
  ASSERT_TRUE(traced.is_ok());
  EXPECT_TRUE(traced->speculated);
  EXPECT_EQ(traced->latency_ms, 10);  // spec_delay(5) + base(5), not 200
  EXPECT_EQ(traced->replicas_contacted, 3u);
  EXPECT_EQ(traced->result.rows.size(), 1u);
  EXPECT_EQ(c.metrics().speculative_reads, 1u);
}

class ClusterScaleTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ClusterScaleTest, RoundTripAtEveryClusterSize) {
  ClusterOptions o;
  o.node_count = GetParam();
  o.replication_factor = 3;
  Cluster c(o);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(c.insert("t", "p" + std::to_string(i % 5),
                         event_row(i, i, "m" + std::to_string(i)))
                    .is_ok());
  }
  std::size_t total = 0;
  for (int p = 0; p < 5; ++p) {
    ReadQuery q;
    q.table = "t";
    q.partition_key = "p" + std::to_string(p);
    auto r = c.select(q, Consistency::kQuorum);
    ASSERT_TRUE(r.is_ok());
    total += r->rows.size();
  }
  EXPECT_EQ(total, 50u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ClusterScaleTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 32));

}  // namespace
}  // namespace hpcla::cassalite
