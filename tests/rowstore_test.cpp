#include "rowstore/rowstore.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace hpcla::rowstore {
namespace {

using K = ColumnDef::Kind;

std::vector<ColumnDef> event_schema() {
  return {{"ts", K::kInt},
          {"node", K::kInt},
          {"type", K::kText},
          {"message", K::kText}};
}

TEST(RowStoreTest, CreateTableValidation) {
  RowStore db;
  EXPECT_TRUE(db.create_table("events", event_schema(), 2).is_ok());
  EXPECT_EQ(db.create_table("events", event_schema(), 2).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db.create_table("bad", {}, 1).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.create_table("bad", event_schema(), 0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.create_table("bad", event_schema(), 5).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.create_table("bad", {{"a", K::kInt}, {"a", K::kInt}}, 1).code(),
            StatusCode::kInvalidArgument);
}

TEST(RowStoreTest, InsertAndGet) {
  RowStore db;
  ASSERT_TRUE(db.create_table("events", event_schema(), 2).is_ok());
  ASSERT_TRUE(db.insert("events", {Value(100), Value(7), Value("MCE"),
                                   Value("bank 4")}).is_ok());
  auto row = db.get("events", {Value(100), Value(7)});
  ASSERT_TRUE(row.is_ok());
  EXPECT_EQ((*row)[2].as_text(), "MCE");
  EXPECT_FALSE(db.get("events", {Value(100), Value(8)}).is_ok());
  EXPECT_FALSE(db.get("missing", {Value(1)}).is_ok());
}

TEST(RowStoreTest, RigidSchemaRejectsMismatches) {
  RowStore db;
  ASSERT_TRUE(db.create_table("events", event_schema(), 2).is_ok());
  // Wrong arity — the flexible "Other Info" columns cassalite allows are
  // exactly what a rigid schema refuses.
  EXPECT_EQ(db.insert("events", {Value(1), Value(2), Value("MCE"),
                                 Value("m"), Value("extra")}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.insert("events", {Value(1), Value(2)}).code(),
            StatusCode::kInvalidArgument);
  // Wrong type.
  EXPECT_EQ(db.insert("events", {Value("not-int"), Value(2), Value("MCE"),
                                 Value("m")}).code(),
            StatusCode::kInvalidArgument);
  // Nulls are permitted.
  EXPECT_TRUE(db.insert("events", {Value(1), Value(2), Value(), Value("m")})
                  .is_ok());
}

TEST(RowStoreTest, PrimaryKeyUniqueness) {
  RowStore db;
  ASSERT_TRUE(db.create_table("events", event_schema(), 2).is_ok());
  ASSERT_TRUE(db.insert("events", {Value(1), Value(2), Value("a"), Value("m")})
                  .is_ok());
  EXPECT_EQ(db.insert("events", {Value(1), Value(2), Value("b"), Value("m")})
                .code(),
            StatusCode::kAlreadyExists);
  // Different key component succeeds.
  EXPECT_TRUE(db.insert("events", {Value(1), Value(3), Value("b"), Value("m")})
                  .is_ok());
}

TEST(RowStoreTest, RangeScanLexicographic) {
  RowStore db;
  ASSERT_TRUE(db.create_table("events", event_schema(), 2).is_ok());
  for (int ts = 0; ts < 10; ++ts) {
    ASSERT_TRUE(db.insert("events", {Value(ts), Value(0), Value("t"),
                                     Value("m")}).is_ok());
  }
  auto rows = db.scan("events", {Value(3)}, {Value(7)});
  ASSERT_TRUE(rows.is_ok());
  EXPECT_EQ(rows->size(), 4u);
  EXPECT_EQ((*rows)[0][0].as_int(), 3);
  EXPECT_EQ(rows->back()[0].as_int(), 6);
  // Unbounded scan.
  EXPECT_EQ(db.scan("events", {}, {})->size(), 10u);
}

TEST(RowStoreTest, AddColumnRewritesEveryRow) {
  RowStore db;
  ASSERT_TRUE(db.create_table("events", event_schema(), 2).is_ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.insert("events", {Value(i), Value(0), Value("t"),
                                     Value("m")}).is_ok());
  }
  auto rewritten = db.add_column("events", {"severity", K::kText},
                                 Value("unknown"));
  ASSERT_TRUE(rewritten.is_ok());
  EXPECT_EQ(rewritten.value(), 100u);
  auto row = db.get("events", {Value(5), Value(0)});
  ASSERT_TRUE(row.is_ok());
  ASSERT_EQ(row->size(), 5u);
  EXPECT_EQ((*row)[4].as_text(), "unknown");
  // New inserts must now carry 5 columns.
  EXPECT_EQ(db.insert("events", {Value(200), Value(0), Value("t"),
                                 Value("m")}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(db.insert("events", {Value(200), Value(0), Value("t"),
                                   Value("m"), Value("error")}).is_ok());
  // Duplicate column rejected.
  EXPECT_EQ(db.add_column("events", {"severity", K::kText}, Value("x")).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(RowStoreTest, ConcurrentWritersSerializeCorrectly) {
  RowStore db;
  ASSERT_TRUE(db.create_table("t", {{"id", K::kInt}, {"v", K::kInt}}, 1).is_ok());
  constexpr int kThreads = 4;
  constexpr int kEach = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, t] {
      for (int i = 0; i < kEach; ++i) {
        ASSERT_TRUE(db.insert("t", {Value(t * kEach + i), Value(i)}).is_ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(db.row_count("t").value(),
            static_cast<std::uint64_t>(kThreads * kEach));
  EXPECT_GE(db.commits(), static_cast<std::uint64_t>(kThreads * kEach));
}

}  // namespace
}  // namespace hpcla::rowstore
