#include "rowstore/rowstore.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace hpcla::rowstore {
namespace {

using K = ColumnDef::Kind;

std::vector<ColumnDef> event_schema() {
  return {{"ts", K::kInt},
          {"node", K::kInt},
          {"type", K::kText},
          {"message", K::kText}};
}

TEST(RowStoreTest, CreateTableValidation) {
  RowStore db;
  EXPECT_TRUE(db.create_table("events", event_schema(), 2).is_ok());
  EXPECT_EQ(db.create_table("events", event_schema(), 2).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db.create_table("bad", {}, 1).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.create_table("bad", event_schema(), 0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.create_table("bad", event_schema(), 5).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.create_table("bad", {{"a", K::kInt}, {"a", K::kInt}}, 1).code(),
            StatusCode::kInvalidArgument);
}

TEST(RowStoreTest, InsertAndGet) {
  RowStore db;
  ASSERT_TRUE(db.create_table("events", event_schema(), 2).is_ok());
  ASSERT_TRUE(db.insert("events", {Value(100), Value(7), Value("MCE"),
                                   Value("bank 4")}).is_ok());
  auto row = db.get("events", {Value(100), Value(7)});
  ASSERT_TRUE(row.is_ok());
  EXPECT_EQ((*row)[2].as_text(), "MCE");
  EXPECT_FALSE(db.get("events", {Value(100), Value(8)}).is_ok());
  EXPECT_FALSE(db.get("missing", {Value(1)}).is_ok());
}

TEST(RowStoreTest, RigidSchemaRejectsMismatches) {
  RowStore db;
  ASSERT_TRUE(db.create_table("events", event_schema(), 2).is_ok());
  // Wrong arity — the flexible "Other Info" columns cassalite allows are
  // exactly what a rigid schema refuses.
  EXPECT_EQ(db.insert("events", {Value(1), Value(2), Value("MCE"),
                                 Value("m"), Value("extra")}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.insert("events", {Value(1), Value(2)}).code(),
            StatusCode::kInvalidArgument);
  // Wrong type.
  EXPECT_EQ(db.insert("events", {Value("not-int"), Value(2), Value("MCE"),
                                 Value("m")}).code(),
            StatusCode::kInvalidArgument);
  // Nulls are permitted.
  EXPECT_TRUE(db.insert("events", {Value(1), Value(2), Value(), Value("m")})
                  .is_ok());
}

TEST(RowStoreTest, PrimaryKeyUniqueness) {
  RowStore db;
  ASSERT_TRUE(db.create_table("events", event_schema(), 2).is_ok());
  ASSERT_TRUE(db.insert("events", {Value(1), Value(2), Value("a"), Value("m")})
                  .is_ok());
  EXPECT_EQ(db.insert("events", {Value(1), Value(2), Value("b"), Value("m")})
                .code(),
            StatusCode::kAlreadyExists);
  // Different key component succeeds.
  EXPECT_TRUE(db.insert("events", {Value(1), Value(3), Value("b"), Value("m")})
                  .is_ok());
}

TEST(RowStoreTest, RangeScanLexicographic) {
  RowStore db;
  ASSERT_TRUE(db.create_table("events", event_schema(), 2).is_ok());
  for (int ts = 0; ts < 10; ++ts) {
    ASSERT_TRUE(db.insert("events", {Value(ts), Value(0), Value("t"),
                                     Value("m")}).is_ok());
  }
  auto rows = db.scan("events", {Value(3)}, {Value(7)});
  ASSERT_TRUE(rows.is_ok());
  EXPECT_EQ(rows->size(), 4u);
  EXPECT_EQ((*rows)[0][0].as_int(), 3);
  EXPECT_EQ(rows->back()[0].as_int(), 6);
  // Unbounded scan.
  EXPECT_EQ(db.scan("events", {}, {})->size(), 10u);
}

TEST(RowStoreTest, AddColumnRewritesEveryRow) {
  RowStore db;
  ASSERT_TRUE(db.create_table("events", event_schema(), 2).is_ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.insert("events", {Value(i), Value(0), Value("t"),
                                     Value("m")}).is_ok());
  }
  auto rewritten = db.add_column("events", {"severity", K::kText},
                                 Value("unknown"));
  ASSERT_TRUE(rewritten.is_ok());
  EXPECT_EQ(rewritten.value(), 100u);
  auto row = db.get("events", {Value(5), Value(0)});
  ASSERT_TRUE(row.is_ok());
  ASSERT_EQ(row->size(), 5u);
  EXPECT_EQ((*row)[4].as_text(), "unknown");
  // New inserts must now carry 5 columns.
  EXPECT_EQ(db.insert("events", {Value(200), Value(0), Value("t"),
                                 Value("m")}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(db.insert("events", {Value(200), Value(0), Value("t"),
                                   Value("m"), Value("error")}).is_ok());
  // Duplicate column rejected.
  EXPECT_EQ(db.add_column("events", {"severity", K::kText}, Value("x")).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(RowStoreTest, ConcurrentWritersSerializeCorrectly) {
  RowStore db;
  ASSERT_TRUE(db.create_table("t", {{"id", K::kInt}, {"v", K::kInt}}, 1).is_ok());
  constexpr int kThreads = 4;
  constexpr int kEach = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, t] {
      for (int i = 0; i < kEach; ++i) {
        ASSERT_TRUE(db.insert("t", {Value(t * kEach + i), Value(i)}).is_ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(db.row_count("t").value(),
            static_cast<std::uint64_t>(kThreads * kEach));
  EXPECT_GE(db.commits(), static_cast<std::uint64_t>(kThreads * kEach));
}

TEST(RowStoreTest, SnapshotReadsRaceWithWriterWithoutLoss) {
  // RCU read path: readers run get/scan/row_count against the published
  // snapshot + delta while a writer inserts and merges. Every committed
  // key must be visible immediately; TSan vets the publish ordering.
  RowStoreOptions opts;
  opts.delta_merge_rows = 16;  // force frequent merges under the readers
  RowStore db(opts);
  ASSERT_TRUE(db.create_table("t", {{"id", K::kInt}, {"v", K::kInt}}, 1).is_ok());
  constexpr int kRows = 600;
  std::atomic<int> committed{0};
  std::thread writer([&] {
    for (int i = 0; i < kRows; ++i) {
      ASSERT_TRUE(db.insert("t", {Value(i), Value(i * 2)}).is_ok());
      committed.store(i + 1, std::memory_order_release);
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&db, &committed, t] {
      std::uint64_t seen = 0;
      while (committed.load(std::memory_order_acquire) < kRows) {
        const int n = committed.load(std::memory_order_acquire);
        if (n == 0) continue;
        const int probe = (t * 7919 + static_cast<int>(seen)) % n;
        auto row = db.get("t", {Value(probe)});
        ASSERT_TRUE(row.is_ok()) << "committed key " << probe << " missing";
        EXPECT_EQ(row->at(1).as_int(), probe * 2);
        ASSERT_GE(db.row_count("t").value(), static_cast<std::uint64_t>(n));
        ++seen;
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(db.row_count("t").value(), static_cast<std::uint64_t>(kRows));
  auto all = db.scan("t", {}, {});
  ASSERT_TRUE(all.is_ok());
  EXPECT_EQ(all->size(), static_cast<std::size_t>(kRows));
  EXPECT_GT(db.snapshot_merges(), 0u);
}

TEST(RowStoreTest, ScanMergesDeltaAndBaseInOrder) {
  RowStoreOptions opts;
  opts.delta_merge_rows = 4;
  RowStore db(opts);
  ASSERT_TRUE(db.create_table("t", {{"id", K::kInt}, {"v", K::kInt}}, 1).is_ok());
  // Interleave inserts so some rows live in the merged base and some in
  // the un-merged delta; the scan must return one ascending sequence.
  for (int i : {8, 2, 6, 0, 9, 1, 5}) {
    ASSERT_TRUE(db.insert("t", {Value(i), Value(i)}).is_ok());
  }
  auto rows = db.scan("t", {}, {});
  ASSERT_TRUE(rows.is_ok());
  ASSERT_EQ(rows->size(), 7u);
  std::int64_t prev = -1;
  for (const auto& r : rows.value()) {
    EXPECT_GT(r[0].as_int(), prev);
    prev = r[0].as_int();
  }
  auto mid = db.scan("t", {Value(2)}, {Value(8)});
  ASSERT_TRUE(mid.is_ok());
  EXPECT_EQ(mid->size(), 3u);  // keys 2, 5, 6; 8 excluded (half-open)
}

}  // namespace
}  // namespace hpcla::rowstore
