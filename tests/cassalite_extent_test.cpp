// Columnar extent tests (DESIGN.md §13.2): lossless roundtrip across every
// cell type and encoding path (delta ints, raw doubles, dictionary and raw
// text, packed bools, mixed columns, nulls), degenerate shapes (empty
// partition, single row, ragged clustering keys), lazy group pruning on
// slice reads, and end-to-end equivalence of the SSTable/StorageEngine
// stack with the flag on vs. off.
#include "cassalite/extent.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cassalite/sstable.hpp"
#include "cassalite/storage_engine.hpp"

namespace hpcla::cassalite {
namespace {

Row make_row(std::int64_t ck, std::int64_t ts) {
  Row r;
  r.key.parts = {Value(ck)};
  r.write_ts = ts;
  return r;
}

void expect_roundtrip(const std::vector<Row>& rows, std::size_t per_group) {
  ExtentOptions opts;
  opts.rows_per_group = per_group;
  const auto ext = ColumnarExtent::encode(rows, opts);
  EXPECT_EQ(ext.row_count(), rows.size());
  EXPECT_EQ(ext.decode_all(), rows);
}

TEST(ColumnarExtent, RoundTripsEveryValueKind) {
  std::vector<Row> rows;
  for (std::int64_t i = 0; i < 300; ++i) {
    Row r = make_row(i, 1000 + i * 7);
    r.set("flag", Value(i % 3 == 0));
    r.set("node", Value(i * 131 - 5000));  // negative deltas too
    r.set("score", Value(0.125 * static_cast<double>(i) - 3.5));
    r.set("type", Value(std::string("type-") + std::to_string(i % 4)));  // dict
    rows.push_back(std::move(r));
  }
  expect_roundtrip(rows, 64);
  expect_roundtrip(rows, 1);      // one row per group
  expect_roundtrip(rows, 10000);  // one group total
}

TEST(ColumnarExtent, RoundTripsEmptyAndSingleRow) {
  expect_roundtrip({}, 16);
  const auto empty = ColumnarExtent::encode({}, {});
  EXPECT_EQ(empty.group_count(), 0u);
  std::vector<Row> out;
  empty.read(ClusteringSlice{}, out);
  EXPECT_TRUE(out.empty());

  Row r = make_row(42, 7);
  r.set("only", Value("one"));
  expect_roundtrip({r}, 16);
}

TEST(ColumnarExtent, RoundTripsHighCardinalityTextFallback) {
  // Every value distinct: the dictionary gate (distinct*2 <= n) must fall
  // back to raw text and still roundtrip.
  std::vector<Row> rows;
  for (std::int64_t i = 0; i < 200; ++i) {
    Row r = make_row(i, i);
    r.set("msg", Value("unique message #" + std::to_string(i * 7919)));
    rows.push_back(std::move(r));
  }
  expect_roundtrip(rows, 50);
}

TEST(ColumnarExtent, RoundTripsMixedTypeAndSparseColumns) {
  std::vector<Row> rows;
  for (std::int64_t i = 0; i < 100; ++i) {
    Row r = make_row(i, i);
    // Same column name, different type per row -> kMixed encoding.
    switch (i % 5) {
      case 0: r.set("v", Value());           break;  // explicit null cell
      case 1: r.set("v", Value(true));       break;
      case 2: r.set("v", Value(i * -17));    break;
      case 3: r.set("v", Value(i * 0.5));    break;
      default: r.set("v", Value("text"));    break;
    }
    // Sparse column: present on a minority of rows only.
    if (i % 7 == 0) r.set("rare", Value(i));
    rows.push_back(std::move(r));
  }
  expect_roundtrip(rows, 33);
}

TEST(ColumnarExtent, RoundTripsDuplicateCellNamesInOneRow) {
  // Rows may carry repeated cell names (flexible schema); order and
  // multiplicity must survive.
  Row r = make_row(1, 1);
  r.cells.push_back({"x", Value(1)});
  r.cells.push_back({"y", Value("mid")});
  r.cells.push_back({"x", Value(2)});
  expect_roundtrip({r, make_row(2, 2)}, 16);
}

TEST(ColumnarExtent, RoundTripsRaggedClusteringKeys) {
  std::vector<Row> rows;
  for (std::int64_t i = 0; i < 60; ++i) {
    Row r;
    r.key.parts = {Value(i)};
    if (i % 2 == 0) r.key.parts.push_back(Value("sub-" + std::to_string(i % 3)));
    if (i % 4 == 0) r.key.parts.push_back(Value(i * 0.25));
    r.write_ts = i;
    r.set("c", Value(i));
    rows.push_back(std::move(r));
  }
  expect_roundtrip(rows, 7);
}

TEST(ColumnarExtent, SliceReadDecodesOnlyIntersectingGroups) {
  std::vector<Row> rows;
  for (std::int64_t i = 0; i < 1000; ++i) {
    Row r = make_row(i, i);
    r.set("n", Value(i));
    rows.push_back(std::move(r));
  }
  ExtentOptions opts;
  opts.rows_per_group = 100;
  const auto ext = ColumnarExtent::encode(rows, opts);
  ASSERT_EQ(ext.group_count(), 10u);

  ClusteringSlice slice;
  slice.lower = ClusteringKey::of({Value(450)});
  slice.upper = ClusteringKey::of({Value(460)});
  std::vector<Row> out;
  ext.read(slice, out);
  ASSERT_EQ(out.size(), 10u);
  EXPECT_EQ(out.front().key.parts[0].as_int(), 450);
  EXPECT_EQ(out.back().key.parts[0].as_int(), 459);
  // The range lives inside group [400,499]; at most one neighbor decoded.
  EXPECT_LE(ext.decoded_groups(), 2u) << "slice read is not pruning groups";
}

TEST(ColumnarExtent, CompressesRepetitiveLogShapedData) {
  std::vector<Row> rows;
  for (std::int64_t i = 0; i < 2000; ++i) {
    Row r = make_row(i, 1700000000000000 + i * 1000);
    r.set("node", Value(i % 32));
    r.set("msg", Value(std::string("machine check L2 cache parity error")));
    rows.push_back(std::move(r));
  }
  const auto ext = ColumnarExtent::encode(rows, {});
  EXPECT_GT(ext.raw_bytes(), 0u);
  EXPECT_GT(ext.encoded_bytes(), 0u);
  EXPECT_LT(ext.encoded_bytes() * 2, ext.raw_bytes())
      << "log-shaped data should compress at least 2x";
  EXPECT_EQ(ext.decode_all(), rows);
}

std::vector<SSTable::Partition> sample_partitions() {
  std::vector<SSTable::Partition> parts;
  for (int p = 0; p < 4; ++p) {
    SSTable::Partition part;
    part.key = "part-" + std::to_string(p);
    for (std::int64_t i = 0; i < 200; ++i) {
      Row r = make_row(i, 100 + i);
      r.set("v", Value(i * p));
      r.set("tag", Value(std::string(i % 2 ? "odd" : "even")));
      part.rows.push_back(std::move(r));
    }
    parts.push_back(std::move(part));
  }
  return parts;
}

TEST(ColumnarSSTable, ReadsMatchPlainSSTable) {
  ExtentOptions opts;
  opts.rows_per_group = 32;
  const SSTable plain(1, sample_partitions());
  const SSTable columnar(1, sample_partitions(), &opts);
  EXPECT_FALSE(plain.columnar());
  EXPECT_TRUE(columnar.columnar());
  EXPECT_EQ(plain.row_count(), columnar.row_count());
  EXPECT_EQ(plain.partition_keys(), columnar.partition_keys());
  EXPECT_GT(columnar.extent_encoded_bytes(), 0u);

  ClusteringSlice whole;
  ClusteringSlice narrow;
  narrow.lower = ClusteringKey::of({Value(50)});
  narrow.upper = ClusteringKey::of({Value(60)});
  for (const auto& key : plain.partition_keys()) {
    for (const auto* slice : {&whole, &narrow}) {
      std::vector<Row> a, b;
      EXPECT_TRUE(plain.read(key, *slice, a));
      EXPECT_TRUE(columnar.read(key, *slice, b));
      EXPECT_EQ(a, b) << key;
    }
  }
  std::vector<Row> miss;
  EXPECT_FALSE(columnar.read("absent-partition", whole, miss));
}

TEST(ColumnarSSTable, CompactionPreservesRowsAcrossEncodings) {
  ExtentOptions opts;
  opts.rows_per_group = 16;
  auto a = std::make_shared<const SSTable>(1, sample_partitions(), &opts);
  // Overwrite some rows with newer write timestamps in a plain run.
  std::vector<SSTable::Partition> newer;
  {
    SSTable::Partition part;
    part.key = "part-1";
    for (std::int64_t i = 0; i < 50; ++i) {
      Row r = make_row(i * 4, 100000 + i);
      r.set("v", Value(-1));
      part.rows.push_back(std::move(r));
    }
    newer.push_back(std::move(part));
  }
  auto b = std::make_shared<const SSTable>(2, std::move(newer));
  const auto merged_columnar = compact(3, {a, b}, &opts);
  const auto merged_plain = compact(3, {a, b});
  EXPECT_TRUE(merged_columnar->columnar());
  EXPECT_EQ(merged_columnar->row_count(), merged_plain->row_count());
  ClusteringSlice whole;
  for (const auto& key : merged_plain->partition_keys()) {
    std::vector<Row> x, y;
    merged_plain->read(key, whole, x);
    merged_columnar->read(key, whole, y);
    EXPECT_EQ(x, y) << key;
  }
  // LWW actually applied: overwritten row carries the newer cell.
  std::vector<Row> rows;
  merged_columnar->read("part-1", whole, rows);
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(*rows[0].find("v"), Value(-1));
}

void write_workload(StorageEngine& store) {
  for (std::int64_t i = 0; i < 3000; ++i) {
    WriteCommand cmd;
    cmd.table = "events";
    cmd.partition_key = "node-" + std::to_string(i % 5);
    cmd.row = make_row(i, 1000 + i);
    cmd.row.set("count", Value(i % 13));
    cmd.row.set("msg", Value(std::string("event class ") +
                             std::to_string(i % 6)));
    store.apply(cmd);
  }
  // Overwrites exercising merge-on-read + LWW across runs.
  for (std::int64_t i = 0; i < 3000; i += 10) {
    WriteCommand cmd;
    cmd.table = "events";
    cmd.partition_key = "node-" + std::to_string(i % 5);
    cmd.row = make_row(i, 999999 + i);
    cmd.row.set("count", Value(-7));
    store.apply(cmd);
  }
  store.flush_all();
}

TEST(ColumnarStorageEngine, EndToEndMatchesRowStorage) {
  StorageOptions plain_opts;
  plain_opts.columnar_extents = false;
  plain_opts.extent_files = false;  // HPCLA_EXTENT_FILES would re-enable both
  plain_opts.memtable_flush_bytes = 64 * 1024;  // force several flushes
  plain_opts.compaction_threshold = 3;          // and compactions
  StorageOptions col_opts = plain_opts;
  col_opts.columnar_extents = true;
  col_opts.extent_rows_per_group = 64;

  StorageEngine plain(plain_opts);
  StorageEngine columnar(col_opts);
  write_workload(plain);
  write_workload(columnar);

  for (int p = 0; p < 5; ++p) {
    ReadQuery q;
    q.table = "events";
    q.partition_key = "node-" + std::to_string(p);
    EXPECT_EQ(plain.read(q).rows, columnar.read(q).rows) << q.partition_key;

    q.slice.lower = ClusteringKey::of({Value(100)});
    q.slice.upper = ClusteringKey::of({Value(200)});
    q.reverse = true;
    q.limit = 7;
    const auto a = plain.read(q);
    const auto b = columnar.read(q);
    EXPECT_EQ(a.rows, b.rows);
    EXPECT_EQ(a.truncated, b.truncated);
  }

  const auto m = columnar.metrics();
  EXPECT_GT(m.memtable_flushes, 0u);
  EXPECT_GT(m.extent_raw_bytes, 0u);
  EXPECT_GT(m.extent_encoded_bytes, 0u);
  EXPECT_LT(m.extent_encoded_bytes, m.extent_raw_bytes)
      << "extents should shrink this repetitive workload";
  EXPECT_EQ(plain.metrics().extent_raw_bytes, 0u);
}

TEST(ColumnarStorageEngine, SurvivesCrashRecovery) {
  StorageOptions opts;
  opts.columnar_extents = true;
  opts.memtable_flush_bytes = 32 * 1024;
  StorageEngine store(opts);
  write_workload(store);
  ReadQuery q;
  q.table = "events";
  q.partition_key = "node-2";
  const auto before = store.read(q).rows;
  store.crash_and_recover();
  EXPECT_EQ(store.read(q).rows, before);
}

}  // namespace
}  // namespace hpcla::cassalite
