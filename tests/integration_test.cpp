// Whole-stack integration: a "day in the life" of the framework.
//
// One scenario flows through every layer exactly as deployed:
//   generator -> raw log lines -> regex ETL (sparklite-parallel) -> the
//   9-table data model on a replicated cassalite cluster -> analytics ->
//   the JSON server — while a second copy of the stream arrives via the
//   buslite/streaming path, and nodes fail and recover mid-flight.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>

#include "analytics/distribution.hpp"
#include "analytics/heatmap.hpp"
#include "analytics/queries.hpp"
#include "analytics/text.hpp"
#include "model/ingest.hpp"
#include "model/streaming_ingest.hpp"
#include "server/server.hpp"
#include "titanlog/generator.hpp"

namespace hpcla {
namespace {

using analytics::Context;
using titanlog::EventType;

constexpr UnixSeconds kT0 = 1489449600;  // 2017-03-14 00:00:00 UTC

titanlog::ScenarioConfig day_scenario() {
  titanlog::ScenarioConfig cfg;
  cfg.seed = 777;
  cfg.window = TimeRange{kT0, kT0 + 6 * 3600};
  cfg.background_scale = 0.5;
  // An MCE hotspot (Fig 5), a Lustre storm (Fig 7), a causal pair
  // (Fig 7 top), and a job mix (Fig 6) — the full menagerie at once.
  titanlog::HotspotSpec hs;
  hs.type = EventType::kMachineCheck;
  hs.location = topo::parse_cname("c3-11").value();
  hs.window = TimeRange{kT0 + 3600, kT0 + 2 * 3600};
  hs.rate_per_node_hour = 10.0;
  cfg.hotspots.push_back(hs);
  titanlog::LustreStormSpec storm;
  storm.start = kT0 + 4 * 3600;
  storm.duration_seconds = 240;
  storm.ost_index = 0x2A;
  storm.messages_per_second = 50.0;
  cfg.storms.push_back(storm);
  titanlog::CausalPairSpec pair;
  pair.cause = EventType::kNetworkError;
  pair.effect = EventType::kDvsError;
  pair.lag_seconds = 20;
  pair.probability = 0.9;
  cfg.causal_pairs.push_back(pair);
  cfg.jobs = titanlog::JobMixSpec{.users = 12, .apps = 6, .jobs_per_hour = 50,
                                  .max_size_log2 = 7};
  return cfg;
}

TEST(IntegrationTest, FullDayThroughEveryLayer) {
  // --- Stack ---------------------------------------------------------
  cassalite::ClusterOptions copts;
  copts.node_count = 6;
  copts.replication_factor = 3;
  cassalite::Cluster cluster(copts);
  sparklite::Engine engine(sparklite::EngineOptions{.workers = 4});
  ASSERT_TRUE(model::create_data_model(cluster).is_ok());
  ASSERT_TRUE(model::load_eventtypes(cluster).is_ok());

  // --- Data ----------------------------------------------------------
  const auto cfg = day_scenario();
  auto logs = titanlog::Generator(cfg).generate();
  auto lines = titanlog::render_all(logs);
  ASSERT_GT(logs.events.size(), 10000u);
  ASSERT_GT(logs.jobs.size(), 200u);

  // --- Batch ETL with a mid-flight node failure -----------------------
  // One replica dies before ingest and is revived after: QUORUM keeps the
  // pipeline available and hinted handoff converges the stray replica.
  cluster.kill_node(5);
  model::BatchIngestor ingestor(cluster, engine);
  auto report = ingestor.ingest_lines(lines);
  EXPECT_EQ(report.parse.lines, lines.size());
  EXPECT_EQ(report.parse.events, logs.events.size());
  EXPECT_EQ(report.parse.jobs, logs.jobs.size());
  EXPECT_EQ(report.parse.malformed, 0u);
  EXPECT_EQ(report.parse.unmatched, 0u);
  EXPECT_EQ(report.write_failures, 0u);  // QUORUM met with 5/6 nodes
  const std::size_t hints = cluster.pending_hints();
  EXPECT_GT(hints, 0u);
  EXPECT_EQ(cluster.revive_node(5), hints);
  EXPECT_EQ(cluster.pending_hints(), 0u);

  // --- Ground truth checks through analytics --------------------------
  Context all;
  all.window = cfg.window;

  // Every event retrievable, count-exact per type.
  auto dist = analytics::distribution(engine, cluster, all,
                                      analytics::GroupBy::kEventType);
  std::map<std::string, std::int64_t> expected_by_type;
  for (const auto& e : logs.events) {
    expected_by_type[std::string(titanlog::event_id(e.type))] += e.count;
  }
  ASSERT_EQ(dist.size(), expected_by_type.size());
  for (const auto& entry : dist) {
    EXPECT_EQ(entry.count, expected_by_type[entry.label]) << entry.label;
  }

  // The hotspot cabinet wins the MCE heat map in its hour.
  Context mce;
  mce.window = TimeRange{kT0 + 3600, kT0 + 2 * 3600};
  mce.types = {EventType::kMachineCheck};
  auto hm = analytics::build_heatmap(engine, cluster, mce);
  auto cabinets = hm.cabinet_counts();
  const int hot = (topo::parse_cname("c3-11").value()).cabinet_index();
  EXPECT_EQ(static_cast<int>(std::max_element(cabinets.begin(),
                                              cabinets.end()) -
                             cabinets.begin()),
            hot);

  // The storm OST dominates word counts in the storm hour.
  Context storm_ctx;
  storm_ctx.window = TimeRange{kT0 + 4 * 3600, kT0 + 5 * 3600};
  storm_ctx.types = {EventType::kLustreError};
  auto words = analytics::word_count(engine, cluster, storm_ctx, 3);
  ASSERT_FALSE(words.empty());
  EXPECT_EQ(words[0].term, "ost002a");

  // --- The streaming path produces consistent table contents ----------
  // Feed the same events through buslite into a second cluster; totals per
  // (hour, type) must agree with the batch-loaded cluster.
  cassalite::Cluster cluster2(copts);
  ASSERT_TRUE(model::create_data_model(cluster2).is_ok());
  buslite::Broker broker;
  ASSERT_TRUE(broker.create_topic("ev", {.partitions = 8}).is_ok());
  model::EventPublisher pub(broker, "ev");
  for (const auto& e : logs.events) ASSERT_TRUE(pub.publish(e).is_ok());
  model::StreamingIngestor stream(cluster2, engine, broker, "ev");
  auto sreport = stream.process_available();
  EXPECT_EQ(sreport.messages_in, logs.events.size());
  EXPECT_EQ(sreport.decode_failures, 0u);

  auto batch_syn = analytics::fetch_synopsis(cluster, cfg.window);
  auto stream_syn = analytics::fetch_synopsis(cluster2, cfg.window);
  std::map<std::pair<std::int64_t, EventType>, std::int64_t> batch_counts;
  std::map<std::pair<std::int64_t, EventType>, std::int64_t> stream_counts;
  for (const auto& s : batch_syn) batch_counts[{s.hour, s.type}] = s.count;
  for (const auto& s : stream_syn) stream_counts[{s.hour, s.type}] = s.count;
  EXPECT_EQ(batch_counts, stream_counts);

  // --- The server serves the same story in JSON -----------------------
  server::AnalyticsServer server(cluster, engine);
  auto response = Json::parse(server.handle_text(
      R"({"op":"word_count","top_k":1,
          "context":{"window":{"begin":)" +
      std::to_string(kT0 + 4 * 3600) + R"(,"end":)" +
      std::to_string(kT0 + 5 * 3600) +
      R"(},"types":["LustreError"]}})"));
  ASSERT_TRUE(response.is_ok());
  EXPECT_EQ(response.value()["status"].as_string(), "ok");
  EXPECT_EQ(response.value()["result"].as_array().at(0)["term"].as_string(),
            "ost002a");

  // The dual schemas never disagree: a location-driven query and a
  // type-driven query over the same context return identical event sets.
  Context cage;
  cage.window = TimeRange{kT0 + 3600, kT0 + 2 * 3600};
  cage.location = topo::parse_cname("c3-11c1").value();
  auto by_loc_events = analytics::fetch_events(engine, cluster, cage);
  std::size_t truth = 0;
  for (const auto& e : logs.events) {
    if (cage.window.contains(e.ts) && cage.wants_node(e.node)) ++truth;
  }
  EXPECT_EQ(by_loc_events.size(), truth);
}

TEST(IntegrationTest, QueriesRaceLiveStreamingIngestSafely) {
  // The paper's deployment serves interactive queries while the streaming
  // pipeline writes. Here: one thread publishes + ingests micro-batches,
  // two threads hammer the server with simple and complex queries. The
  // assertions are (a) no crashes/data races, (b) every response is a
  // valid envelope, (c) the final table state is complete.
  cassalite::ClusterOptions copts;
  copts.node_count = 4;
  copts.replication_factor = 2;
  cassalite::Cluster cluster(copts);
  sparklite::Engine engine(sparklite::EngineOptions{.workers = 2});
  buslite::Broker broker;
  ASSERT_TRUE(model::create_data_model(cluster).is_ok());
  ASSERT_TRUE(broker.create_topic("ev", {.partitions = 4}).is_ok());
  server::AnalyticsServer server(cluster, engine);

  titanlog::ScenarioConfig cfg;
  cfg.seed = 3;
  cfg.window = TimeRange{kT0, kT0 + 1800};
  cfg.background_scale = 1.0;
  auto logs = titanlog::Generator(cfg).generate();
  ASSERT_GT(logs.events.size(), 300u);

  std::atomic<bool> ingest_done{false};
  std::thread ingest_thread([&] {
    model::EventPublisher pub(broker, "ev");
    model::StreamingIngestor ingestor(cluster, engine, broker, "ev");
    // Publish in slices, draining between slices.
    const std::size_t slice = logs.events.size() / 20 + 1;
    for (std::size_t i = 0; i < logs.events.size(); ++i) {
      ASSERT_TRUE(pub.publish(logs.events[i]).is_ok());
      if (i % slice == slice - 1) (void)ingestor.process_available();
    }
    (void)ingestor.process_available();
    ingest_done.store(true, std::memory_order_release);
  });

  const std::string simple_q =
      R"({"op":"synopsis","window":{"begin":1489449600,"end":1489451400}})";
  const std::string complex_q =
      R"({"op":"hourly","context":{"window":{"begin":1489449600,)"
      R"("end":1489451400}}})";
  std::atomic<int> responses{0};
  auto query_loop = [&](const std::string& q) {
    while (!ingest_done.load(std::memory_order_acquire)) {
      auto parsed = Json::parse(server.handle_text(q));
      ASSERT_TRUE(parsed.is_ok());
      ASSERT_EQ(parsed.value()["status"].as_string(), "ok");
      responses.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread q1(query_loop, simple_q);
  std::thread q2(query_loop, complex_q);
  ingest_thread.join();
  q1.join();
  q2.join();
  EXPECT_GT(responses.load(), 0);

  // Post-race: the tables hold every published event.
  analytics::Context all;
  all.window = cfg.window;
  auto events = analytics::fetch_events(engine, cluster, all);
  std::int64_t stored = 0;
  for (const auto& e : events) stored += e.count;
  EXPECT_EQ(stored, static_cast<std::int64_t>(logs.events.size()));
}

TEST(IntegrationTest, CrashRecoveryPreservesQueryResults) {
  cassalite::ClusterOptions copts;
  copts.node_count = 3;
  copts.replication_factor = 2;
  cassalite::Cluster cluster(copts);
  sparklite::Engine engine(sparklite::EngineOptions{.workers = 2});
  ASSERT_TRUE(model::create_data_model(cluster).is_ok());

  titanlog::ScenarioConfig cfg;
  cfg.seed = 88;
  cfg.window = TimeRange{kT0, kT0 + 3600};
  cfg.background_scale = 1.0;
  auto logs = titanlog::Generator(cfg).generate();
  model::BatchIngestor ingestor(cluster, engine);
  ASSERT_EQ(ingestor.ingest_records(logs.events, {}).write_failures, 0u);

  Context all;
  all.window = cfg.window;
  const auto before = analytics::fetch_events(engine, cluster, all);
  ASSERT_EQ(before.size(), logs.events.size());

  // Every node crashes (memtables lost) and recovers from its commit log.
  for (cassalite::NodeIndex n = 0; n < cluster.node_count(); ++n) {
    cluster.crash_node(n);
  }
  const auto after = analytics::fetch_events(engine, cluster, all);
  EXPECT_EQ(after.size(), before.size());
  EXPECT_EQ(after, before);
}

}  // namespace
}  // namespace hpcla
