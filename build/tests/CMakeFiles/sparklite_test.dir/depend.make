# Empty dependencies file for sparklite_test.
# This may be replaced when dependencies are built.
