file(REMOVE_RECURSE
  "CMakeFiles/sparklite_test.dir/sparklite_test.cpp.o"
  "CMakeFiles/sparklite_test.dir/sparklite_test.cpp.o.d"
  "sparklite_test"
  "sparklite_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparklite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
