# Empty compiler generated dependencies file for sparklite_test.
# This may be replaced when dependencies are built.
