file(REMOVE_RECURSE
  "CMakeFiles/cassalite_cluster_test.dir/cassalite_cluster_test.cpp.o"
  "CMakeFiles/cassalite_cluster_test.dir/cassalite_cluster_test.cpp.o.d"
  "cassalite_cluster_test"
  "cassalite_cluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cassalite_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
