# Empty dependencies file for cassalite_cluster_test.
# This may be replaced when dependencies are built.
