# Empty dependencies file for analytics_ext_test.
# This may be replaced when dependencies are built.
