file(REMOVE_RECURSE
  "CMakeFiles/analytics_ext_test.dir/analytics_ext_test.cpp.o"
  "CMakeFiles/analytics_ext_test.dir/analytics_ext_test.cpp.o.d"
  "analytics_ext_test"
  "analytics_ext_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
