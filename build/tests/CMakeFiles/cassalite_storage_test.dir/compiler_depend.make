# Empty compiler generated dependencies file for cassalite_storage_test.
# This may be replaced when dependencies are built.
