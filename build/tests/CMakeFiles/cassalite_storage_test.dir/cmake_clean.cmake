file(REMOVE_RECURSE
  "CMakeFiles/cassalite_storage_test.dir/cassalite_storage_test.cpp.o"
  "CMakeFiles/cassalite_storage_test.dir/cassalite_storage_test.cpp.o.d"
  "cassalite_storage_test"
  "cassalite_storage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cassalite_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
