# Empty compiler generated dependencies file for cassalite_modelcheck_test.
# This may be replaced when dependencies are built.
