file(REMOVE_RECURSE
  "CMakeFiles/cassalite_modelcheck_test.dir/cassalite_modelcheck_test.cpp.o"
  "CMakeFiles/cassalite_modelcheck_test.dir/cassalite_modelcheck_test.cpp.o.d"
  "cassalite_modelcheck_test"
  "cassalite_modelcheck_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cassalite_modelcheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
