# Empty dependencies file for cassalite_value_test.
# This may be replaced when dependencies are built.
