file(REMOVE_RECURSE
  "CMakeFiles/cassalite_value_test.dir/cassalite_value_test.cpp.o"
  "CMakeFiles/cassalite_value_test.dir/cassalite_value_test.cpp.o.d"
  "cassalite_value_test"
  "cassalite_value_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cassalite_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
