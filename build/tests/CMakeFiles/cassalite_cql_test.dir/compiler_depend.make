# Empty compiler generated dependencies file for cassalite_cql_test.
# This may be replaced when dependencies are built.
