file(REMOVE_RECURSE
  "CMakeFiles/cassalite_cql_test.dir/cassalite_cql_test.cpp.o"
  "CMakeFiles/cassalite_cql_test.dir/cassalite_cql_test.cpp.o.d"
  "cassalite_cql_test"
  "cassalite_cql_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cassalite_cql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
