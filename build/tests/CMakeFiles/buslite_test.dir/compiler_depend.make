# Empty compiler generated dependencies file for buslite_test.
# This may be replaced when dependencies are built.
