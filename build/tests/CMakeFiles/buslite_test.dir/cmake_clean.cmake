file(REMOVE_RECURSE
  "CMakeFiles/buslite_test.dir/buslite_test.cpp.o"
  "CMakeFiles/buslite_test.dir/buslite_test.cpp.o.d"
  "buslite_test"
  "buslite_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buslite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
