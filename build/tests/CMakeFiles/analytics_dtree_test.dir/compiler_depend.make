# Empty compiler generated dependencies file for analytics_dtree_test.
# This may be replaced when dependencies are built.
