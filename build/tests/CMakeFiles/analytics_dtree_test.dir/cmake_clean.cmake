file(REMOVE_RECURSE
  "CMakeFiles/analytics_dtree_test.dir/analytics_dtree_test.cpp.o"
  "CMakeFiles/analytics_dtree_test.dir/analytics_dtree_test.cpp.o.d"
  "analytics_dtree_test"
  "analytics_dtree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_dtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
