# Empty compiler generated dependencies file for cassalite_gossip_test.
# This may be replaced when dependencies are built.
