file(REMOVE_RECURSE
  "CMakeFiles/cassalite_gossip_test.dir/cassalite_gossip_test.cpp.o"
  "CMakeFiles/cassalite_gossip_test.dir/cassalite_gossip_test.cpp.o.d"
  "cassalite_gossip_test"
  "cassalite_gossip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cassalite_gossip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
