# Empty compiler generated dependencies file for titanlog_test.
# This may be replaced when dependencies are built.
