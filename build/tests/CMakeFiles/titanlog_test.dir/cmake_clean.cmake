file(REMOVE_RECURSE
  "CMakeFiles/titanlog_test.dir/titanlog_test.cpp.o"
  "CMakeFiles/titanlog_test.dir/titanlog_test.cpp.o.d"
  "titanlog_test"
  "titanlog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/titanlog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
