# Empty compiler generated dependencies file for hpcla_model.
# This may be replaced when dependencies are built.
