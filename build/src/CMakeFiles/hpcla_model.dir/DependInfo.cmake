
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/ingest.cpp" "src/CMakeFiles/hpcla_model.dir/model/ingest.cpp.o" "gcc" "src/CMakeFiles/hpcla_model.dir/model/ingest.cpp.o.d"
  "/root/repo/src/model/keys.cpp" "src/CMakeFiles/hpcla_model.dir/model/keys.cpp.o" "gcc" "src/CMakeFiles/hpcla_model.dir/model/keys.cpp.o.d"
  "/root/repo/src/model/streaming_ingest.cpp" "src/CMakeFiles/hpcla_model.dir/model/streaming_ingest.cpp.o" "gcc" "src/CMakeFiles/hpcla_model.dir/model/streaming_ingest.cpp.o.d"
  "/root/repo/src/model/tables.cpp" "src/CMakeFiles/hpcla_model.dir/model/tables.cpp.o" "gcc" "src/CMakeFiles/hpcla_model.dir/model/tables.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hpcla_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpcla_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpcla_titanlog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpcla_cassalite.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpcla_buslite.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
