file(REMOVE_RECURSE
  "CMakeFiles/hpcla_model.dir/model/ingest.cpp.o"
  "CMakeFiles/hpcla_model.dir/model/ingest.cpp.o.d"
  "CMakeFiles/hpcla_model.dir/model/keys.cpp.o"
  "CMakeFiles/hpcla_model.dir/model/keys.cpp.o.d"
  "CMakeFiles/hpcla_model.dir/model/streaming_ingest.cpp.o"
  "CMakeFiles/hpcla_model.dir/model/streaming_ingest.cpp.o.d"
  "CMakeFiles/hpcla_model.dir/model/tables.cpp.o"
  "CMakeFiles/hpcla_model.dir/model/tables.cpp.o.d"
  "libhpcla_model.a"
  "libhpcla_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcla_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
