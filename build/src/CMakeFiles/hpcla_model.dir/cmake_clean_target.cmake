file(REMOVE_RECURSE
  "libhpcla_model.a"
)
