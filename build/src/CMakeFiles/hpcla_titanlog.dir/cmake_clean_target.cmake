file(REMOVE_RECURSE
  "libhpcla_titanlog.a"
)
