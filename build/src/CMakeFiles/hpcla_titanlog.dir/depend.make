# Empty dependencies file for hpcla_titanlog.
# This may be replaced when dependencies are built.
