
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/titanlog/events.cpp" "src/CMakeFiles/hpcla_titanlog.dir/titanlog/events.cpp.o" "gcc" "src/CMakeFiles/hpcla_titanlog.dir/titanlog/events.cpp.o.d"
  "/root/repo/src/titanlog/generator.cpp" "src/CMakeFiles/hpcla_titanlog.dir/titanlog/generator.cpp.o" "gcc" "src/CMakeFiles/hpcla_titanlog.dir/titanlog/generator.cpp.o.d"
  "/root/repo/src/titanlog/parser.cpp" "src/CMakeFiles/hpcla_titanlog.dir/titanlog/parser.cpp.o" "gcc" "src/CMakeFiles/hpcla_titanlog.dir/titanlog/parser.cpp.o.d"
  "/root/repo/src/titanlog/record.cpp" "src/CMakeFiles/hpcla_titanlog.dir/titanlog/record.cpp.o" "gcc" "src/CMakeFiles/hpcla_titanlog.dir/titanlog/record.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hpcla_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpcla_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
