file(REMOVE_RECURSE
  "CMakeFiles/hpcla_titanlog.dir/titanlog/events.cpp.o"
  "CMakeFiles/hpcla_titanlog.dir/titanlog/events.cpp.o.d"
  "CMakeFiles/hpcla_titanlog.dir/titanlog/generator.cpp.o"
  "CMakeFiles/hpcla_titanlog.dir/titanlog/generator.cpp.o.d"
  "CMakeFiles/hpcla_titanlog.dir/titanlog/parser.cpp.o"
  "CMakeFiles/hpcla_titanlog.dir/titanlog/parser.cpp.o.d"
  "CMakeFiles/hpcla_titanlog.dir/titanlog/record.cpp.o"
  "CMakeFiles/hpcla_titanlog.dir/titanlog/record.cpp.o.d"
  "libhpcla_titanlog.a"
  "libhpcla_titanlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcla_titanlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
