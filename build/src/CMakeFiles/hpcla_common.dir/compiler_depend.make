# Empty compiler generated dependencies file for hpcla_common.
# This may be replaced when dependencies are built.
