file(REMOVE_RECURSE
  "CMakeFiles/hpcla_common.dir/common/clock.cpp.o"
  "CMakeFiles/hpcla_common.dir/common/clock.cpp.o.d"
  "CMakeFiles/hpcla_common.dir/common/hash.cpp.o"
  "CMakeFiles/hpcla_common.dir/common/hash.cpp.o.d"
  "CMakeFiles/hpcla_common.dir/common/json.cpp.o"
  "CMakeFiles/hpcla_common.dir/common/json.cpp.o.d"
  "CMakeFiles/hpcla_common.dir/common/logging.cpp.o"
  "CMakeFiles/hpcla_common.dir/common/logging.cpp.o.d"
  "CMakeFiles/hpcla_common.dir/common/rng.cpp.o"
  "CMakeFiles/hpcla_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/hpcla_common.dir/common/stats.cpp.o"
  "CMakeFiles/hpcla_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/hpcla_common.dir/common/status.cpp.o"
  "CMakeFiles/hpcla_common.dir/common/status.cpp.o.d"
  "CMakeFiles/hpcla_common.dir/common/strings.cpp.o"
  "CMakeFiles/hpcla_common.dir/common/strings.cpp.o.d"
  "CMakeFiles/hpcla_common.dir/common/thread_pool.cpp.o"
  "CMakeFiles/hpcla_common.dir/common/thread_pool.cpp.o.d"
  "libhpcla_common.a"
  "libhpcla_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcla_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
