file(REMOVE_RECURSE
  "libhpcla_common.a"
)
