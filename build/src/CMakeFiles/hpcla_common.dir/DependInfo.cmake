
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/clock.cpp" "src/CMakeFiles/hpcla_common.dir/common/clock.cpp.o" "gcc" "src/CMakeFiles/hpcla_common.dir/common/clock.cpp.o.d"
  "/root/repo/src/common/hash.cpp" "src/CMakeFiles/hpcla_common.dir/common/hash.cpp.o" "gcc" "src/CMakeFiles/hpcla_common.dir/common/hash.cpp.o.d"
  "/root/repo/src/common/json.cpp" "src/CMakeFiles/hpcla_common.dir/common/json.cpp.o" "gcc" "src/CMakeFiles/hpcla_common.dir/common/json.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/hpcla_common.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/hpcla_common.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/hpcla_common.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/hpcla_common.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/hpcla_common.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/hpcla_common.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/status.cpp" "src/CMakeFiles/hpcla_common.dir/common/status.cpp.o" "gcc" "src/CMakeFiles/hpcla_common.dir/common/status.cpp.o.d"
  "/root/repo/src/common/strings.cpp" "src/CMakeFiles/hpcla_common.dir/common/strings.cpp.o" "gcc" "src/CMakeFiles/hpcla_common.dir/common/strings.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/CMakeFiles/hpcla_common.dir/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/hpcla_common.dir/common/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
