
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cassalite/bloom.cpp" "src/CMakeFiles/hpcla_cassalite.dir/cassalite/bloom.cpp.o" "gcc" "src/CMakeFiles/hpcla_cassalite.dir/cassalite/bloom.cpp.o.d"
  "/root/repo/src/cassalite/cluster.cpp" "src/CMakeFiles/hpcla_cassalite.dir/cassalite/cluster.cpp.o" "gcc" "src/CMakeFiles/hpcla_cassalite.dir/cassalite/cluster.cpp.o.d"
  "/root/repo/src/cassalite/commitlog.cpp" "src/CMakeFiles/hpcla_cassalite.dir/cassalite/commitlog.cpp.o" "gcc" "src/CMakeFiles/hpcla_cassalite.dir/cassalite/commitlog.cpp.o.d"
  "/root/repo/src/cassalite/cql.cpp" "src/CMakeFiles/hpcla_cassalite.dir/cassalite/cql.cpp.o" "gcc" "src/CMakeFiles/hpcla_cassalite.dir/cassalite/cql.cpp.o.d"
  "/root/repo/src/cassalite/gossip.cpp" "src/CMakeFiles/hpcla_cassalite.dir/cassalite/gossip.cpp.o" "gcc" "src/CMakeFiles/hpcla_cassalite.dir/cassalite/gossip.cpp.o.d"
  "/root/repo/src/cassalite/memtable.cpp" "src/CMakeFiles/hpcla_cassalite.dir/cassalite/memtable.cpp.o" "gcc" "src/CMakeFiles/hpcla_cassalite.dir/cassalite/memtable.cpp.o.d"
  "/root/repo/src/cassalite/ring.cpp" "src/CMakeFiles/hpcla_cassalite.dir/cassalite/ring.cpp.o" "gcc" "src/CMakeFiles/hpcla_cassalite.dir/cassalite/ring.cpp.o.d"
  "/root/repo/src/cassalite/sstable.cpp" "src/CMakeFiles/hpcla_cassalite.dir/cassalite/sstable.cpp.o" "gcc" "src/CMakeFiles/hpcla_cassalite.dir/cassalite/sstable.cpp.o.d"
  "/root/repo/src/cassalite/storage_engine.cpp" "src/CMakeFiles/hpcla_cassalite.dir/cassalite/storage_engine.cpp.o" "gcc" "src/CMakeFiles/hpcla_cassalite.dir/cassalite/storage_engine.cpp.o.d"
  "/root/repo/src/cassalite/value.cpp" "src/CMakeFiles/hpcla_cassalite.dir/cassalite/value.cpp.o" "gcc" "src/CMakeFiles/hpcla_cassalite.dir/cassalite/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hpcla_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
