# Empty dependencies file for hpcla_cassalite.
# This may be replaced when dependencies are built.
