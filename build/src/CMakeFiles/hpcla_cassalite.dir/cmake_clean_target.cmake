file(REMOVE_RECURSE
  "libhpcla_cassalite.a"
)
