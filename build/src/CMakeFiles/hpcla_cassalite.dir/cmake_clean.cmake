file(REMOVE_RECURSE
  "CMakeFiles/hpcla_cassalite.dir/cassalite/bloom.cpp.o"
  "CMakeFiles/hpcla_cassalite.dir/cassalite/bloom.cpp.o.d"
  "CMakeFiles/hpcla_cassalite.dir/cassalite/cluster.cpp.o"
  "CMakeFiles/hpcla_cassalite.dir/cassalite/cluster.cpp.o.d"
  "CMakeFiles/hpcla_cassalite.dir/cassalite/commitlog.cpp.o"
  "CMakeFiles/hpcla_cassalite.dir/cassalite/commitlog.cpp.o.d"
  "CMakeFiles/hpcla_cassalite.dir/cassalite/cql.cpp.o"
  "CMakeFiles/hpcla_cassalite.dir/cassalite/cql.cpp.o.d"
  "CMakeFiles/hpcla_cassalite.dir/cassalite/gossip.cpp.o"
  "CMakeFiles/hpcla_cassalite.dir/cassalite/gossip.cpp.o.d"
  "CMakeFiles/hpcla_cassalite.dir/cassalite/memtable.cpp.o"
  "CMakeFiles/hpcla_cassalite.dir/cassalite/memtable.cpp.o.d"
  "CMakeFiles/hpcla_cassalite.dir/cassalite/ring.cpp.o"
  "CMakeFiles/hpcla_cassalite.dir/cassalite/ring.cpp.o.d"
  "CMakeFiles/hpcla_cassalite.dir/cassalite/sstable.cpp.o"
  "CMakeFiles/hpcla_cassalite.dir/cassalite/sstable.cpp.o.d"
  "CMakeFiles/hpcla_cassalite.dir/cassalite/storage_engine.cpp.o"
  "CMakeFiles/hpcla_cassalite.dir/cassalite/storage_engine.cpp.o.d"
  "CMakeFiles/hpcla_cassalite.dir/cassalite/value.cpp.o"
  "CMakeFiles/hpcla_cassalite.dir/cassalite/value.cpp.o.d"
  "libhpcla_cassalite.a"
  "libhpcla_cassalite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcla_cassalite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
