file(REMOVE_RECURSE
  "libhpcla_server.a"
)
