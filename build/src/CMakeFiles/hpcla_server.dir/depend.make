# Empty dependencies file for hpcla_server.
# This may be replaced when dependencies are built.
