file(REMOVE_RECURSE
  "CMakeFiles/hpcla_server.dir/server/render.cpp.o"
  "CMakeFiles/hpcla_server.dir/server/render.cpp.o.d"
  "CMakeFiles/hpcla_server.dir/server/server.cpp.o"
  "CMakeFiles/hpcla_server.dir/server/server.cpp.o.d"
  "libhpcla_server.a"
  "libhpcla_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcla_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
