file(REMOVE_RECURSE
  "CMakeFiles/hpcla_buslite.dir/buslite/broker.cpp.o"
  "CMakeFiles/hpcla_buslite.dir/buslite/broker.cpp.o.d"
  "libhpcla_buslite.a"
  "libhpcla_buslite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcla_buslite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
