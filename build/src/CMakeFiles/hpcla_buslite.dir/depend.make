# Empty dependencies file for hpcla_buslite.
# This may be replaced when dependencies are built.
