file(REMOVE_RECURSE
  "libhpcla_buslite.a"
)
