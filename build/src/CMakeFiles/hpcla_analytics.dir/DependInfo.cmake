
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/app_profile.cpp" "src/CMakeFiles/hpcla_analytics.dir/analytics/app_profile.cpp.o" "gcc" "src/CMakeFiles/hpcla_analytics.dir/analytics/app_profile.cpp.o.d"
  "/root/repo/src/analytics/assoc.cpp" "src/CMakeFiles/hpcla_analytics.dir/analytics/assoc.cpp.o" "gcc" "src/CMakeFiles/hpcla_analytics.dir/analytics/assoc.cpp.o.d"
  "/root/repo/src/analytics/composite.cpp" "src/CMakeFiles/hpcla_analytics.dir/analytics/composite.cpp.o" "gcc" "src/CMakeFiles/hpcla_analytics.dir/analytics/composite.cpp.o.d"
  "/root/repo/src/analytics/context.cpp" "src/CMakeFiles/hpcla_analytics.dir/analytics/context.cpp.o" "gcc" "src/CMakeFiles/hpcla_analytics.dir/analytics/context.cpp.o.d"
  "/root/repo/src/analytics/distribution.cpp" "src/CMakeFiles/hpcla_analytics.dir/analytics/distribution.cpp.o" "gcc" "src/CMakeFiles/hpcla_analytics.dir/analytics/distribution.cpp.o.d"
  "/root/repo/src/analytics/dtree.cpp" "src/CMakeFiles/hpcla_analytics.dir/analytics/dtree.cpp.o" "gcc" "src/CMakeFiles/hpcla_analytics.dir/analytics/dtree.cpp.o.d"
  "/root/repo/src/analytics/heatmap.cpp" "src/CMakeFiles/hpcla_analytics.dir/analytics/heatmap.cpp.o" "gcc" "src/CMakeFiles/hpcla_analytics.dir/analytics/heatmap.cpp.o.d"
  "/root/repo/src/analytics/prediction.cpp" "src/CMakeFiles/hpcla_analytics.dir/analytics/prediction.cpp.o" "gcc" "src/CMakeFiles/hpcla_analytics.dir/analytics/prediction.cpp.o.d"
  "/root/repo/src/analytics/queries.cpp" "src/CMakeFiles/hpcla_analytics.dir/analytics/queries.cpp.o" "gcc" "src/CMakeFiles/hpcla_analytics.dir/analytics/queries.cpp.o.d"
  "/root/repo/src/analytics/reliability.cpp" "src/CMakeFiles/hpcla_analytics.dir/analytics/reliability.cpp.o" "gcc" "src/CMakeFiles/hpcla_analytics.dir/analytics/reliability.cpp.o.d"
  "/root/repo/src/analytics/text.cpp" "src/CMakeFiles/hpcla_analytics.dir/analytics/text.cpp.o" "gcc" "src/CMakeFiles/hpcla_analytics.dir/analytics/text.cpp.o.d"
  "/root/repo/src/analytics/timeseries.cpp" "src/CMakeFiles/hpcla_analytics.dir/analytics/timeseries.cpp.o" "gcc" "src/CMakeFiles/hpcla_analytics.dir/analytics/timeseries.cpp.o.d"
  "/root/repo/src/analytics/transfer_entropy.cpp" "src/CMakeFiles/hpcla_analytics.dir/analytics/transfer_entropy.cpp.o" "gcc" "src/CMakeFiles/hpcla_analytics.dir/analytics/transfer_entropy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hpcla_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpcla_titanlog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpcla_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpcla_cassalite.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpcla_buslite.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpcla_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
