# Empty compiler generated dependencies file for hpcla_analytics.
# This may be replaced when dependencies are built.
