file(REMOVE_RECURSE
  "libhpcla_analytics.a"
)
