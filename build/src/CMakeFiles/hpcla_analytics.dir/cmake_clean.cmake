file(REMOVE_RECURSE
  "CMakeFiles/hpcla_analytics.dir/analytics/app_profile.cpp.o"
  "CMakeFiles/hpcla_analytics.dir/analytics/app_profile.cpp.o.d"
  "CMakeFiles/hpcla_analytics.dir/analytics/assoc.cpp.o"
  "CMakeFiles/hpcla_analytics.dir/analytics/assoc.cpp.o.d"
  "CMakeFiles/hpcla_analytics.dir/analytics/composite.cpp.o"
  "CMakeFiles/hpcla_analytics.dir/analytics/composite.cpp.o.d"
  "CMakeFiles/hpcla_analytics.dir/analytics/context.cpp.o"
  "CMakeFiles/hpcla_analytics.dir/analytics/context.cpp.o.d"
  "CMakeFiles/hpcla_analytics.dir/analytics/distribution.cpp.o"
  "CMakeFiles/hpcla_analytics.dir/analytics/distribution.cpp.o.d"
  "CMakeFiles/hpcla_analytics.dir/analytics/dtree.cpp.o"
  "CMakeFiles/hpcla_analytics.dir/analytics/dtree.cpp.o.d"
  "CMakeFiles/hpcla_analytics.dir/analytics/heatmap.cpp.o"
  "CMakeFiles/hpcla_analytics.dir/analytics/heatmap.cpp.o.d"
  "CMakeFiles/hpcla_analytics.dir/analytics/prediction.cpp.o"
  "CMakeFiles/hpcla_analytics.dir/analytics/prediction.cpp.o.d"
  "CMakeFiles/hpcla_analytics.dir/analytics/queries.cpp.o"
  "CMakeFiles/hpcla_analytics.dir/analytics/queries.cpp.o.d"
  "CMakeFiles/hpcla_analytics.dir/analytics/reliability.cpp.o"
  "CMakeFiles/hpcla_analytics.dir/analytics/reliability.cpp.o.d"
  "CMakeFiles/hpcla_analytics.dir/analytics/text.cpp.o"
  "CMakeFiles/hpcla_analytics.dir/analytics/text.cpp.o.d"
  "CMakeFiles/hpcla_analytics.dir/analytics/timeseries.cpp.o"
  "CMakeFiles/hpcla_analytics.dir/analytics/timeseries.cpp.o.d"
  "CMakeFiles/hpcla_analytics.dir/analytics/transfer_entropy.cpp.o"
  "CMakeFiles/hpcla_analytics.dir/analytics/transfer_entropy.cpp.o.d"
  "libhpcla_analytics.a"
  "libhpcla_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcla_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
