file(REMOVE_RECURSE
  "libhpcla_rowstore.a"
)
