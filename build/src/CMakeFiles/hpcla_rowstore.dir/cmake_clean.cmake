file(REMOVE_RECURSE
  "CMakeFiles/hpcla_rowstore.dir/rowstore/rowstore.cpp.o"
  "CMakeFiles/hpcla_rowstore.dir/rowstore/rowstore.cpp.o.d"
  "libhpcla_rowstore.a"
  "libhpcla_rowstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcla_rowstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
