# Empty dependencies file for hpcla_rowstore.
# This may be replaced when dependencies are built.
