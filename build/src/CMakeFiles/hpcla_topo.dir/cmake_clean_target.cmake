file(REMOVE_RECURSE
  "libhpcla_topo.a"
)
