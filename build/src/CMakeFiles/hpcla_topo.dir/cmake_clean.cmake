file(REMOVE_RECURSE
  "CMakeFiles/hpcla_topo.dir/topo/cname.cpp.o"
  "CMakeFiles/hpcla_topo.dir/topo/cname.cpp.o.d"
  "CMakeFiles/hpcla_topo.dir/topo/machine.cpp.o"
  "CMakeFiles/hpcla_topo.dir/topo/machine.cpp.o.d"
  "libhpcla_topo.a"
  "libhpcla_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcla_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
