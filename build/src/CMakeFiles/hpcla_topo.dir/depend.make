# Empty dependencies file for hpcla_topo.
# This may be replaced when dependencies are built.
