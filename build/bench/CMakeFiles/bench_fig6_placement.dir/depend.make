# Empty dependencies file for bench_fig6_placement.
# This may be replaced when dependencies are built.
