
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_heatmap.cpp" "bench/CMakeFiles/bench_fig5_heatmap.dir/bench_fig5_heatmap.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5_heatmap.dir/bench_fig5_heatmap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hpcla_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpcla_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpcla_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpcla_rowstore.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpcla_buslite.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpcla_cassalite.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpcla_titanlog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpcla_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpcla_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
