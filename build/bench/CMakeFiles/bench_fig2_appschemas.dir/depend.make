# Empty dependencies file for bench_fig2_appschemas.
# This may be replaced when dependencies are built.
