file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_appschemas.dir/bench_fig2_appschemas.cpp.o"
  "CMakeFiles/bench_fig2_appschemas.dir/bench_fig2_appschemas.cpp.o.d"
  "bench_fig2_appschemas"
  "bench_fig2_appschemas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_appschemas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
