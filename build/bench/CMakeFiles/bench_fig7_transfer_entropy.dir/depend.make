# Empty dependencies file for bench_fig7_transfer_entropy.
# This may be replaced when dependencies are built.
