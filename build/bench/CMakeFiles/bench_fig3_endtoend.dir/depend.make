# Empty dependencies file for bench_fig3_endtoend.
# This may be replaced when dependencies are built.
