file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_endtoend.dir/bench_fig3_endtoend.cpp.o"
  "CMakeFiles/bench_fig3_endtoend.dir/bench_fig3_endtoend.cpp.o.d"
  "bench_fig3_endtoend"
  "bench_fig3_endtoend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
