# Empty dependencies file for bench_fig7_text.
# This may be replaced when dependencies are built.
