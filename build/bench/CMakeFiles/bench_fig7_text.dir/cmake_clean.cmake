file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_text.dir/bench_fig7_text.cpp.o"
  "CMakeFiles/bench_fig7_text.dir/bench_fig7_text.cpp.o.d"
  "bench_fig7_text"
  "bench_fig7_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
