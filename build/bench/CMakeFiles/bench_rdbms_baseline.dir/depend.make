# Empty dependencies file for bench_rdbms_baseline.
# This may be replaced when dependencies are built.
