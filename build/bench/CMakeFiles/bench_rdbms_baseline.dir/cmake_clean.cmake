file(REMOVE_RECURSE
  "CMakeFiles/bench_rdbms_baseline.dir/bench_rdbms_baseline.cpp.o"
  "CMakeFiles/bench_rdbms_baseline.dir/bench_rdbms_baseline.cpp.o.d"
  "bench_rdbms_baseline"
  "bench_rdbms_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rdbms_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
