# Empty dependencies file for bench_fig1_schemas.
# This may be replaced when dependencies are built.
