file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_schemas.dir/bench_fig1_schemas.cpp.o"
  "CMakeFiles/bench_fig1_schemas.dir/bench_fig1_schemas.cpp.o.d"
  "bench_fig1_schemas"
  "bench_fig1_schemas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_schemas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
