# Empty dependencies file for causal_analysis.
# This may be replaced when dependencies are built.
