file(REMOVE_RECURSE
  "CMakeFiles/causal_analysis.dir/causal_analysis.cpp.o"
  "CMakeFiles/causal_analysis.dir/causal_analysis.cpp.o.d"
  "causal_analysis"
  "causal_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causal_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
