file(REMOVE_RECURSE
  "CMakeFiles/cluster_admin.dir/cluster_admin.cpp.o"
  "CMakeFiles/cluster_admin.dir/cluster_admin.cpp.o.d"
  "cluster_admin"
  "cluster_admin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_admin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
