# Empty compiler generated dependencies file for cluster_admin.
# This may be replaced when dependencies are built.
