# Empty compiler generated dependencies file for analytics_shell.
# This may be replaced when dependencies are built.
