file(REMOVE_RECURSE
  "CMakeFiles/analytics_shell.dir/analytics_shell.cpp.o"
  "CMakeFiles/analytics_shell.dir/analytics_shell.cpp.o.d"
  "analytics_shell"
  "analytics_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
