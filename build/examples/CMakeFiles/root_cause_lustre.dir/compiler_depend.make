# Empty compiler generated dependencies file for root_cause_lustre.
# This may be replaced when dependencies are built.
