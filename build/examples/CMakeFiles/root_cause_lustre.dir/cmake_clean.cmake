file(REMOVE_RECURSE
  "CMakeFiles/root_cause_lustre.dir/root_cause_lustre.cpp.o"
  "CMakeFiles/root_cause_lustre.dir/root_cause_lustre.cpp.o.d"
  "root_cause_lustre"
  "root_cause_lustre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/root_cause_lustre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
