file(REMOVE_RECURSE
  "CMakeFiles/mce_heatmap.dir/mce_heatmap.cpp.o"
  "CMakeFiles/mce_heatmap.dir/mce_heatmap.cpp.o.d"
  "mce_heatmap"
  "mce_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mce_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
