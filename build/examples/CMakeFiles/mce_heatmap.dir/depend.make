# Empty dependencies file for mce_heatmap.
# This may be replaced when dependencies are built.
