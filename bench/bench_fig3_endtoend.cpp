// Fig 3 — end-to-end architecture: frontend JSON -> analytics server ->
// (query engine | big data unit) -> backend -> JSON response.
//
// Measures whole-round-trip latency for each query class, showing the
// simple/complex split the architecture is built around, plus the
// long-poll session overhead.
#include "bench_util.hpp"

#include "cassalite/cql.hpp"

namespace hpcla::bench {
namespace {

struct ServerStack {
  LoadedStack stack;
  server::AnalyticsServer server;

  ServerStack()
      : stack(cluster_opts(4), engine_opts(4), mixed_scenario(1.0, 4)),
        server(stack.cluster, stack.engine) {
    HPCLA_CHECK(model::load_eventtypes(stack.cluster).is_ok());
  }
};

ServerStack& fixture() {
  static ServerStack s;
  return s;
}

const char* kSimpleSynopsis =
    R"({"op":"synopsis","window":{"begin":1489449600,"end":1489456800}})";
const char* kSimpleEvents =
    R"({"op":"events","limit":100,
        "context":{"window":{"begin":1489449600,"end":1489453200},
                   "types":["MCE"]}})";
const char* kComplexHeatmap =
    R"({"op":"heatmap",
        "context":{"window":{"begin":1489449600,"end":1489456800},
                   "types":["MCE"]}})";
const char* kComplexWordCount =
    R"({"op":"word_count","top_k":10,
        "context":{"window":{"begin":1489449600,"end":1489456800},
                   "types":["LustreError"]}})";

void run_query(benchmark::State& state, const char* query) {
  auto& f = fixture();
  for (auto _ : state) {
    auto response = f.server.handle_text(query);
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Fig3_SimpleSynopsis(benchmark::State& state) {
  run_query(state, kSimpleSynopsis);
}
BENCHMARK(BM_Fig3_SimpleSynopsis);

void BM_Fig3_SimpleEventSlice(benchmark::State& state) {
  run_query(state, kSimpleEvents);
}
BENCHMARK(BM_Fig3_SimpleEventSlice);

void BM_Fig3_ComplexHeatmap(benchmark::State& state) {
  run_query(state, kComplexHeatmap);
}
BENCHMARK(BM_Fig3_ComplexHeatmap);

void BM_Fig3_ComplexWordCount(benchmark::State& state) {
  run_query(state, kComplexWordCount);
}
BENCHMARK(BM_Fig3_ComplexWordCount);

/// The CQL path: parse + schema validation + partition read.
void BM_Fig3_CqlSelect(benchmark::State& state) {
  auto& f = fixture();
  const std::string query =
      R"({"op":"cql","query":"SELECT * FROM event_by_time )"
      R"(WHERE hour = 413736 AND type = 'MCE' LIMIT 100"})";
  for (auto _ : state) {
    auto response = f.server.handle_text(query);
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fig3_CqlSelect);

/// CQL parse cost alone.
void BM_Fig3_CqlParseOnly(benchmark::State& state) {
  const std::string_view stmt =
      "SELECT node, message FROM event_by_time WHERE hour = 413736 AND "
      "type = 'MCE' AND ts >= 1489449600 AND ts < 1489453200 ORDER BY ts "
      "DESC LIMIT 100";
  for (auto _ : state) {
    auto parsed = cassalite::parse_cql(stmt);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fig3_CqlParseOnly);

/// Long-poll session overhead on top of direct dispatch.
void BM_Fig3_AsyncSessionRoundTrip(benchmark::State& state) {
  auto& f = fixture();
  server::AsyncSession session(f.server);
  auto request = Json::parse(kSimpleSynopsis);
  HPCLA_CHECK(request.is_ok());
  for (auto _ : state) {
    const auto ticket = session.submit(request.value());
    auto response = session.wait(ticket);
    HPCLA_CHECK(response.is_ok());
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_Fig3_AsyncSessionRoundTrip);

}  // namespace
}  // namespace hpcla::bench

int main(int argc, char** argv) { return hpcla::bench::bench_main(argc, argv); }
