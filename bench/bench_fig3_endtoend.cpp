// Fig 3 — end-to-end architecture: frontend JSON -> analytics server ->
// (query engine | big data unit) -> backend -> JSON response.
//
// Measures whole-round-trip latency for each query class, showing the
// simple/complex split the architecture is built around, plus the
// long-poll session overhead.
#include "bench_util.hpp"

#include <algorithm>
#include <limits>

#include "buslite/broker.hpp"
#include "cassalite/cql.hpp"
#include "common/clock.hpp"
#include "common/quantile_sketch.hpp"
#include "common/telemetry.hpp"
#include "model/selftel/selftel.hpp"
#include "model/views/views.hpp"

namespace hpcla::bench {
namespace {

struct ServerStack {
  LoadedStack stack;
  server::AnalyticsServer server;

  ServerStack()
      : stack(cluster_opts(4), engine_opts(4), mixed_scenario(1.0, 4)),
        server(stack.cluster, stack.engine) {
    HPCLA_CHECK(model::load_eventtypes(stack.cluster).is_ok());
  }
};

ServerStack& fixture() {
  static ServerStack s;
  return s;
}

const char* kSimpleSynopsis =
    R"({"op":"synopsis","window":{"begin":1489449600,"end":1489456800}})";
const char* kSimpleEvents =
    R"({"op":"events","limit":100,
        "context":{"window":{"begin":1489449600,"end":1489453200},
                   "types":["MCE"]}})";
const char* kComplexHeatmap =
    R"({"op":"heatmap",
        "context":{"window":{"begin":1489449600,"end":1489456800},
                   "types":["MCE"]}})";
const char* kComplexWordCount =
    R"({"op":"word_count","top_k":10,
        "context":{"window":{"begin":1489449600,"end":1489456800},
                   "types":["LustreError"]}})";

void run_query(benchmark::State& state, const char* query) {
  auto& f = fixture();
  for (auto _ : state) {
    auto response = f.server.handle_text(query);
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Fig3_SimpleSynopsis(benchmark::State& state) {
  run_query(state, kSimpleSynopsis);
}
BENCHMARK(BM_Fig3_SimpleSynopsis);

void BM_Fig3_SimpleEventSlice(benchmark::State& state) {
  run_query(state, kSimpleEvents);
}
BENCHMARK(BM_Fig3_SimpleEventSlice);

void BM_Fig3_ComplexHeatmap(benchmark::State& state) {
  run_query(state, kComplexHeatmap);
}
BENCHMARK(BM_Fig3_ComplexHeatmap);

void BM_Fig3_ComplexWordCount(benchmark::State& state) {
  run_query(state, kComplexWordCount);
}
BENCHMARK(BM_Fig3_ComplexWordCount);

/// The CQL path: parse + schema validation + partition read.
void BM_Fig3_CqlSelect(benchmark::State& state) {
  auto& f = fixture();
  const std::string query =
      R"({"op":"cql","query":"SELECT * FROM event_by_time )"
      R"(WHERE hour = 413736 AND type = 'MCE' LIMIT 100"})";
  for (auto _ : state) {
    auto response = f.server.handle_text(query);
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fig3_CqlSelect);

/// CQL parse cost alone.
void BM_Fig3_CqlParseOnly(benchmark::State& state) {
  const std::string_view stmt =
      "SELECT node, message FROM event_by_time WHERE hour = 413736 AND "
      "type = 'MCE' AND ts >= 1489449600 AND ts < 1489453200 ORDER BY ts "
      "DESC LIMIT 100";
  for (auto _ : state) {
    auto parsed = cassalite::parse_cql(stmt);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fig3_CqlParseOnly);

/// Long-poll session overhead on top of direct dispatch.
void BM_Fig3_AsyncSessionRoundTrip(benchmark::State& state) {
  auto& f = fixture();
  server::AsyncSession session(f.server);
  auto request = Json::parse(kSimpleSynopsis);
  HPCLA_CHECK(request.is_ok());
  for (auto _ : state) {
    const auto ticket = session.submit(request.value());
    auto response = session.wait(ticket);
    HPCLA_CHECK(response.is_ok());
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_Fig3_AsyncSessionRoundTrip);

/// Tracing-overhead probe (acceptance: ≤5% on the complex path). Times the
/// heatmap query with the tracer off and on; the delta is the cost of the
/// root span plus every child span the query opens down the stack. Written
/// as a root-level field of the JSON summary; check_trend.py reports it
/// informationally.
Json telemetry_overhead_probe() {
  auto& f = fixture();
  auto& tr = telemetry::tracer();
  constexpr int kWarmup = 5;
  constexpr int kIters = 20;
  constexpr int kRounds = 5;
  const auto mean_query_us = [&f](bool tracing) {
    telemetry::tracer().set_enabled(tracing);
    const Stopwatch watch;
    for (int i = 0; i < kIters; ++i) {
      auto r = f.server.handle_text(kComplexHeatmap);
      benchmark::DoNotOptimize(r);
    }
    return static_cast<double>(watch.elapsed_micros()) / kIters;
  };
  for (int i = 0; i < kWarmup; ++i) {
    auto r = f.server.handle_text(kComplexHeatmap);
    benchmark::DoNotOptimize(r);
  }
  // Alternate off/on rounds and keep the per-mode minimum: the min is what
  // the query costs without scheduler noise, which is the signal the ≤5%
  // budget is about. A single long off-then-on pass conflates tracer cost
  // with whatever the OS did during the second half.
  double off_us = std::numeric_limits<double>::max();
  double on_us = std::numeric_limits<double>::max();
  for (int round = 0; round < kRounds; ++round) {
    off_us = std::min(off_us, mean_query_us(false));
    on_us = std::min(on_us, mean_query_us(true));
  }
  tr.set_enabled(true);
  Json probe = Json::object();
  probe["query"] = "heatmap";
  probe["tracing_off_us"] = off_us;
  probe["tracing_on_us"] = on_us;
  probe["overhead_pct"] =
      off_us > 0.0 ? (on_us - off_us) / off_us * 100.0 : 0.0;
  return probe;
}

/// Self-telemetry export probe (acceptance: ≤5% on the complex path with
/// the full closed loop running). "On" rounds run the heatmap workload
/// and then pump a SelfTelemetryLoop inside the timed region, so the
/// per-query mean amortizes exporting metric deltas and tail-sampled
/// spans, landing them in the sys_* tables, and evaluating alert rules.
/// "Off" rounds run the bare workload. Alternating min-of-rounds as in
/// the tracing probe; check_trend.py gates on overhead_pct.
Json selftelemetry_overhead_probe() {
  auto& f = fixture();
  buslite::Broker broker;
  model::selftel::SelfTelemetryLoop loop(f.stack.cluster, broker);
  constexpr int kWarmup = 5;
  constexpr int kIters = 20;
  constexpr int kRounds = 5;
  const auto mean_query_us = [&](bool exporting) {
    const Stopwatch watch;
    for (int i = 0; i < kIters; ++i) {
      auto r = f.server.handle_text(kComplexHeatmap);
      benchmark::DoNotOptimize(r);
    }
    if (exporting) loop.pump();
    return static_cast<double>(watch.elapsed_micros()) / kIters;
  };
  for (int i = 0; i < kWarmup; ++i) {
    auto r = f.server.handle_text(kComplexHeatmap);
    benchmark::DoNotOptimize(r);
  }
  loop.pump();  // absorb fixture-setup metric movement before timing
  double off_us = std::numeric_limits<double>::max();
  double on_us = std::numeric_limits<double>::max();
  for (int round = 0; round < kRounds; ++round) {
    off_us = std::min(off_us, mean_query_us(false));
    on_us = std::min(on_us, mean_query_us(true));
  }
  const double overhead_pct =
      off_us > 0.0 ? (on_us - off_us) / off_us * 100.0 : 0.0;
  Json probe = Json::object();
  probe["query"] = "heatmap";
  probe["export_off_us"] = off_us;
  probe["export_on_us"] = on_us;
  probe["overhead_pct"] = overhead_pct;
  probe["alerts_fired"] =
      static_cast<std::int64_t>(loop.alerts().fired_count());
  probe["accepted"] = overhead_pct <= 5.0;
  return probe;
}

/// Cached-path probe (acceptance: warm complex-query p50 ≥ 10x faster
/// than cold on the same run). "Cold" is the regular engine pipeline —
/// views detached, so every heatmap query runs scan -> shuffle -> reduce.
/// "Warm" attaches a ViewCatalog built from the same ingested events and
/// primes the result cache once, so subsequent queries are cache hits
/// (epoch check + stored-JSON copy). Rounds alternate cold/warm and keep
/// each mode's best p50, like the telemetry probe, so the comparison is
/// scheduler-noise-resistant and always same-run, same-machine.
Json cached_path_probe() {
  auto& f = fixture();
  model::views::ViewCatalog views;
  for (const auto& e : f.stack.logs.events) views.apply(e, true);
  constexpr int kWarmup = 3;
  constexpr int kIters = 20;
  constexpr int kRounds = 5;
  const auto p50_query_us = [&f] {
    QuantileSketch lat(0.005);
    for (int i = 0; i < kIters; ++i) {
      const Stopwatch watch;
      auto r = f.server.handle_text(kComplexHeatmap);
      benchmark::DoNotOptimize(r);
      lat.add(static_cast<double>(watch.elapsed_micros()));
    }
    return lat.quantile(0.5);
  };
  double cold_us = std::numeric_limits<double>::max();
  double warm_us = std::numeric_limits<double>::max();
  for (int round = 0; round < kRounds; ++round) {
    f.server.set_view_catalog(nullptr);  // engine pipeline every iteration
    for (int i = 0; i < kWarmup; ++i) {
      auto r = f.server.handle_text(kComplexHeatmap);
      benchmark::DoNotOptimize(r);
    }
    cold_us = std::min(cold_us, p50_query_us());
    f.server.set_view_catalog(&views);
    for (int i = 0; i < kWarmup; ++i) {  // first one primes the cache
      auto r = f.server.handle_text(kComplexHeatmap);
      benchmark::DoNotOptimize(r);
    }
    warm_us = std::min(warm_us, p50_query_us());
  }
  // Detach before the local ViewCatalog dies; drop its cached entries so
  // nothing in the fixture outlives the probe.
  f.server.set_view_catalog(nullptr);
  f.server.query_cache().clear();
  const double speedup = warm_us > 0.0 ? cold_us / warm_us : 0.0;
  Json probe = Json::object();
  probe["query"] = "heatmap";
  probe["cold_p50_us"] = cold_us;
  probe["warm_p50_us"] = warm_us;
  probe["speedup"] = speedup;
  probe["accepted"] = speedup >= 10.0;
  return probe;
}

}  // namespace
}  // namespace hpcla::bench

int main(int argc, char** argv) {
  return hpcla::bench::bench_main(
      argc, argv, [](hpcla::bench::BenchJsonWriter& writer) {
        writer.root_extra()["telemetry_overhead"] =
            hpcla::bench::telemetry_overhead_probe();
        writer.root_extra()["selftelemetry"] =
            hpcla::bench::selftelemetry_overhead_probe();
        writer.root_extra()["cached_path"] =
            hpcla::bench::cached_path_probe();
      });
}
