// Shared scaffolding for the figure-reproduction benches: canned scenarios,
// loaded-cluster fixtures, and counters helpers. Each bench binary
// regenerates the content of one paper figure/claim (see DESIGN.md §4 and
// EXPERIMENTS.md for the mapping).
#pragma once

#include <benchmark/benchmark.h>

#include <memory>

#include "model/ingest.hpp"
#include "model/streaming_ingest.hpp"
#include "model/tables.hpp"
#include "server/server.hpp"
#include "titanlog/generator.hpp"

namespace hpcla::bench {

constexpr UnixSeconds kT0 = 1489449600;  // 2017-03-14 00:00:00 UTC

/// Cluster + engine + data model, with a scenario already ingested.
struct LoadedStack {
  cassalite::Cluster cluster;
  sparklite::Engine engine;
  titanlog::GeneratedLogs logs;

  LoadedStack(cassalite::ClusterOptions copts, sparklite::EngineOptions eopts,
              const titanlog::ScenarioConfig& cfg)
      : cluster(copts), engine(eopts) {
    HPCLA_CHECK(model::create_data_model(cluster).is_ok());
    logs = titanlog::Generator(cfg).generate();
    model::BatchIngestor ingestor(cluster, engine);
    auto report = ingestor.ingest_records(logs.events, logs.jobs);
    HPCLA_CHECK(report.write_failures == 0);
  }
};

inline cassalite::ClusterOptions cluster_opts(std::size_t nodes,
                                              std::size_t rf = 3) {
  cassalite::ClusterOptions o;
  o.node_count = nodes;
  o.replication_factor = rf;
  return o;
}

inline sparklite::EngineOptions engine_opts(std::size_t workers,
                                            bool locality = true,
                                            int penalty_us = 0) {
  sparklite::EngineOptions o;
  o.workers = workers;
  o.locality_aware = locality;
  o.remote_fetch_penalty_us = penalty_us;
  return o;
}

/// A two-hour mixed scenario: background + one MCE hotspot + job mix.
/// `scale` multiplies the background volume.
inline titanlog::ScenarioConfig mixed_scenario(double scale = 1.0,
                                               std::uint64_t seed = 1) {
  titanlog::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.window = TimeRange{kT0, kT0 + 2 * 3600};
  cfg.background_scale = scale;
  titanlog::HotspotSpec hs;
  hs.type = titanlog::EventType::kMachineCheck;
  hs.location = topo::Coord{4, 2, -1, -1, -1};
  hs.window = TimeRange{kT0, kT0 + 3600};
  hs.rate_per_node_hour = 6.0;
  cfg.hotspots.push_back(hs);
  titanlog::JobMixSpec jobs;
  jobs.users = 10;
  jobs.apps = 6;
  jobs.jobs_per_hour = 40;
  jobs.max_size_log2 = 6;
  cfg.jobs = jobs;
  return cfg;
}

/// A storm-heavy Lustre scenario for the text benches.
inline titanlog::ScenarioConfig storm_scenario(double msgs_per_second,
                                               std::uint64_t seed = 2) {
  titanlog::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.window = TimeRange{kT0, kT0 + 3600};
  cfg.background_scale = 1.0;
  titanlog::LustreStormSpec storm;
  storm.start = kT0 + 1800;
  storm.duration_seconds = 300;
  storm.ost_index = 0x42;
  storm.messages_per_second = msgs_per_second;
  cfg.storms.push_back(storm);
  return cfg;
}

}  // namespace hpcla::bench
