// Shared scaffolding for the figure-reproduction benches: canned scenarios,
// loaded-cluster fixtures, counters helpers, and the machine-readable JSON
// summary every bench binary emits (BENCH_<name>.json, overridable with
// `--json <path>`) so the perf trajectory can be tracked across PRs. Each
// bench binary regenerates the content of one paper figure/claim (see
// DESIGN.md §4 and EXPERIMENTS.md for the mapping).
#pragma once

#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/telemetry.hpp"
#include "model/ingest.hpp"
#include "model/streaming_ingest.hpp"
#include "model/tables.hpp"
#include "server/server.hpp"
#include "titanlog/generator.hpp"

namespace hpcla::bench {

constexpr UnixSeconds kT0 = 1489449600;  // 2017-03-14 00:00:00 UTC

/// Cluster + engine + data model, with a scenario already ingested.
struct LoadedStack {
  cassalite::Cluster cluster;
  sparklite::Engine engine;
  titanlog::GeneratedLogs logs;

  LoadedStack(cassalite::ClusterOptions copts, sparklite::EngineOptions eopts,
              const titanlog::ScenarioConfig& cfg)
      : cluster(copts), engine(eopts) {
    HPCLA_CHECK(model::create_data_model(cluster).is_ok());
    logs = titanlog::Generator(cfg).generate();
    model::BatchIngestor ingestor(cluster, engine);
    auto report = ingestor.ingest_records(logs.events, logs.jobs);
    HPCLA_CHECK(report.write_failures == 0);
  }
};

inline cassalite::ClusterOptions cluster_opts(std::size_t nodes,
                                              std::size_t rf = 3) {
  cassalite::ClusterOptions o;
  o.node_count = nodes;
  o.replication_factor = rf;
  return o;
}

inline sparklite::EngineOptions engine_opts(std::size_t workers,
                                            bool locality = true,
                                            int penalty_us = 0) {
  sparklite::EngineOptions o;
  o.workers = workers;
  o.locality_aware = locality;
  o.remote_fetch_penalty_us = penalty_us;
  return o;
}

/// A two-hour mixed scenario: background + one MCE hotspot + job mix.
/// `scale` multiplies the background volume.
inline titanlog::ScenarioConfig mixed_scenario(double scale = 1.0,
                                               std::uint64_t seed = 1) {
  titanlog::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.window = TimeRange{kT0, kT0 + 2 * 3600};
  cfg.background_scale = scale;
  titanlog::HotspotSpec hs;
  hs.type = titanlog::EventType::kMachineCheck;
  hs.location = topo::Coord{4, 2, -1, -1, -1};
  hs.window = TimeRange{kT0, kT0 + 3600};
  hs.rate_per_node_hour = 6.0;
  cfg.hotspots.push_back(hs);
  titanlog::JobMixSpec jobs;
  jobs.users = 10;
  jobs.apps = 6;
  jobs.jobs_per_hour = 40;
  jobs.max_size_log2 = 6;
  cfg.jobs = jobs;
  return cfg;
}

// --------------------------------------------------------- JSON summaries

/// Process peak resident set in bytes (ru_maxrss is KiB on Linux). Stamped
/// into every bench summary so memory regressions surface next to latency.
inline std::int64_t peak_rss_bytes() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::int64_t>(ru.ru_maxrss) * 1024;
}

/// Total bytes the sparklite shuffle spilled to disk this process (the
/// SpillManager mirrors its counter into the global telemetry registry).
inline std::int64_t bytes_spilled() {
  return static_cast<std::int64_t>(
      telemetry::registry().counter("sparklite.spill.bytes").value());
}

/// One summarized result row: throughput plus latency percentiles in µs.
/// Google-benchmark runs report only a mean per-iteration time, so for
/// those p50 == p99 == the mean; hand-rolled benches fill real percentiles.
struct BenchResultRow {
  std::string name;
  double ops_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  Json extra = Json::object();  ///< user counters, config, derived ratios
};

/// Accumulates rows and writes `{"bench": ..., "results": [...]}`.
class BenchJsonWriter {
 public:
  BenchJsonWriter(std::string bench_name, std::string path)
      : bench_name_(std::move(bench_name)), path_(std::move(path)) {}

  void add(BenchResultRow row) { rows_.push_back(std::move(row)); }

  /// Top-level members beside "results" (e.g. acceptance-check verdicts).
  Json& root_extra() { return root_extra_; }

  /// Environment signature stamped into every summary: check_trend.py
  /// refuses to compare runs whose signatures differ (a 1-core CI box
  /// gating 8-thread scaling numbers is how perf debt hides).
  static Json environment_signature() {
    Json env = Json::object();
    env["hardware_threads"] =
        static_cast<std::int64_t>(std::thread::hardware_concurrency());
#ifdef NDEBUG
    env["build_type"] = "release";
#else
    env["build_type"] = "debug";
#endif
    return env;
  }

  void write() const {
    Json j = Json::object();
    j["bench"] = bench_name_;
    j["environment"] = environment_signature();
    j["peak_rss_bytes"] = peak_rss_bytes();
    j["bytes_spilled"] = bytes_spilled();
    Json results = Json::array();
    for (const auto& row : rows_) {
      Json r = Json::object();
      r["name"] = row.name;
      r["ops_per_sec"] = row.ops_per_sec;
      r["p50_us"] = row.p50_us;
      r["p99_us"] = row.p99_us;
      if (row.extra.is_object() && !row.extra.as_object().empty()) {
        r["extra"] = row.extra;
      }
      results.push_back(std::move(r));
    }
    j["results"] = std::move(results);
    if (root_extra_.is_object()) {
      for (const auto& [key, value] : root_extra_.as_object()) {
        j[key] = value;
      }
    }
    std::ofstream out(path_);
    out << j.dump() << "\n";
    if (!out) {
      std::fprintf(stderr, "warning: could not write bench summary to %s\n",
                   path_.c_str());
    }
  }

 private:
  std::string bench_name_;
  std::string path_;
  std::vector<BenchResultRow> rows_;
  Json root_extra_ = Json::object();
};

/// Bench name from argv[0]: basename with any "bench_" prefix stripped.
inline std::string bench_name_from_argv0(const char* argv0) {
  std::string name = argv0 ? argv0 : "bench";
  if (const auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (name.rfind("bench_", 0) == 0) name = name.substr(6);
  return name;
}

/// Pulls `--<name> <n>` (or `--<name>=<n>`) out of argv before
/// benchmark::Initialize sees it; returns `def` when absent. Shared by the
/// ingestion benches for --threads / --partitions so sharding experiments
/// run without recompiling.
inline long consume_long_flag(int& argc, char** argv, const std::string& name,
                              long def) {
  const std::string flag = "--" + name;
  const std::string eq = flag + "=";
  long value = def;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i] && i + 1 < argc) {
      value = std::atol(argv[++i]);
    } else if (std::strncmp(argv[i], eq.c_str(), eq.size()) == 0) {
      value = std::atol(argv[i] + eq.size());
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return value;
}

/// Pulls `--json <path>` (or `--json=<path>`) out of argv before
/// benchmark::Initialize sees it; returns the output path (default
/// BENCH_<name>.json in the working directory).
inline std::string consume_json_flag(int& argc, char** argv) {
  std::string path = "BENCH_" + bench_name_from_argv0(argv[0]) + ".json";
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return path;
}

/// Console reporter that also translates every run into the JSON summary.
/// (A separate *file* reporter would force --benchmark_out; wrapping the
/// display reporter keeps the binaries flag-free.)
class JsonSummaryReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonSummaryReporter(BenchJsonWriter* writer) : writer_(writer) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const auto& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      BenchResultRow row;
      row.name = run.benchmark_name();
      const double per_iter_s =
          run.iterations > 0
              ? run.real_accumulated_time / static_cast<double>(run.iterations)
              : run.real_accumulated_time;
      row.ops_per_sec = per_iter_s > 0 ? 1.0 / per_iter_s : 0.0;
      row.p50_us = per_iter_s * 1e6;  // mean; google-benchmark has no
      row.p99_us = per_iter_s * 1e6;  // per-iteration samples
      for (const auto& [name, counter] : run.counters) {
        row.extra[name] = counter.value;
      }
      if (auto it = run.counters.find("items_per_second");
          it != run.counters.end()) {
        row.ops_per_sec = it->second.value;
      }
      writer_->add(std::move(row));
    }
  }

 private:
  BenchJsonWriter* writer_;
};

/// Shared main for google-benchmark binaries: console output as usual plus
/// the JSON summary file. `post` runs after the benchmarks but before the
/// summary is written — the hook for bench-specific root-level fields
/// (acceptance verdicts, overhead probes) computed from a finished run.
inline int bench_main(
    int argc, char** argv,
    const std::function<void(BenchJsonWriter&)>& post = {}) {
  const std::string name = bench_name_from_argv0(argv[0]);
  const std::string path = consume_json_flag(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  BenchJsonWriter writer(name, path);
  JsonSummaryReporter reporter(&writer);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (post) post(writer);
  writer.write();
  benchmark::Shutdown();
  return 0;
}

/// A storm-heavy Lustre scenario for the text benches.
inline titanlog::ScenarioConfig storm_scenario(double msgs_per_second,
                                               std::uint64_t seed = 2) {
  titanlog::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.window = TimeRange{kT0, kT0 + 3600};
  cfg.background_scale = 1.0;
  titanlog::LustreStormSpec storm;
  storm.start = kT0 + 1800;
  storm.duration_seconds = 300;
  storm.ost_index = 0x42;
  storm.messages_per_second = msgs_per_second;
  cfg.storms.push_back(storm);
  return cfg;
}

}  // namespace hpcla::bench
