// §II-A claim — why the paper rejected an RDBMS backend:
//   1. "due to its support for the ACID properties ... it does not scale":
//      rowstore's global transaction lock flattens multi-writer throughput
//      while cassalite scales with independent nodes;
//   2. "a schema ... once created, is very difficult to modify": ALTER
//      TABLE ADD COLUMN rewrites every row in rowstore, while cassalite's
//      flexible rows absorb new columns for free.
#include "bench_util.hpp"

#include <thread>

#include "rowstore/rowstore.hpp"

namespace hpcla::bench {
namespace {

using rowstore::ColumnDef;
using rowstore::RowStore;
using K = ColumnDef::Kind;

std::vector<ColumnDef> event_columns() {
  return {{"hour", K::kInt},   {"type", K::kText}, {"ts", K::kInt},
          {"seq", K::kInt},    {"node", K::kInt},  {"message", K::kText}};
}

/// Multi-writer ingest into the RDBMS baseline: the global lock serializes
/// everything, so adding writers does not add throughput.
void BM_Rdbms_ConcurrentIngest(benchmark::State& state) {
  const int writers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    rowstore::RowStoreOptions opts;
    opts.commit_delay_us = 2;  // synchronous-commit cost
    RowStore db(opts);
    HPCLA_CHECK(db.create_table("events", event_columns(), 4).is_ok());
    state.ResumeTiming();

    constexpr int kTotal = 2000;
    std::vector<std::thread> threads;
    for (int w = 0; w < writers; ++w) {
      threads.emplace_back([&db, w, writers] {
        for (int i = w; i < kTotal; i += writers) {
          HPCLA_CHECK(db.insert("events",
                                {cassalite::Value(413185),
                                 cassalite::Value("MCE"),
                                 cassalite::Value(kT0 + i),
                                 cassalite::Value(i), cassalite::Value(i % 100),
                                 cassalite::Value("machine check")})
                          .is_ok());
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_Rdbms_ConcurrentIngest)->Arg(1)->Arg(2)->Arg(4)
    ->ArgName("writers")->UseRealTime();

/// The same workload into cassalite with one coordinator per writer:
/// independent nodes absorb independent partitions.
void BM_Cassalite_ConcurrentIngest(benchmark::State& state) {
  const int writers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto opts = cluster_opts(static_cast<std::size_t>(writers), 1);
    cassalite::Cluster cluster(opts);
    HPCLA_CHECK(model::create_data_model(cluster).is_ok());
    state.ResumeTiming();

    constexpr int kTotal = 2000;
    std::vector<std::thread> threads;
    for (int w = 0; w < writers; ++w) {
      threads.emplace_back([&cluster, w, writers] {
        titanlog::EventRecord e;
        e.type = titanlog::EventType::kMachineCheck;
        e.message = "machine check";
        for (int i = w; i < kTotal; i += writers) {
          e.ts = kT0 + i;
          e.node = static_cast<topo::NodeId>(i % 100);
          e.seq = i;
          // Writers hit distinct hour partitions to expose parallelism.
          HPCLA_CHECK(cluster.insert(
              std::string(model::kEventByTime),
              model::event_time_key(413185 + w, e.type),
              model::event_time_row(e)).is_ok());
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_Cassalite_ConcurrentIngest)->Arg(1)->Arg(2)->Arg(4)
    ->ArgName("writers")->UseRealTime();

/// Schema evolution: adding a column to an N-row table.
void BM_Rdbms_AddColumn(benchmark::State& state) {
  const auto rows = static_cast<int>(state.range(0));
  int added = 0;
  for (auto _ : state) {
    state.PauseTiming();
    RowStore db;
    HPCLA_CHECK(db.create_table("events", event_columns(), 4).is_ok());
    for (int i = 0; i < rows; ++i) {
      HPCLA_CHECK(db.insert("events",
                            {cassalite::Value(413185), cassalite::Value("MCE"),
                             cassalite::Value(kT0 + i), cassalite::Value(i),
                             cassalite::Value(i % 100),
                             cassalite::Value("m")}).is_ok());
    }
    state.ResumeTiming();
    auto rewritten =
        db.add_column("events", {"gpu_serial_" + std::to_string(added++),
                                 K::kText},
                      cassalite::Value("unknown"));
    HPCLA_CHECK(rewritten.is_ok());
    benchmark::DoNotOptimize(rewritten);
  }
  state.counters["rows_rewritten"] = static_cast<double>(rows);
}
BENCHMARK(BM_Rdbms_AddColumn)->Arg(1000)->Arg(10000)->Arg(50000)
    ->ArgName("rows");

/// cassalite's answer to schema change: just write rows with the new cell.
void BM_Cassalite_NewColumn(benchmark::State& state) {
  cassalite::Cluster cluster(cluster_opts(4));
  HPCLA_CHECK(model::create_data_model(cluster).is_ok());
  std::int64_t i = 0;
  for (auto _ : state) {
    titanlog::EventRecord e;
    e.ts = kT0 + i;
    e.seq = i++;
    e.type = titanlog::EventType::kGpuMemoryError;
    e.node = 7;
    e.message = "dbe";
    auto row = model::event_time_row(e);
    // A column no earlier row has — accepted without DDL.
    row.set("gpu_serial", cassalite::Value("032401770xx"));
    benchmark::DoNotOptimize(cluster.insert(
        std::string(model::kEventByTime),
        model::event_time_key(hour_bucket(e.ts), e.type), std::move(row)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Cassalite_NewColumn);

}  // namespace
}  // namespace hpcla::bench

int main(int argc, char** argv) { return hpcla::bench::bench_main(argc, argv); }
