// Fig 7 (bottom) — text analytics over raw Lustre logs: the word-count job
// that localizes a faulty OST during a storm, its scaling with workers,
// and the TF-IDF storm-signature variant.
#include "bench_util.hpp"

#include "analytics/text.hpp"

namespace hpcla::bench {
namespace {

LoadedStack& stack() {
  static LoadedStack s(cluster_opts(4), engine_opts(4),
                       storm_scenario(/*msgs_per_second=*/150.0));
  return s;
}

analytics::Context lustre_ctx() {
  analytics::Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 3600};
  ctx.types = {titanlog::EventType::kLustreError};
  return ctx;
}

/// The Fig 7 job: distributed word count over the storm's raw messages.
void BM_Fig7_WordCountWorkers(benchmark::State& state) {
  auto& s = stack();
  sparklite::Engine engine(
      engine_opts(static_cast<std::size_t>(state.range(0))));
  const auto ctx = lustre_ctx();
  std::string top_term;
  for (auto _ : state) {
    auto terms = analytics::word_count(engine, s.cluster, ctx, 10);
    HPCLA_CHECK(!terms.empty());
    top_term = terms.front().term;
    benchmark::DoNotOptimize(terms);
  }
  state.counters["found_ost0042"] = top_term == "ost0042" ? 1.0 : 0.0;
}
BENCHMARK(BM_Fig7_WordCountWorkers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->ArgName("workers")->UseRealTime();

/// Tokenizer throughput on realistic Lustre payloads.
void BM_Fig7_Tokenize(benchmark::State& state) {
  auto& s = stack();
  // Gather a million-character corpus of real generated messages.
  std::vector<std::string> messages;
  for (const auto& e : s.logs.events) {
    if (e.type == titanlog::EventType::kLustreError) {
      messages.push_back(e.message);
      if (messages.size() >= 5000) break;
    }
  }
  std::size_t i = 0;
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto& m = messages[i++ % messages.size()];
    bytes += m.size();
    benchmark::DoNotOptimize(analytics::tokenize(m));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_Fig7_Tokenize);

/// TF-IDF storm signature over 1-minute buckets.
void BM_Fig7_StormSignature(benchmark::State& state) {
  auto& s = stack();
  const auto ctx = lustre_ctx();
  std::string top_term;
  for (auto _ : state) {
    auto terms = analytics::storm_signature(s.engine, s.cluster, ctx, 60, 10);
    HPCLA_CHECK(!terms.empty());
    top_term = terms.front().term;
    benchmark::DoNotOptimize(terms);
  }
  state.counters["found_ost0042"] = top_term == "ost0042" ? 1.0 : 0.0;
}
BENCHMARK(BM_Fig7_StormSignature);

/// Scaling with storm volume: the "tens of thousands of messages" claim.
void BM_Fig7_WordCountVolume(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0));
  LoadedStack local(cluster_opts(4), engine_opts(4),
                    storm_scenario(rate, /*seed=*/20 + state.range(0)));
  const auto ctx = lustre_ctx();
  std::size_t events = 0;
  for (const auto& e : local.logs.events) {
    events += e.type == titanlog::EventType::kLustreError ? 1 : 0;
  }
  for (auto _ : state) {
    auto terms = analytics::word_count(local.engine, local.cluster, ctx, 10);
    benchmark::DoNotOptimize(terms);
  }
  state.counters["lustre_events"] = static_cast<double>(events);
}
BENCHMARK(BM_Fig7_WordCountVolume)->Arg(30)->Arg(100)->Arg(300)
    ->ArgName("storm_msgs_per_s");

}  // namespace
}  // namespace hpcla::bench

int main(int argc, char** argv) { return hpcla::bench::bench_main(argc, argv); }
