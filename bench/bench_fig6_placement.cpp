// Fig 6 — event occurrences and application placement on the physical
// system map: the two snapshot queries behind the interactive view, plus
// the placement rendering and the event->application attribution.
#include "bench_util.hpp"

#include "analytics/distribution.hpp"
#include "analytics/queries.hpp"
#include "server/render.hpp"

namespace hpcla::bench {
namespace {

LoadedStack& stack() {
  static LoadedStack s = [] {
    auto cfg = mixed_scenario(1.0, 6);
    cfg.jobs->jobs_per_hour = 120;
    return LoadedStack(cluster_opts(4), engine_opts(4), cfg);
  }();
  return s;
}

/// "Applications running at time t" snapshot (Fig 6 bottom).
void BM_Fig6_AppsRunningAt(benchmark::State& state) {
  auto& s = stack();
  const UnixSeconds t = kT0 + 3600;
  std::size_t running = 0;
  for (auto _ : state) {
    auto jobs = analytics::apps_running_at(s.engine, s.cluster, t);
    running = jobs.size();
    benchmark::DoNotOptimize(jobs);
  }
  state.counters["running_jobs"] = static_cast<double>(running);
}
BENCHMARK(BM_Fig6_AppsRunningAt);

/// "Events at time t" snapshot (Fig 6 top): a one-minute slice.
void BM_Fig6_EventsAtInstant(benchmark::State& state) {
  auto& s = stack();
  analytics::Context ctx;
  ctx.window = TimeRange{kT0 + 3600, kT0 + 3660};
  for (auto _ : state) {
    auto events = analytics::fetch_events(s.engine, s.cluster, ctx);
    benchmark::DoNotOptimize(events);
  }
}
BENCHMARK(BM_Fig6_EventsAtInstant);

/// Full view refresh: snapshot + placement map rendering.
void BM_Fig6_RenderPlacementMap(benchmark::State& state) {
  auto& s = stack();
  const UnixSeconds t = kT0 + 3600;
  for (auto _ : state) {
    auto jobs = analytics::apps_running_at(s.engine, s.cluster, t);
    auto art = server::render_placement_map(jobs);
    benchmark::DoNotOptimize(art);
  }
}
BENCHMARK(BM_Fig6_RenderPlacementMap);

/// Event->application attribution (which app absorbed each event).
void BM_Fig6_EventAttribution(benchmark::State& state) {
  auto& s = stack();
  analytics::Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 2 * 3600};
  for (auto _ : state) {
    auto dist = analytics::distribution(s.engine, s.cluster, ctx,
                                        analytics::GroupBy::kApplication);
    benchmark::DoNotOptimize(dist);
  }
}
BENCHMARK(BM_Fig6_EventAttribution);

}  // namespace
}  // namespace hpcla::bench

int main(int argc, char** argv) { return hpcla::bench::bench_main(argc, argv); }
