// Fig 7 (top) — transfer entropy between two event types over a selected
// interval: the full pipeline (series extraction from the store + TE), the
// raw estimator's scaling with series length and quantization levels, and
// the lag-profile sweep.
#include "bench_util.hpp"

#include "analytics/timeseries.hpp"
#include "analytics/transfer_entropy.hpp"
#include "common/rng.hpp"

namespace hpcla::bench {
namespace {

using titanlog::EventType;

LoadedStack& stack() {
  static LoadedStack s = [] {
    titanlog::ScenarioConfig cfg;
    cfg.seed = 7;
    cfg.window = TimeRange{kT0, kT0 + 6 * 3600};
    cfg.background_scale = 0.3;
    titanlog::HotspotSpec net;
    net.type = EventType::kNetworkError;
    net.location = topo::Coord{3, 0, -1, -1, -1};
    net.window = cfg.window;
    net.rate_per_node_hour = 2.0;
    net.node_skew = 0.0;
    cfg.hotspots.push_back(net);
    titanlog::CausalPairSpec pair;
    pair.cause = EventType::kNetworkError;
    pair.effect = EventType::kLustreError;
    pair.lag_seconds = 30;
    pair.probability = 0.85;
    cfg.causal_pairs.push_back(pair);
    return LoadedStack(cluster_opts(4), engine_opts(4), cfg);
  }();
  return s;
}

/// Whole pipeline: fetch both series from the store, compute TE both ways.
void BM_Fig7_TePipeline(benchmark::State& state) {
  auto& s = stack();
  analytics::Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 6 * 3600};
  double net_margin = 0.0;
  for (auto _ : state) {
    auto x = analytics::event_series(s.engine, s.cluster, ctx,
                                     EventType::kNetworkError, 30);
    auto y = analytics::event_series(s.engine, s.cluster, ctx,
                                     EventType::kLustreError, 30);
    auto r = analytics::transfer_entropy_pair(x, y);
    net_margin = r.net();
    benchmark::DoNotOptimize(r);
  }
  state.counters["te_net_margin_bits"] = net_margin;
}
BENCHMARK(BM_Fig7_TePipeline);

/// Estimator cost vs series length (synthetic coupled series).
void BM_Fig7_TeEstimatorLength(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<double> x(n);
  std::vector<double> y(n, 0.0);
  for (std::size_t t = 0; t < n; ++t) x[t] = rng.chance(0.3) ? 1.0 : 0.0;
  for (std::size_t t = 0; t + 1 < n; ++t) y[t + 1] = x[t];
  for (auto _ : state) {
    benchmark::DoNotOptimize(analytics::transfer_entropy(x, y));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fig7_TeEstimatorLength)
    ->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18)
    ->ArgName("samples");

/// Ablation: quantization levels (2 = presence/absence .. 8).
void BM_Fig7_TeQuantization(benchmark::State& state) {
  const int levels = static_cast<int>(state.range(0));
  Rng rng(2);
  const std::size_t n = 1 << 14;
  std::vector<double> x(n);
  std::vector<double> y(n, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = static_cast<double>(rng.next_below(10));
  }
  for (std::size_t t = 0; t + 1 < n; ++t) y[t + 1] = x[t];
  double te = 0.0;
  for (auto _ : state) {
    te = analytics::transfer_entropy(x, y, levels);
    benchmark::DoNotOptimize(te);
  }
  state.counters["te_bits"] = te;
}
BENCHMARK(BM_Fig7_TeQuantization)->Arg(2)->Arg(3)->Arg(4)->Arg(8)
    ->ArgName("levels");

/// The lag-profile sweep the Fig 7 plot is made of.
void BM_Fig7_TeLagProfile(benchmark::State& state) {
  auto& s = stack();
  analytics::Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 6 * 3600};
  auto x = analytics::event_series(s.engine, s.cluster, ctx,
                                   EventType::kNetworkError, 15);
  auto y = analytics::event_series(s.engine, s.cluster, ctx,
                                   EventType::kLustreError, 15);
  std::size_t peak_shift = 0;
  for (auto _ : state) {
    auto profile = analytics::transfer_entropy_profile(x, y, 16);
    peak_shift = static_cast<std::size_t>(
        std::max_element(profile.begin(), profile.end()) - profile.begin());
    benchmark::DoNotOptimize(profile);
  }
  state.counters["peak_shift_bins"] = static_cast<double>(peak_shift);
}
BENCHMARK(BM_Fig7_TeLagProfile);

/// Cross-correlation comparison point (the cheaper linear analogue).
void BM_Fig7_CrossCorrelation(benchmark::State& state) {
  auto& s = stack();
  analytics::Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 6 * 3600};
  auto x = analytics::event_series(s.engine, s.cluster, ctx,
                                   EventType::kNetworkError, 15);
  auto y = analytics::event_series(s.engine, s.cluster, ctx,
                                   EventType::kLustreError, 15);
  for (auto _ : state) {
    auto corr = analytics::cross_correlation(x, y, 16);
    benchmark::DoNotOptimize(corr);
  }
}
BENCHMARK(BM_Fig7_CrossCorrelation);

}  // namespace
}  // namespace hpcla::bench

int main(int argc, char** argv) { return hpcla::bench::bench_main(argc, argv); }
