// Fig 1 — dual event schemas (event_by_time / event_by_location).
//
// The paper stores every event twice so that both "all events of one type
// in an hour" and "all events on one component in an hour" are single
// time-ordered partition reads. This bench measures:
//   * write amplification of the dual schema (rows/s into both tables),
//   * the hour-slice read each schema makes cheap,
//   * the mismatch cost: answering a location query from the by-time
//     schema (scan + filter) vs from the by-location schema directly.
#include "bench_util.hpp"

#include "analytics/queries.hpp"

namespace hpcla::bench {
namespace {

using titanlog::EventType;

LoadedStack& stack() {
  static LoadedStack s(cluster_opts(4), engine_opts(4), mixed_scenario(2.0));
  return s;
}

/// Write path: one event into both schema tables (what ingest does).
void BM_Fig1_DualSchemaWrite(benchmark::State& state) {
  cassalite::Cluster cluster(cluster_opts(4));
  HPCLA_CHECK(model::create_data_model(cluster).is_ok());
  titanlog::EventRecord e;
  e.type = EventType::kMachineCheck;
  e.message = "MCE: Machine Check Exception bank 4 status 0xdead misc 0x0";
  std::int64_t i = 0;
  for (auto _ : state) {
    e.ts = kT0 + i % 3600;
    e.node = static_cast<topo::NodeId>(i % topo::TitanGeometry::kTotalNodes);
    e.seq = i++;
    const auto hour = hour_bucket(e.ts);
    benchmark::DoNotOptimize(cluster.insert(
        std::string(model::kEventByTime), model::event_time_key(hour, e.type),
        model::event_time_row(e)));
    benchmark::DoNotOptimize(cluster.insert(
        std::string(model::kEventByLocation),
        model::event_location_key(hour, e.node), model::event_location_row(e)));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["tables_per_event"] = 2;
}
BENCHMARK(BM_Fig1_DualSchemaWrite);

/// Read path A: one hour of one type — single by-time partition.
void BM_Fig1_ReadHourByType(benchmark::State& state) {
  auto& s = stack();
  cassalite::ReadQuery q;
  q.table = std::string(model::kEventByTime);
  q.partition_key =
      model::event_time_key(hour_bucket(kT0), EventType::kMachineCheck);
  std::size_t rows = 0;
  for (auto _ : state) {
    auto r = s.cluster.select(q);
    HPCLA_CHECK(r.is_ok());
    rows = r->rows.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows_per_read"] = static_cast<double>(rows);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_Fig1_ReadHourByType);

/// Read path B: one hour of one node — single by-location partition.
void BM_Fig1_ReadHourByLocation(benchmark::State& state) {
  auto& s = stack();
  // Pick a node inside the hotspot cabinet so the partition is non-empty.
  const topo::NodeId node = s.logs.events.front().node;
  cassalite::ReadQuery q;
  q.table = std::string(model::kEventByLocation);
  q.partition_key = model::event_location_key(hour_bucket(kT0), node);
  for (auto _ : state) {
    auto r = s.cluster.select(q);
    HPCLA_CHECK(r.is_ok());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fig1_ReadHourByLocation);

/// Mismatch: answering "events on this blade" from each schema. The
/// planner picks by-location; forcing by-time scans all 9 type partitions
/// of the hour and filters.
void BM_Fig1_BladeQuery(benchmark::State& state) {
  auto& s = stack();
  const bool use_location_schema = state.range(0) == 1;
  analytics::Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 3600};
  ctx.location = topo::Coord{2, 4, 0, 3, -1};  // one blade
  const auto plan = use_location_schema ? analytics::ScanPlan::kByLocation
                                        : analytics::ScanPlan::kByTime;
  for (auto _ : state) {
    auto keys = analytics::event_partition_keys(ctx, plan);
    auto ds = sparklite::scan_table_keyed(
        s.engine, s.cluster,
        std::string(use_location_schema ? model::kEventByLocation
                                        : model::kEventByTime),
        std::move(keys));
    // Count rows matching the blade (by-time path must filter).
    analytics::Context filter = ctx;
    auto count =
        ds.filter([filter, use_location_schema](
                      const std::pair<std::string, cassalite::Row>& kv) {
            if (use_location_schema) return true;  // keys already exact
            auto e = model::decode_event_time_row(kv.first, kv.second);
            return e.is_ok() && filter.wants_node(e->node);
          }).count();
    benchmark::DoNotOptimize(count);
  }
  state.counters["partitions_scanned"] = static_cast<double>(
      analytics::event_partition_keys(ctx, plan).size());
}
BENCHMARK(BM_Fig1_BladeQuery)->Arg(0)->Arg(1)
    ->ArgName("by_location_schema");

}  // namespace
}  // namespace hpcla::bench

int main(int argc, char** argv) { return hpcla::bench::bench_main(argc, argv); }
