// Ablations over the design choices DESIGN.md calls out:
//   * consistency level (ONE / QUORUM / ALL) write cost,
//   * replication factor vs availability under node failures,
//   * memtable flush threshold (write-path amplification),
//   * shuffle partition count for reduce-by-key jobs,
//   * crash-recovery replay cost (commit log).
#include "bench_util.hpp"

#include "common/rng.hpp"
#include "sparklite/dataset.hpp"

namespace hpcla::bench {
namespace {

titanlog::EventRecord mk_event(std::int64_t i) {
  titanlog::EventRecord e;
  e.ts = kT0 + i % 3600;
  e.seq = i;
  e.type = titanlog::EventType::kMemoryEcc;
  e.node = static_cast<topo::NodeId>(i % 19200);
  e.message = "EDAC MC0: 1 CE error on DIMM1 (addr 0x0 syndrome 0x0)";
  return e;
}

/// Write latency at each consistency level (RF=3, 4 nodes).
void BM_Ablation_ConsistencyWrite(benchmark::State& state) {
  const auto consistency =
      static_cast<cassalite::Consistency>(state.range(0));
  cassalite::Cluster cluster(cluster_opts(4, 3));
  HPCLA_CHECK(model::create_data_model(cluster).is_ok());
  std::int64_t i = 0;
  for (auto _ : state) {
    auto e = mk_event(i++);
    benchmark::DoNotOptimize(cluster.insert(
        std::string(model::kEventByTime),
        model::event_time_key(hour_bucket(e.ts), e.type),
        model::event_time_row(e), consistency));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Ablation_ConsistencyWrite)
    ->Arg(static_cast<int>(hpcla::cassalite::Consistency::kOne))
    ->Arg(static_cast<int>(hpcla::cassalite::Consistency::kQuorum))
    ->Arg(static_cast<int>(hpcla::cassalite::Consistency::kAll))
    ->ArgName("one0_quorum1_all2");

/// Availability: fraction of writes accepted at QUORUM while killing
/// progressively more of an 8-node cluster, at RF 1 / 3 / 5.
void BM_Ablation_AvailabilityUnderFailures(benchmark::State& state) {
  const auto rf = static_cast<std::size_t>(state.range(0));
  double worst_accept = 1.0;
  for (auto _ : state) {
    cassalite::Cluster cluster(cluster_opts(8, rf));
    HPCLA_CHECK(model::create_data_model(cluster).is_ok());
    std::int64_t i = 0;
    for (std::size_t kills = 0; kills <= 4; ++kills) {
      if (kills > 0) cluster.kill_node(kills - 1);
      int ok = 0;
      constexpr int kTries = 200;
      for (int t = 0; t < kTries; ++t) {
        auto e = mk_event(i++);
        ok += cluster.insert(std::string(model::kEventByTime),
                             model::event_time_key(413185 + i % 50, e.type),
                             model::event_time_row(e),
                             cassalite::Consistency::kQuorum).is_ok();
      }
      worst_accept = std::min(
          worst_accept, static_cast<double>(ok) / kTries);
    }
    benchmark::DoNotOptimize(worst_accept);
  }
  state.counters["accept_rate_4_dead"] = worst_accept;
}
BENCHMARK(BM_Ablation_AvailabilityUnderFailures)->Arg(1)->Arg(3)->Arg(5)
    ->ArgName("rf");

/// Memtable flush threshold: small thresholds trade write cost for many
/// tiny SSTables (and compactions).
void BM_Ablation_MemtableFlush(benchmark::State& state) {
  const auto flush_bytes = static_cast<std::size_t>(state.range(0));
  std::uint64_t flushes = 0;
  std::uint64_t compactions = 0;
  for (auto _ : state) {
    cassalite::StorageOptions sopts;
    sopts.memtable_flush_bytes = flush_bytes;
    cassalite::StorageEngine engine(sopts);
    for (std::int64_t i = 0; i < 5000; ++i) {
      auto e = mk_event(i);
      engine.apply(cassalite::WriteCommand{
          std::string(model::kEventByTime),
          model::event_time_key(hour_bucket(e.ts), e.type),
          model::event_time_row(e)});
    }
    flushes = engine.metrics().memtable_flushes;
    compactions = engine.metrics().compactions;
    benchmark::DoNotOptimize(engine);
  }
  state.SetItemsProcessed(state.iterations() * 5000);
  state.counters["flushes"] = static_cast<double>(flushes);
  state.counters["compactions"] = static_cast<double>(compactions);
}
BENCHMARK(BM_Ablation_MemtableFlush)
    ->Arg(16 << 10)->Arg(256 << 10)->Arg(8 << 20)
    ->ArgName("flush_bytes");

/// Shuffle partition count for a word-count-shaped reduce_by_key.
void BM_Ablation_ShufflePartitions(benchmark::State& state) {
  const auto parts = static_cast<std::size_t>(state.range(0));
  sparklite::Engine engine(engine_opts(4));
  Rng rng(3);
  std::vector<std::pair<std::string, std::int64_t>> data;
  data.reserve(100000);
  for (int i = 0; i < 100000; ++i) {
    data.emplace_back("term" + std::to_string(rng.zipf(5000, 1.1)), 1);
  }
  auto ds = sparklite::Dataset<std::pair<std::string, std::int64_t>>::
      parallelize(engine, data, 8);
  for (auto _ : state) {
    auto reduced = sparklite::reduce_by_key(
        ds, [](std::int64_t a, std::int64_t b) { return a + b; }, parts);
    benchmark::DoNotOptimize(reduced.count());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_Ablation_ShufflePartitions)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->ArgName("shuffle_partitions");

/// Crash recovery: replaying the commit log after losing the memtable.
void BM_Ablation_CrashRecovery(benchmark::State& state) {
  const auto rows = static_cast<std::int64_t>(state.range(0));
  std::size_t replayed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    cassalite::StorageEngine engine;  // default flush policy
    for (std::int64_t i = 0; i < rows; ++i) {
      auto e = mk_event(i);
      // Spread across hour partitions like real ingest does.
      e.ts = kT0 + (i % 24) * 3600 + i % 3600;
      engine.apply(cassalite::WriteCommand{
          std::string(model::kEventByTime),
          model::event_time_key(hour_bucket(e.ts), e.type),
          model::event_time_row(e)});
    }
    state.ResumeTiming();
    replayed = engine.crash_and_recover();
    HPCLA_CHECK(replayed <= static_cast<std::size_t>(rows));
    benchmark::DoNotOptimize(replayed);
  }
  state.SetItemsProcessed(state.iterations() * rows);
  state.counters["replayed"] = static_cast<double>(replayed);
}
BENCHMARK(BM_Ablation_CrashRecovery)->Arg(1000)->Arg(10000)->Arg(20000)
    ->ArgName("rows");

}  // namespace
}  // namespace hpcla::bench

int main(int argc, char** argv) { return hpcla::bench::bench_main(argc, argv); }
