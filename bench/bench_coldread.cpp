// Cold-read bench for the out-of-core cassalite tier (DESIGN.md §14): how
// much RAM does a narrow sliced read of a file-backed table cost compared
// to decoding the whole partition, and how much does the block cache give
// back on a warm re-read?
//
// Each phase runs in a forked child so wait4()'s ru_maxrss is that phase's
// own peak residency, not the max over everything the process did before:
//
//   build  writes the dataset into an extent-file directory and exits;
//   cold   reopens from disk and reads one ~1k-row slice (group pruning
//          must fetch+decode only the intersecting blocks), then re-reads
//          it to measure the warm block-cache hit rate;
//   full   reopens from disk and decodes the entire partition, filtering
//          the same slice out of the full decode.
//
// Acceptance (reported under "coldread" in the JSON summary and rendered
// by check_trend.py): cold peak RSS <= 1/4 of the full-decode peak, the
// sliced rows byte-identical (rows_digest) between the two paths, and the
// warm re-read >= 90% block-cache hits.
#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cassalite/storage_engine.hpp"
#include "common/block_cache.hpp"
#include "common/clock.hpp"
#include "common/scratch.hpp"

namespace hpcla::bench {
namespace {

constexpr const char* kTable = "events";
constexpr const char* kPartition = "pk-0";

std::int64_t g_rows = 350000;  // --rows overrides (CI smoke uses fewer)

std::int64_t slice_lo() { return g_rows / 2; }
std::int64_t slice_hi() { return g_rows / 2 + 1024; }

cassalite::StorageOptions bench_options(const std::string& dir) {
  cassalite::StorageOptions opts;
  opts.extent_files = true;
  opts.data_dir = dir;
  // One big flush, no compaction: the bench measures the read path.
  opts.memtable_flush_bytes = 1u << 30;
  opts.compaction_threshold = 1u << 20;
  opts.extent_rows_per_group = 1024;
  return opts;
}

cassalite::Row bench_row(std::int64_t i) {
  cassalite::Row r;
  r.key = cassalite::ClusteringKey::of({cassalite::Value(i)});
  r.write_ts = 1000 + i;
  r.set("node", cassalite::Value(i % 19200));
  r.set("msg", cassalite::Value(
                   "machine check L2 cache parity error on processor socket "
                   "module, corrected by hardware scrubber pass #" +
                   std::to_string(i % 997)));
  return r;
}

void build_phase(const std::string& dir) {
  cassalite::StorageEngine eng(bench_options(dir));
  for (std::int64_t i = 0; i < g_rows; ++i) {
    eng.apply(cassalite::WriteCommand{kTable, kPartition, bench_row(i)});
  }
  eng.flush_all();
  HPCLA_CHECK(eng.metrics().extent_files_written > 0);
}

cassalite::ReadQuery slice_query() {
  cassalite::ReadQuery q;
  q.table = kTable;
  q.partition_key = kPartition;
  q.slice.lower = cassalite::ClusteringKey::of({cassalite::Value(slice_lo())});
  q.slice.upper = cassalite::ClusteringKey::of({cassalite::Value(slice_hi())});
  return q;
}

/// Cold + warm sliced reads; result fields: digest, sliced row count,
/// cold/warm latency, warm hit rate.
Json cold_phase(const std::string& dir) {
  cassalite::StorageOptions opts = bench_options(dir);
  opts.block_cache_bytes = 64u << 20;
  cassalite::StorageEngine eng(opts);
  (void)eng.reopen_from_disk();

  const auto q = slice_query();
  Stopwatch cold_watch;
  const auto first = eng.read(q);
  const double cold_s = cold_watch.elapsed_seconds();
  HPCLA_CHECK(!first.rows.empty());

  // Warm passes: every block the slice touches is now cache-resident.
  const auto stats_before = BlockCache::instance().stats();
  constexpr int kWarmReps = 20;
  Stopwatch warm_watch;
  for (int rep = 0; rep < kWarmReps; ++rep) {
    const auto again = eng.read(q);
    HPCLA_CHECK(again.rows.size() == first.rows.size());
  }
  const double warm_s = warm_watch.elapsed_seconds();
  const auto stats_after = BlockCache::instance().stats();
  const double hits =
      static_cast<double>(stats_after.hits - stats_before.hits);
  const double misses =
      static_cast<double>(stats_after.misses - stats_before.misses);

  Json out = Json::object();
  out["digest"] = static_cast<std::int64_t>(cassalite::rows_digest(first.rows));
  out["rows"] = static_cast<std::int64_t>(first.rows.size());
  out["cold_seconds"] = cold_s;
  out["warm_ops_per_sec"] = warm_s > 0 ? kWarmReps / warm_s : 0.0;
  out["warm_hit_rate"] = (hits + misses) > 0 ? hits / (hits + misses) : 0.0;
  return out;
}

/// Full-partition decode; digests the same logical slice out of it.
Json full_phase(const std::string& dir) {
  cassalite::StorageEngine eng(bench_options(dir));
  (void)eng.reopen_from_disk();

  cassalite::ReadQuery q;
  q.table = kTable;
  q.partition_key = kPartition;
  Stopwatch watch;
  const auto all = eng.read(q);
  const double full_s = watch.elapsed_seconds();
  HPCLA_CHECK(static_cast<std::int64_t>(all.rows.size()) == g_rows);

  std::vector<cassalite::Row> sliced;
  for (const auto& r : all.rows) {
    const std::int64_t k = r.key.parts[0].as_int();
    if (k >= slice_lo() && k < slice_hi()) sliced.push_back(r);
  }
  Json out = Json::object();
  out["digest"] =
      static_cast<std::int64_t>(cassalite::rows_digest(sliced));
  out["rows"] = static_cast<std::int64_t>(sliced.size());
  out["full_seconds"] = full_s;
  return out;
}

/// Runs `phase` in a forked child (its own peak RSS), reading the child's
/// JSON result back through a scratch file. Returns the child's result
/// with "peak_rss_bytes" added.
Json run_forked(const std::function<Json(void)>& phase,
                const std::string& result_path) {
  const pid_t pid = fork();
  HPCLA_CHECK_MSG(pid >= 0, "fork failed");
  if (pid == 0) {
    Json result = phase();
    std::ofstream out(result_path);
    out << result.dump() << "\n";
    out.close();
    _exit(out ? 0 : 1);
  }
  int status = 0;
  struct rusage ru {};
  HPCLA_CHECK_MSG(wait4(pid, &status, 0, &ru) == pid, "wait4 failed");
  HPCLA_CHECK_MSG(WIFEXITED(status) && WEXITSTATUS(status) == 0,
                  "bench phase child failed");
  std::ifstream in(result_path);
  std::stringstream buf;
  buf << in.rdbuf();
  auto parsed = Json::parse(buf.str());
  HPCLA_CHECK_MSG(parsed.is_ok(), "bench phase child wrote invalid JSON");
  Json result = std::move(parsed.value());
  result["peak_rss_bytes"] =
      static_cast<std::int64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
  return result;
}

int run(int argc, char** argv) {
  const std::string path = consume_json_flag(argc, argv);
  g_rows = consume_long_flag(argc, argv, "rows", g_rows);
  BenchJsonWriter writer("coldread", path);

  const std::string dir = scratch::make_subdir("hpcla-coldread-bench");
  const std::string result_path = dir + "/phase-result.json";

  (void)run_forked([&] { build_phase(dir); return Json::object(); },
                   result_path);
  const Json cold = run_forked([&] { return cold_phase(dir); }, result_path);
  const Json full = run_forked([&] { return full_phase(dir); }, result_path);
  scratch::remove_all(dir);

  const double cold_rss = cold["peak_rss_bytes"].as_double();
  const double full_rss = full["peak_rss_bytes"].as_double();
  const double ratio = full_rss > 0 ? cold_rss / full_rss : 0.0;
  const bool identical = cold["digest"].as_int() == full["digest"].as_int() &&
                         cold["rows"].as_int() == full["rows"].as_int();
  const double hit_rate = cold["warm_hit_rate"].as_double();
  const double cold_s = cold["cold_seconds"].as_double();
  const double full_s = full["full_seconds"].as_double();

  BenchResultRow cold_row;
  cold_row.name = "coldread/cold_sliced_read";
  cold_row.ops_per_sec = cold_s > 0 ? 1.0 / cold_s : 0.0;
  cold_row.p50_us = cold_s * 1e6;
  cold_row.p99_us = cold_s * 1e6;
  writer.add(cold_row);

  BenchResultRow warm_row;
  warm_row.name = "coldread/warm_cached_read";
  warm_row.ops_per_sec = cold["warm_ops_per_sec"].as_double();
  writer.add(warm_row);

  BenchResultRow full_row;
  full_row.name = "coldread/full_decode";
  full_row.ops_per_sec = full_s > 0 ? 1.0 / full_s : 0.0;
  full_row.p50_us = full_s * 1e6;
  full_row.p99_us = full_s * 1e6;
  writer.add(full_row);

  Json probe = Json::object();
  probe["rows"] = g_rows;
  probe["cold_peak_rss_bytes"] = cold_rss;
  probe["full_peak_rss_bytes"] = full_rss;
  probe["rss_ratio"] = ratio;
  probe["warm_hit_rate"] = hit_rate;
  probe["identical"] = identical;
  writer.root_extra()["coldread"] = std::move(probe);
  writer.write();

  std::printf(
      "cold sliced read: %.1f ms, peak RSS %.1f MiB\n"
      "full decode:      %.1f ms, peak RSS %.1f MiB  (cold/full RSS ratio "
      "%.2f)\n"
      "warm re-read:     %.0f reads/s, block-cache hit rate %.1f%%\n"
      "sliced rows byte-identical across paths: %s\n",
      cold_s * 1e3, cold_rss / (1 << 20), full_s * 1e3, full_rss / (1 << 20),
      ratio, cold["warm_ops_per_sec"].as_double(), hit_rate * 100,
      identical ? "yes" : "NO");
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace hpcla::bench

int main(int argc, char** argv) { return hpcla::bench::run(argc, argv); }
