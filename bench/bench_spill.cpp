// Spill-tier bench (DESIGN.md §13): the same titanlog-shaped workloads run
// twice — once fully in RAM (spill disabled) and once with a deliberately
// tiny spill budget so every shuffle bucket streams through compressed
// on-disk runs — to price the external path and assert it stays usable.
//
// Workloads:
//   * sort/{inmem,spill} — total sort_by (ts, node, seq) over generated
//     events: external merge sort vs in-RAM stable sort, byte-identical
//     outputs asserted.
//   * reduce/{inmem,spill} — per-node occurrence counts via reduce_by_key.
//   * extent_compression — the same events written into a cassalite
//     StorageEngine with columnar extents on; reports raw vs encoded bytes.
//
// Acceptance probes in the JSON root (check_trend.py prints verdicts):
//   * spill_overhead: spilled sort_by runtime / in-memory runtime <= 3x.
//   * extent_compression: raw/encoded >= 2x on titanlog data.
//
// Flags: --scale N multiplies the event volume (default 4 — roughly 10k
// events, enough that per-run fixed costs stop dominating the overhead
// ratio; use --scale 16 or more for a full-scale run), --json <path>.
// Writes BENCH_spill.json for the trend checker.
#include <algorithm>
#include <cstdio>
#include <thread>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.hpp"
#include "cassalite/storage_engine.hpp"
#include "common/clock.hpp"
#include "common/quantile_sketch.hpp"
#include "sparklite/dataset.hpp"
#include "sparklite/spill.hpp"
#include "titanlog/generator.hpp"

namespace hpcla::sparklite::spill {

/// Row codec for spilling parsed events (field-wise varints; the message
/// dominates and stays a length-prefixed string).
template <>
struct Codec<titanlog::EventRecord> {
  static constexpr bool enabled = true;

  static void encode(const titanlog::EventRecord& e, std::string& out) {
    Codec<std::int64_t>::encode(e.ts, out);
    Codec<std::int32_t>::encode(static_cast<std::int32_t>(e.type), out);
    Codec<std::int32_t>::encode(e.node, out);
    Codec<std::string>::encode(e.message, out);
    Codec<std::int64_t>::encode(e.count, out);
    Codec<std::int64_t>::encode(e.seq, out);
  }

  static const char* decode(const char* p, const char* end,
                            titanlog::EventRecord& e) {
    p = Codec<std::int64_t>::decode(p, end, e.ts);
    std::int32_t type = 0;
    if (p) p = Codec<std::int32_t>::decode(p, end, type);
    e.type = static_cast<titanlog::EventType>(type);
    if (p) p = Codec<std::int32_t>::decode(p, end, e.node);
    if (p) p = Codec<std::string>::decode(p, end, e.message);
    if (p) p = Codec<std::int64_t>::decode(p, end, e.count);
    if (p) p = Codec<std::int64_t>::decode(p, end, e.seq);
    return p;
  }

  static std::size_t approx_bytes(const titanlog::EventRecord& e) {
    return sizeof(titanlog::EventRecord) + e.message.size();
  }
};

}  // namespace hpcla::sparklite::spill

namespace hpcla::bench {
namespace {

constexpr int kIters = 9;  // min/p50 over 9 timed iterations (one warmup before)
constexpr std::size_t kPartitions = 4;
constexpr std::size_t kSpillBudget = 512 * 1024;  // forces runs on CI data
// The reduce shuffle carries (node, count) pairs — far smaller than whole
// events — so its budget is tighter to make the external path actually run.
constexpr std::size_t kReduceSpillBudget = 16 * 1024;

std::vector<titanlog::EventRecord> make_events(long scale) {
  auto logs =
      titanlog::Generator(mixed_scenario(1.5 * static_cast<double>(scale), 7))
          .generate();
  return std::move(logs.events);
}

sparklite::EngineOptions spill_engine_opts(std::size_t budget) {
  // Don't oversubscribe: on a 1-core box two workers just context-switch,
  // which drowns the overhead probe in scheduler noise.
  const std::size_t workers =
      std::max<std::size_t>(1, std::min<std::size_t>(
                                   2, std::thread::hardware_concurrency()));
  auto o = engine_opts(workers);
  // Explicit budget: 0 pins the run in RAM even if HPCLA_SPILL_BUDGET_BYTES
  // is set in the environment; nonzero forces the external path.
  o.shuffle_spill_bytes = budget;
  return o;
}

struct RunStats {
  double micros_p50 = 0.0;
  double micros_min = 0.0;  ///< noise-robust estimator for the overhead probe
  double records_per_sec = 0.0;
  std::uint64_t bytes_spilled = 0;
  std::uint64_t spill_files = 0;
  std::uint64_t merge_passes = 0;
  std::vector<titanlog::EventRecord> result;  ///< last iteration's output
};

RunStats run_sort(const std::vector<titanlog::EventRecord>& events,
                  std::size_t budget) {
  sparklite::Engine engine(spill_engine_opts(budget));
  QuantileSketch lat(0.005);
  RunStats r;
  const auto sort_once = [&] {
    auto ds = sparklite::Dataset<titanlog::EventRecord>::parallelize(
        engine, events, kPartitions);
    return sparklite::sort_by(ds, [](const titanlog::EventRecord& e) {
             return std::tuple(e.ts, e.node, e.seq);
           }).collect();
  };
  (void)sort_once();  // warmup: page in code and prime the allocator
  Stopwatch total;
  for (int i = 0; i < kIters; ++i) {
    Stopwatch one;
    r.result = sort_once();
    lat.add(static_cast<double>(one.elapsed_micros()));
  }
  r.micros_p50 = lat.quantile(0.5);
  r.micros_min = lat.quantile(0.0);
  r.records_per_sec =
      static_cast<double>(events.size()) * kIters / total.elapsed_seconds();
  const auto m = engine.metrics();
  r.bytes_spilled = m.bytes_spilled;
  r.spill_files = m.spill_files;
  r.merge_passes = m.merge_passes;
  return r;
}

RunStats run_reduce(const std::vector<titanlog::EventRecord>& events,
                    std::size_t budget) {
  sparklite::Engine engine(spill_engine_opts(budget));
  QuantileSketch lat(0.005);
  RunStats r;
  std::size_t keys = 0;
  const auto reduce_once = [&] {
    auto ds = sparklite::Dataset<titanlog::EventRecord>::parallelize(
        engine, events, kPartitions);
    auto counted = ds.map([](const titanlog::EventRecord& e) {
      return std::make_pair(static_cast<std::int64_t>(e.node), e.count);
    });
    return sparklite::reduce_by_key(
               counted, [](std::int64_t a, std::int64_t b) { return a + b; })
        .collect();
  };
  (void)reduce_once();  // warmup
  Stopwatch total;
  for (int i = 0; i < kIters; ++i) {
    Stopwatch one;
    keys = reduce_once().size();
    lat.add(static_cast<double>(one.elapsed_micros()));
  }
  HPCLA_CHECK(keys > 0);
  r.micros_p50 = lat.quantile(0.5);
  r.micros_min = lat.quantile(0.0);
  r.records_per_sec =
      static_cast<double>(events.size()) * kIters / total.elapsed_seconds();
  const auto m = engine.metrics();
  r.bytes_spilled = m.bytes_spilled;
  r.spill_files = m.spill_files;
  r.merge_passes = m.merge_passes;
  return r;
}

void add_row(BenchJsonWriter& out, const std::string& name, const RunStats& r) {
  BenchResultRow row;
  row.name = name;
  row.ops_per_sec = r.records_per_sec;
  row.p50_us = r.micros_p50;
  row.p99_us = r.micros_p50;
  row.extra["bytes_spilled"] = static_cast<double>(r.bytes_spilled);
  row.extra["spill_files"] = static_cast<double>(r.spill_files);
  row.extra["merge_passes"] = static_cast<double>(r.merge_passes);
  out.add(row);
  std::printf("%s: %.0f records/s (p50 %.0f us, spilled %.1f MiB in %llu "
              "runs, %llu merge passes)\n",
              name.c_str(), r.records_per_sec, r.micros_p50,
              static_cast<double>(r.bytes_spilled) / (1 << 20),
              static_cast<unsigned long long>(r.spill_files),
              static_cast<unsigned long long>(r.merge_passes));
}

void bench_extent_compression(const std::vector<titanlog::EventRecord>& events,
                              BenchJsonWriter& out) {
  cassalite::StorageOptions opts;
  opts.columnar_extents = true;
  opts.memtable_flush_bytes = 1u << 20;
  cassalite::StorageEngine store(opts);
  for (const auto& e : events) {
    cassalite::WriteCommand cmd;
    cmd.table = "events";
    cmd.partition_key =
        std::to_string(e.ts / 3600) + "|" +
        std::string(titanlog::event_id(e.type));
    cmd.row.key.parts = {cassalite::Value(e.ts), cassalite::Value(e.seq)};
    cmd.row.write_ts = e.ts * 1000000;
    cmd.row.set("node", cassalite::Value(static_cast<std::int64_t>(e.node)));
    cmd.row.set("count", cassalite::Value(e.count));
    if (!e.message.empty()) {
      cmd.row.set("message", cassalite::Value(e.message));
    }
    store.apply(cmd);
  }
  store.flush_all();
  const auto m = store.metrics();
  const double ratio =
      m.extent_encoded_bytes > 0
          ? static_cast<double>(m.extent_raw_bytes) /
                static_cast<double>(m.extent_encoded_bytes)
          : 0.0;
  Json probe = Json::object();
  probe["raw_bytes"] = static_cast<double>(m.extent_raw_bytes);
  probe["encoded_bytes"] = static_cast<double>(m.extent_encoded_bytes);
  probe["ratio"] = ratio;
  out.root_extra()["extent_compression"] = std::move(probe);
  std::printf("extent compression: %.1f MiB raw -> %.1f MiB encoded (%.2fx)\n",
              static_cast<double>(m.extent_raw_bytes) / (1 << 20),
              static_cast<double>(m.extent_encoded_bytes) / (1 << 20), ratio);
}

int run(int argc, char** argv) {
  const std::string path = consume_json_flag(argc, argv);
  const long scale = consume_long_flag(argc, argv, "scale", 4);
  BenchJsonWriter writer("spill", path);
  writer.root_extra()["scale"] = static_cast<double>(scale);

  const auto events = make_events(scale);
  std::printf("events: %zu (scale %ld)\n", events.size(), scale);

  auto sort_mem = run_sort(events, 0);
  auto sort_ext = run_sort(events, kSpillBudget);
  HPCLA_CHECK(sort_mem.bytes_spilled == 0);
  HPCLA_CHECK_MSG(sort_ext.bytes_spilled > 0,
                  "spill budget too large for the dataset — nothing spilled");
  HPCLA_CHECK_MSG(sort_mem.result == sort_ext.result,
                  "spilled sort_by output differs from in-memory");
  add_row(writer, "sort/inmem", sort_mem);
  add_row(writer, "sort/spill", sort_ext);

  auto reduce_mem = run_reduce(events, 0);
  auto reduce_ext = run_reduce(events, kReduceSpillBudget);
  HPCLA_CHECK_MSG(reduce_ext.bytes_spilled > 0,
                  "reduce spill budget too large for the dataset");
  add_row(writer, "reduce/inmem", reduce_mem);
  add_row(writer, "reduce/spill", reduce_ext);

  // Acceptance: the external sort must stay within 3x of the in-RAM sort.
  // Min-of-N, not p50: on a loaded 1-core box scheduler hiccups inflate
  // any single iteration, and min is the standard robust estimator for
  // CPU-bound microbenches.
  const double ratio = sort_mem.micros_min > 0
                           ? sort_ext.micros_min / sort_mem.micros_min
                           : 0.0;
  Json probe = Json::object();
  probe["workload"] = "sort_by";
  probe["in_memory_min_us"] = sort_mem.micros_min;
  probe["spilled_min_us"] = sort_ext.micros_min;
  probe["ratio"] = ratio;
  writer.root_extra()["spill_overhead"] = std::move(probe);
  std::printf("spill overhead: sort %.2fx vs in-memory (budget %zu bytes)\n",
              ratio, kSpillBudget);

  bench_extent_compression(events, writer);

  writer.write();
  return 0;
}

}  // namespace
}  // namespace hpcla::bench

int main(int argc, char** argv) { return hpcla::bench::run(argc, argv); }
