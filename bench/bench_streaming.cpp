// Streaming-ingestion bench (§III-D hot path): N producer threads hammer
// one buslite topic while the consumer side drains it through the
// micro-batch pipeline into cassalite.
//
// Two measurements:
//   * produce_throughput/threads:N — aggregate produce ops/s at 1/2/4/8
//     concurrent producers. Under the old single-mutex Broker this curve
//     was flat-to-negative (every producer serialized on one lock); the
//     sharded broker should scale with cores until the hardware runs out.
//   * e2e — generator events published by --threads producers, drained by
//     --members consumer-group StreamingIngestors into a 4-node cluster:
//     end-to-end ingest ops/s plus the coalesce ratio and broker counters.
//
// Flags: --threads N (e2e producers, default 4), --partitions P (topic
// partitions, default 8), --members M (consumer-group size, default 2),
// --json <path>. Writes BENCH_streaming.json for the trend checker.
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/quantile_sketch.hpp"

namespace hpcla::bench {
namespace {

constexpr double kMeasureSeconds = 0.4;

struct ProduceResult {
  double ops_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  /// Lock acquisitions that found the partition mutex held.
  double contention = 0.0;
};

/// `threads` producers append to one topic for kMeasureSeconds. Keys are
/// spread so concurrent producers mostly hit different partitions — the
/// case the sharded broker is built for.
ProduceResult run_producers(int partitions, std::size_t threads) {
  buslite::Broker broker;
  HPCLA_CHECK(
      broker.create_topic("ev", {.partitions = partitions}).is_ok());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total{0};
  std::vector<QuantileSketch> latencies(threads, QuantileSketch(0.005));
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      // 64 distinct keys per thread, disjoint across threads.
      std::vector<std::string> keys;
      keys.reserve(64);
      for (int k = 0; k < 64; ++k) {
        keys.push_back("c" + std::to_string(t) + "-" + std::to_string(k));
      }
      const std::string payload(96, 'x');  // ~ a JSON event occurrence
      std::uint64_t ops = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto& key = keys[ops % keys.size()];
        if (ops % 64 == 0) {
          Stopwatch lat;
          HPCLA_CHECK(broker
                          .produce("ev", key, payload,
                                   static_cast<UnixMillis>(ops))
                          .is_ok());
          latencies[t].add(static_cast<double>(lat.elapsed_micros()));
        } else {
          HPCLA_CHECK(broker
                          .produce("ev", key, payload,
                                   static_cast<UnixMillis>(ops))
                          .is_ok());
        }
        ++ops;
      }
      total.fetch_add(ops, std::memory_order_relaxed);
    });
  }
  Stopwatch watch;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(kMeasureSeconds * 1e3)));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double elapsed = watch.elapsed_seconds();

  ProduceResult r;
  r.ops_per_sec = static_cast<double>(total.load()) / elapsed;
  // Sketches merge, so these are true cross-thread percentiles (within
  // the sketch's rank-error bound), not per-thread approximations.
  QuantileSketch all(0.005);
  for (const auto& lat : latencies) all.merge(lat);
  const double p50 = all.count() ? all.quantile(0.5) : 0.0;
  const double p99 = all.count() ? all.quantile(0.99) : 0.0;
  r.p50_us = p50;
  r.p99_us = p99;
  r.contention = static_cast<double>(broker.metrics().produce_contention);
  return r;
}

/// Generator -> broker (parallel publish) -> micro-batch -> cassalite.
void bench_end_to_end(int partitions, std::size_t threads,
                      std::size_t members, BenchJsonWriter& out) {
  // A concentrated Lustre storm: a few chatty nodes spamming the same
  // seconds, the coalescing design point of §III-D.
  titanlog::ScenarioConfig cfg;
  cfg.seed = 11;
  cfg.window = TimeRange{kT0, kT0 + 3600};
  cfg.background_scale = 0.4;
  titanlog::LustreStormSpec storm;
  storm.start = kT0 + 1800;
  storm.duration_seconds = 180;
  storm.messages_per_second = 300.0;
  storm.affected_node_fraction = 0.001;
  cfg.storms.push_back(storm);
  auto logs = titanlog::Generator(cfg).generate();
  const auto n_events = logs.events.size();

  cassalite::Cluster cluster(cluster_opts(4));
  sparklite::Engine engine(engine_opts(4));
  buslite::Broker broker;
  HPCLA_CHECK(model::create_data_model(cluster).is_ok());
  HPCLA_CHECK(
      broker.create_topic("ev", {.partitions = partitions}).is_ok());

  // Publish with `threads` concurrent producers (disjoint event slices;
  // per-key order within a slice is preserved, which is all the pipeline
  // needs — coalescing keys on (type, node, second)).
  Stopwatch publish_watch;
  {
    std::vector<std::thread> pubs;
    for (std::size_t t = 0; t < threads; ++t) {
      pubs.emplace_back([&, t] {
        model::EventPublisher pub(broker, "ev");
        for (std::size_t i = t; i < n_events; i += threads) {
          HPCLA_CHECK(pub.publish(logs.events[i]).is_ok());
        }
      });
    }
    for (auto& p : pubs) p.join();
  }
  const double publish_s = publish_watch.elapsed_seconds();

  // Drain with `members` group members, one thread each.
  std::vector<std::unique_ptr<model::StreamingIngestor>> ingestors;
  for (std::size_t m = 0; m < members; ++m) {
    ingestors.push_back(std::make_unique<model::StreamingIngestor>(
        cluster, engine, broker, "ev", m, members));
  }
  Stopwatch drain_watch;
  {
    std::vector<std::thread> drains;
    for (auto& ing : ingestors) {
      drains.emplace_back([&ing] { (void)ing->process_available(); });
    }
    for (auto& d : drains) d.join();
  }
  const double drain_s = drain_watch.elapsed_seconds();

  model::StreamingReport totals;
  for (const auto& ing : ingestors) {
    const auto& t = ing->totals();
    totals.batches += t.batches;
    totals.messages_in += t.messages_in;
    totals.decode_failures += t.decode_failures;
    totals.events_written += t.events_written;
    totals.write_failures += t.write_failures;
    totals.synopsis_rows += t.synopsis_rows;
  }
  HPCLA_CHECK(totals.messages_in == n_events);
  HPCLA_CHECK(totals.write_failures == 0);

  const double e2e_s = publish_s + drain_s;
  const double n = static_cast<double>(n_events);

  BenchResultRow pub_row;
  pub_row.name = "e2e_publish/threads:" + std::to_string(threads);
  pub_row.ops_per_sec = n / publish_s;
  pub_row.p50_us = publish_s / n * 1e6;
  pub_row.p99_us = pub_row.p50_us;
  pub_row.extra["events"] = n;
  out.add(pub_row);

  BenchResultRow drain_row;
  drain_row.name = "e2e_ingest/members:" + std::to_string(members);
  drain_row.ops_per_sec = n / drain_s;
  drain_row.p50_us = drain_s / n * 1e6;
  drain_row.p99_us = drain_row.p50_us;
  drain_row.extra["batches"] = static_cast<double>(totals.batches);
  drain_row.extra["coalesce_ratio"] =
      totals.events_written
          ? static_cast<double>(totals.messages_in - totals.decode_failures) /
                static_cast<double>(totals.events_written)
          : 0.0;
  out.add(drain_row);

  out.root_extra()["end_to_end_ops_per_sec"] = n / e2e_s;
  const auto bm = broker.metrics();
  out.root_extra()["e2e_produce_contention"] =
      static_cast<double>(bm.produce_contention);
  out.root_extra()["e2e_messages_trimmed"] =
      static_cast<double>(bm.messages_trimmed);
  std::printf(
      "e2e: %zu events, publish %.0f ev/s (%zu threads), ingest %.0f ev/s "
      "(%zu members), end-to-end %.0f ev/s\n",
      n_events, n / publish_s, threads, n / drain_s, members, n / e2e_s);
}

int run(int argc, char** argv) {
  const std::string path = consume_json_flag(argc, argv);
  const int partitions =
      static_cast<int>(consume_long_flag(argc, argv, "partitions", 8));
  const auto threads =
      static_cast<std::size_t>(consume_long_flag(argc, argv, "threads", 4));
  const auto members =
      static_cast<std::size_t>(consume_long_flag(argc, argv, "members", 2));
  BenchJsonWriter writer("streaming", path);
  writer.root_extra()["partitions"] = partitions;
  writer.root_extra()["hardware_threads"] =
      static_cast<double>(std::thread::hardware_concurrency());

  double one_thread = 0.0;
  double eight_threads = 0.0;
  for (const std::size_t t :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const auto r = run_producers(partitions, t);
    if (t == 1) one_thread = r.ops_per_sec;
    if (t == 8) eight_threads = r.ops_per_sec;
    BenchResultRow row;
    row.name = "produce_throughput/threads:" + std::to_string(t);
    row.ops_per_sec = r.ops_per_sec;
    row.p50_us = r.p50_us;
    row.p99_us = r.p99_us;
    row.extra["produce_contention"] = r.contention;
    writer.add(row);
    std::printf("producers=%zu: %.0f produce/s (p50 %.2f us, p99 %.2f us)\n",
                t, r.ops_per_sec, r.p50_us, r.p99_us);
  }
  const double scaling = one_thread > 0 ? eight_threads / one_thread : 0.0;
  writer.root_extra()["produce_scaling_8_vs_1"] = scaling;
  std::printf("8-producer vs 1-producer aggregate produce scaling: %.2fx\n",
              scaling);

  bench_end_to_end(partitions, threads, members, writer);

  writer.write();
  return 0;
}

}  // namespace
}  // namespace hpcla::bench

int main(int argc, char** argv) { return hpcla::bench::run(argc, argv); }
