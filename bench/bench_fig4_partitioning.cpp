// Fig 4 — (hour, type) partitions mapped over the token ring.
//
// "The partitions for events are designed to disperse overheads in both
//  reading and writing data evenly over to the cluster nodes."
//
// Reports the balance (coefficient of variation of rows per node) of the
// (hour, type) partitioning at the paper's 4-node example and the
// deployment's 32 nodes, the degenerate type-only partitioning for
// contrast, and the placement-lookup throughput of the ring itself.
#include "bench_util.hpp"

#include "common/stats.hpp"

namespace hpcla::bench {
namespace {

using titanlog::all_event_types;
using titanlog::event_id;

/// Rows-per-node CV for a keying scheme over a week of events.
double placement_cv(std::size_t nodes, bool include_hour) {
  cassalite::TokenRing ring(nodes, 64);
  std::vector<double> load(nodes, 0.0);
  // A week of hours x 9 types, weighted by a skewed per-type volume.
  for (std::int64_t h = 0; h < 24 * 7; ++h) {
    for (auto t : all_event_types()) {
      const std::string key =
          include_hour ? model::event_time_key(413185 + h, t)
                       : std::string(event_id(t));
      const double weight =
          1.0 + 100.0 * titanlog::event_info(t).base_rate_per_node_hour;
      load[ring.primary(key)] += weight;
    }
  }
  RunningStats stats;
  for (double v : load) stats.add(v);
  return stats.cv();
}

void BM_Fig4_PartitionBalance(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  double cv_hour_type = 0.0;
  double cv_type_only = 0.0;
  for (auto _ : state) {
    cv_hour_type = placement_cv(nodes, /*include_hour=*/true);
    cv_type_only = placement_cv(nodes, /*include_hour=*/false);
    benchmark::DoNotOptimize(cv_hour_type);
  }
  state.counters["cv_hour_type"] = cv_hour_type;
  state.counters["cv_type_only"] = cv_type_only;
}
BENCHMARK(BM_Fig4_PartitionBalance)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->ArgName("nodes");

/// Raw ring lookup throughput (hash + replica walk).
void BM_Fig4_ReplicaLookup(benchmark::State& state) {
  cassalite::TokenRing ring(static_cast<std::size_t>(state.range(0)), 64);
  std::int64_t i = 0;
  for (auto _ : state) {
    auto reps = ring.replicas(
        model::event_time_key(413185 + i++ % 1000,
                              titanlog::EventType::kMachineCheck),
        3);
    benchmark::DoNotOptimize(reps);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fig4_ReplicaLookup)->Arg(4)->Arg(32)->ArgName("nodes");

/// Write throughput scaling with node count: the same event volume spread
/// over more nodes (RF fixed) — the "disperse overheads" claim.
void BM_Fig4_WriteSpread(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  cassalite::Cluster cluster(cluster_opts(nodes, 3));
  HPCLA_CHECK(model::create_data_model(cluster).is_ok());
  titanlog::EventRecord e;
  e.type = titanlog::EventType::kMemoryEcc;
  e.message = "EDAC MC0: 1 CE error on DIMM1 (addr 0x0 syndrome 0x0)";
  std::int64_t i = 0;
  for (auto _ : state) {
    e.ts = kT0 + i % (24 * 3600);
    e.node = static_cast<topo::NodeId>(i % topo::TitanGeometry::kTotalNodes);
    e.seq = i++;
    benchmark::DoNotOptimize(cluster.insert(
        std::string(model::kEventByTime),
        model::event_time_key(hour_bucket(e.ts), e.type),
        model::event_time_row(e)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fig4_WriteSpread)->Arg(1)->Arg(4)->Arg(16)->Arg(32)
    ->ArgName("nodes");

}  // namespace
}  // namespace hpcla::bench

int main(int argc, char** argv) { return hpcla::bench::bench_main(argc, argv); }
