// Fig 5 — heat map + distributions of an event type over a period,
// computed by the big data processing unit.
//
// Measures the heat-map job end to end, its scaling with sparklite
// workers (the reason the analytics run on Spark at all), the distribution
// views at every grouping level, and the anomaly detector.
#include "bench_util.hpp"

#include <chrono>
#include <thread>

#include "analytics/distribution.hpp"
#include "analytics/heatmap.hpp"
#include "server/render.hpp"

namespace hpcla::bench {
namespace {

LoadedStack& stack() {
  static LoadedStack s(cluster_opts(8), engine_opts(8), mixed_scenario(2.0, 5));
  return s;
}

analytics::Context mce_context() {
  analytics::Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 2 * 3600};
  ctx.types = {titanlog::EventType::kMachineCheck};
  return ctx;
}

/// Heat-map job vs worker count (data is in one shared 8-node cluster; the
/// engine under test varies).
void BM_Fig5_HeatmapWorkers(benchmark::State& state) {
  auto& s = stack();
  sparklite::Engine engine(
      engine_opts(static_cast<std::size_t>(state.range(0))));
  const auto ctx = mce_context();
  std::int64_t total = 0;
  for (auto _ : state) {
    auto hm = analytics::build_heatmap(engine, s.cluster, ctx);
    total = hm.total;
    benchmark::DoNotOptimize(hm);
  }
  state.counters["events"] = static_cast<double>(total);
}
BENCHMARK(BM_Fig5_HeatmapWorkers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->ArgName("workers")->UseRealTime();

/// I/O-bound variant: each partition task pays a simulated 500 µs storage
/// fetch (sleep). Sleeps overlap across workers, so wall-clock scales with
/// the worker count even on a single-core host — this is the regime the
/// paper's Spark deployment actually operates in (tasks wait on Cassandra).
void BM_Fig5_HeatmapWorkersIoBound(benchmark::State& state) {
  auto& s = stack();
  const auto workers = static_cast<std::size_t>(state.range(0));
  sparklite::Engine engine(engine_opts(workers));
  // All types over 2 hours -> 18 partitions, enough tasks to overlap.
  analytics::Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 2 * 3600};
  const auto keys = analytics::event_partition_keys(
      ctx, analytics::ScanPlan::kByTime);
  for (auto _ : state) {
    // Rebuild the scan with a per-partition simulated fetch delay.
    using Out = std::pair<std::string, cassalite::Row>;
    std::vector<sparklite::Dataset<Out>::Partition> parts;
    for (const auto& key : keys) {
      parts.push_back(sparklite::Dataset<Out>::Partition{
          [&s, key](const sparklite::TaskContext&) {
            std::this_thread::sleep_for(std::chrono::microseconds(500));
            cassalite::ReadQuery q;
            q.table = std::string(model::kEventByTime);
            q.partition_key = key;
            auto result =
                s.cluster.engine(s.cluster.ring().primary(key)).read(q);
            std::vector<Out> out;
            for (auto& row : result.rows) out.emplace_back(key, std::move(row));
            return out;
          },
          static_cast<int>(s.cluster.ring().primary(key))});
    }
    auto count = sparklite::Dataset<Out>(engine, std::move(parts)).count();
    benchmark::DoNotOptimize(count);
  }
  state.counters["partitions"] = static_cast<double>(keys.size());
}
BENCHMARK(BM_Fig5_HeatmapWorkersIoBound)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->ArgName("workers")->UseRealTime();

/// Distribution views over the same context.
void BM_Fig5_Distribution(benchmark::State& state) {
  auto& s = stack();
  const auto group = static_cast<analytics::GroupBy>(state.range(0));
  const auto ctx = mce_context();
  for (auto _ : state) {
    auto dist = analytics::distribution(s.engine, s.cluster, ctx, group);
    benchmark::DoNotOptimize(dist);
  }
}
BENCHMARK(BM_Fig5_Distribution)
    ->Arg(static_cast<int>(hpcla::analytics::GroupBy::kCabinet))
    ->Arg(static_cast<int>(hpcla::analytics::GroupBy::kBlade))
    ->Arg(static_cast<int>(hpcla::analytics::GroupBy::kNode))
    ->Arg(static_cast<int>(hpcla::analytics::GroupBy::kApplication))
    ->ArgName("group_by_cab1_blade2_node3_app5");

/// Anomaly detection + rendering on a prebuilt heat map (frontend update
/// path after the job completes).
void BM_Fig5_DetectAndRender(benchmark::State& state) {
  auto& s = stack();
  auto hm = analytics::build_heatmap(s.engine, s.cluster, mce_context());
  for (auto _ : state) {
    auto anomalous = hm.anomalous_nodes(3.0);
    auto art = server::render_cabinet_heatmap(hm);
    benchmark::DoNotOptimize(anomalous);
    benchmark::DoNotOptimize(art);
  }
  state.counters["anomalous_nodes"] =
      static_cast<double>(hm.anomalous_nodes(3.0).size());
}
BENCHMARK(BM_Fig5_DetectAndRender);

/// The hourly histogram of the temporal map.
void BM_Fig5_HourlyHistogram(benchmark::State& state) {
  auto& s = stack();
  analytics::Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 2 * 3600};
  for (auto _ : state) {
    auto hourly = analytics::hourly_distribution(s.engine, s.cluster, ctx);
    benchmark::DoNotOptimize(hourly);
  }
}
BENCHMARK(BM_Fig5_HourlyHistogram);

}  // namespace
}  // namespace hpcla::bench

int main(int argc, char** argv) { return hpcla::bench::bench_main(argc, argv); }
