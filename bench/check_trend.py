#!/usr/bin/env python3
"""Compare BENCH_*.json summaries against committed baselines.

Each bench binary writes a summary like

    {"bench": "streaming",
     "results": [{"name": "produce_throughput/threads:4",
                  "ops_per_sec": 123456.0, ...}, ...],
     ...}

and `bench/baselines/` holds a committed copy of a known-good run. This
script diffs `ops_per_sec` per result name and flags drops beyond the
threshold (default 20%). Absolute numbers vary wildly across machines, so
the committed baseline is only a tripwire for *relative* collapses (a
lock reintroduced on a hot path, a sort gone quadratic) — which is why CI
runs it in report-only mode by default; pass --strict to make
regressions fail the build.

Usage:
    python3 bench/check_trend.py BENCH_streaming.json [BENCH_ingest.json ...]
    python3 bench/check_trend.py --strict --threshold 0.3 BENCH_*.json
"""

import argparse
import json
import os
import sys


def load_results(path):
    """Returns {result_name: ops_per_sec} from one bench summary."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for row in data.get("results", []):
        name = row.get("name")
        ops = row.get("ops_per_sec")
        if name is not None and isinstance(ops, (int, float)) and ops > 0:
            out[name] = float(ops)
    return out


def load_environment(path):
    """Returns the environment signature dict, or None for pre-signature
    summaries."""
    with open(path) as f:
        data = json.load(f)
    env = data.get("environment")
    return env if isinstance(env, dict) else None


def environments_comparable(current_env, baseline_env):
    """Signatures must both exist and match exactly: comparing a 1-core
    run against an 8-core baseline (or debug against release) measures the
    machine, not the code."""
    return (
        current_env is not None
        and baseline_env is not None
        and current_env == baseline_env
    )


def report_telemetry_overhead(path):
    """Prints the tracing-overhead probe some benches embed (informational:
    the acceptance budget is 5%, but runner jitter makes it advisory)."""
    with open(path) as f:
        data = json.load(f)
    probe = data.get("telemetry_overhead")
    if not isinstance(probe, dict):
        return
    pct = probe.get("overhead_pct")
    if not isinstance(pct, (int, float)):
        return
    verdict = "within budget" if pct <= 5.0 else "OVER 5% budget"
    print(
        f"  telemetry overhead ({probe.get('query', '?')}): "
        f"{pct:+.2f}% ({verdict}; informational)"
    )


def report_cached_path(path):
    """Prints the cold-vs-warm cached-path probe (acceptance: warm p50 at
    least 10x faster than cold on the same run)."""
    with open(path) as f:
        data = json.load(f)
    probe = data.get("cached_path")
    if not isinstance(probe, dict):
        return
    speedup = probe.get("speedup")
    if not isinstance(speedup, (int, float)):
        return
    verdict = "meets 10x floor" if speedup >= 10.0 else "UNDER 10x floor"
    print(
        f"  cached path ({probe.get('query', '?')}): cold p50 "
        f"{probe.get('cold_p50_us', 0):,.0f} us vs warm p50 "
        f"{probe.get('warm_p50_us', 0):,.1f} us = {speedup:,.0f}x ({verdict})"
    )


def compare(current_path, baseline_path, threshold):
    """Prints a per-result diff; returns the list of regressed names."""
    current_env = load_environment(current_path)
    baseline_env = load_environment(baseline_path)
    if not environments_comparable(current_env, baseline_env):
        print(
            f"  INCOMPARABLE  environment signature mismatch — refusing "
            f"cross-environment comparison\n"
            f"                current  {current_env or '(unsigned summary)'}\n"
            f"                baseline {baseline_env or '(unsigned summary)'}"
        )
        return []
    current = load_results(current_path)
    baseline = load_results(baseline_path)
    regressions = []
    for name, base_ops in sorted(baseline.items()):
        cur_ops = current.get(name)
        if cur_ops is None:
            print(f"  MISSING  {name} (in baseline, not in current run)")
            regressions.append(name)
            continue
        delta = (cur_ops - base_ops) / base_ops
        tag = "ok"
        if delta < -threshold:
            tag = "REGRESSED"
            regressions.append(name)
        elif delta > threshold:
            tag = "improved"
        print(
            f"  {tag:>9}  {name}: {cur_ops:,.0f} ops/s "
            f"(baseline {base_ops:,.0f}, {delta:+.1%})"
        )
    for name in sorted(set(current) - set(baseline)):
        print(f"  new      {name}: {current[name]:,.0f} ops/s (no baseline)")
    return regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="BENCH_*.json summaries")
    parser.add_argument(
        "--baseline-dir",
        default=os.path.join(os.path.dirname(__file__), "baselines"),
        help="directory holding committed baseline summaries",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="relative ops/s drop treated as a regression (default 0.20)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when any result regressed",
    )
    args = parser.parse_args()

    all_regressions = []
    for path in args.files:
        baseline = os.path.join(args.baseline_dir, os.path.basename(path))
        print(f"{path}:")
        if not os.path.exists(path):
            print("  (current summary missing — bench did not run?)")
            all_regressions.append(path)
            continue
        report_telemetry_overhead(path)
        report_cached_path(path)
        if not os.path.exists(baseline):
            print(f"  (no baseline at {baseline} — skipping)")
            continue
        all_regressions.extend(compare(path, baseline, args.threshold))

    if all_regressions:
        print(
            f"\n{len(all_regressions)} result(s) regressed more than "
            f"{args.threshold:.0%} vs baseline."
        )
        if args.strict:
            return 1
        print("(report-only mode; pass --strict to fail the build)")
    else:
        print("\nNo regressions beyond threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
