#!/usr/bin/env python3
"""Compare BENCH_*.json summaries against committed baselines.

Each bench binary writes a summary like

    {"bench": "streaming",
     "results": [{"name": "produce_throughput/threads:4",
                  "ops_per_sec": 123456.0, ...}, ...],
     ...}

and `bench/baselines/` holds a committed copy of a known-good run. This
script diffs `ops_per_sec` per result name and flags drops beyond the
threshold (default 20%). Absolute numbers vary wildly across machines, so
the committed baseline is only a tripwire for *relative* collapses (a
lock reintroduced on a hot path, a sort gone quadratic) — which is why CI
runs it in report-only mode by default; pass --strict to make
regressions fail the build.

Besides ops/s, each summary carries `peak_rss_bytes` and
`bytes_spilled` (spill-to-disk shuffle traffic), reported next to the
latency diff so memory regressions are as visible as throughput ones.

An environment-signature mismatch between a summary and its baseline is an
error (exit code 2): the comparison would measure the machine, not the
code. Regenerate baselines on the machine that runs the checks, e.g.

    ./build/bench/bench_spill --json bench/baselines/BENCH_spill.json

or pass --ignore-env-mismatch to skip those files (CI report-only mode).

Usage:
    python3 bench/check_trend.py BENCH_streaming.json [BENCH_ingest.json ...]
    python3 bench/check_trend.py --strict --threshold 0.3 BENCH_*.json
"""

import argparse
import json
import os
import sys


def load_results(path):
    """Returns {result_name: ops_per_sec} from one bench summary."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for row in data.get("results", []):
        name = row.get("name")
        ops = row.get("ops_per_sec")
        if name is not None and isinstance(ops, (int, float)) and ops > 0:
            out[name] = float(ops)
    return out


def load_environment(path):
    """Returns the environment signature dict, or None for pre-signature
    summaries."""
    with open(path) as f:
        data = json.load(f)
    env = data.get("environment")
    return env if isinstance(env, dict) else None


def environments_comparable(current_env, baseline_env):
    """Signatures must both exist and match exactly: comparing a 1-core
    run against an 8-core baseline (or debug against release) measures the
    machine, not the code."""
    return (
        current_env is not None
        and baseline_env is not None
        and current_env == baseline_env
    )


def report_memory(path):
    """Prints peak RSS and spill traffic stamped into the summary (absent
    in pre-spill summaries)."""
    with open(path) as f:
        data = json.load(f)
    rss = data.get("peak_rss_bytes")
    spilled = data.get("bytes_spilled")
    if isinstance(rss, (int, float)) and rss > 0:
        print(f"  peak RSS {rss / (1 << 20):,.1f} MiB", end="")
        if isinstance(spilled, (int, float)):
            print(f", spilled {spilled / (1 << 20):,.1f} MiB to disk", end="")
        print()


def report_spill_overhead(path):
    """Prints bench_spill's acceptance probe: spilled sort_by must stay
    within 3x of the in-memory run on the same data."""
    with open(path) as f:
        data = json.load(f)
    probe = data.get("spill_overhead")
    if not isinstance(probe, dict):
        return
    ratio = probe.get("ratio")
    if not isinstance(ratio, (int, float)):
        return
    verdict = "within 3x budget" if ratio <= 3.0 else "OVER 3x budget"
    print(
        f"  spill overhead ({probe.get('workload', '?')}): spilled run "
        f"{ratio:,.2f}x the in-memory run ({verdict})"
    )


def report_extent_compression(path):
    """Prints the columnar-extent compression probe (acceptance: >= 2x on
    titanlog data)."""
    with open(path) as f:
        data = json.load(f)
    probe = data.get("extent_compression")
    if not isinstance(probe, dict):
        return
    ratio = probe.get("ratio")
    if not isinstance(ratio, (int, float)):
        return
    verdict = "meets 2x floor" if ratio >= 2.0 else "UNDER 2x floor"
    print(
        f"  extent compression: {probe.get('raw_bytes', 0):,.0f} raw -> "
        f"{probe.get('encoded_bytes', 0):,.0f} encoded = {ratio:,.2f}x "
        f"({verdict})"
    )


def report_telemetry_overhead(path):
    """Prints the tracing-overhead probe some benches embed (informational:
    the acceptance budget is 5%, but runner jitter makes it advisory)."""
    with open(path) as f:
        data = json.load(f)
    probe = data.get("telemetry_overhead")
    if not isinstance(probe, dict):
        return
    pct = probe.get("overhead_pct")
    if not isinstance(pct, (int, float)):
        return
    verdict = "within budget" if pct <= 5.0 else "OVER 5% budget"
    print(
        f"  telemetry overhead ({probe.get('query', '?')}): "
        f"{pct:+.2f}% ({verdict}; informational)"
    )


def report_cached_path(path):
    """Prints the cold-vs-warm cached-path probe (acceptance: warm p50 at
    least 10x faster than cold on the same run)."""
    with open(path) as f:
        data = json.load(f)
    probe = data.get("cached_path")
    if not isinstance(probe, dict):
        return
    speedup = probe.get("speedup")
    if not isinstance(speedup, (int, float)):
        return
    verdict = "meets 10x floor" if speedup >= 10.0 else "UNDER 10x floor"
    print(
        f"  cached path ({probe.get('query', '?')}): cold p50 "
        f"{probe.get('cold_p50_us', 0):,.0f} us vs warm p50 "
        f"{probe.get('warm_p50_us', 0):,.1f} us = {speedup:,.0f}x ({verdict})"
    )


def report_coldread(path):
    """Prints bench_coldread's out-of-core acceptance probe: cold sliced
    read peak RSS <= 1/4 of the full-decode path, byte-identical sliced
    rows, and >= 90% block-cache hits on the warm re-read."""
    with open(path) as f:
        data = json.load(f)
    probe = data.get("coldread")
    if not isinstance(probe, dict):
        return
    ratio = probe.get("rss_ratio")
    hit_rate = probe.get("warm_hit_rate")
    identical = probe.get("identical")
    if not isinstance(ratio, (int, float)):
        return
    rss_verdict = "within 1/4 budget" if ratio <= 0.25 else "OVER 1/4 budget"
    print(
        f"  coldread RSS: sliced {probe.get('cold_peak_rss_bytes', 0) / (1 << 20):,.1f} MiB "
        f"vs full decode {probe.get('full_peak_rss_bytes', 0) / (1 << 20):,.1f} MiB "
        f"= {ratio:,.2f}x ({rss_verdict})"
    )
    if isinstance(hit_rate, (int, float)):
        hit_verdict = "meets 90% floor" if hit_rate >= 0.9 else "UNDER 90% floor"
        print(f"  coldread warm hit rate: {hit_rate:.1%} ({hit_verdict})")
    if identical is not None:
        print(
            "  coldread sliced rows byte-identical: "
            + ("yes" if identical else "NO — cold path corrupts reads")
        )


def report_rebalance_chaos(path):
    """Prints the rebalance chaos probe and returns the list of violated
    invariants. Unlike the throughput probes these are correctness
    tripwires — zero acked-write loss across a topology change and a
    bit-identical seeded replay — so violations count as regressions even
    when no baseline exists."""
    with open(path) as f:
        data = json.load(f)
    probe = data.get("rebalance_chaos")
    if not isinstance(probe, dict):
        return []
    violations = []
    seed = probe.get("seed", "?")
    loss = probe.get("acked_loss")
    if isinstance(loss, (int, float)):
        verdict = "zero acked-loss" if loss == 0 else "ACKED WRITES LOST"
        print(
            f"  rebalance chaos (seed {seed}): {probe.get('acked', 0):,} "
            f"acked writes, loss={loss:,.0f} ({verdict}); "
            f"{probe.get('topology_changes', 0)} topology changes, "
            f"{probe.get('ranges_streamed', 0):,} ranges streamed, "
            f"{probe.get('repair_rows_sent', 0):,} repair rows, "
            f"{probe.get('partition_drops', 0):,} partition drops"
        )
        if loss != 0:
            violations.append(f"rebalance_chaos.acked_loss (seed {seed})")
    replay = probe.get("replay_identical")
    if replay is not None:
        print(
            "  rebalance chaos replay bit-identical: "
            + ("yes" if replay else "NO — seed does not replay identically")
        )
        if not replay:
            violations.append(f"rebalance_chaos.replay_identical (seed {seed})")
    return violations


def report_selftelemetry(path):
    """Prints the closed-loop self-telemetry probes and returns the list
    of violated invariants. Two summaries carry a `selftelemetry` key:

    - bench_fig3_endtoend embeds the export-on/off overhead probe
      (acceptance: the full export -> ingest -> alert loop costs <= 5%
      on the complex path);
    - the model_selftel_test chaos run (SELFTEL_JSON) records the seeded
      fault scenario (acceptance: >= 1 alert fires, the replay is
      bit-identical, and the idle loop publishes zero events).

    The determinism fields are correctness tripwires, counted as
    regressions even without a baseline; the overhead budget is advisory
    like the tracing probe (runner jitter)."""
    with open(path) as f:
        data = json.load(f)
    probe = data.get("selftelemetry")
    if not isinstance(probe, dict):
        return []
    violations = []
    pct = probe.get("overhead_pct")
    if isinstance(pct, (int, float)):
        verdict = "within budget" if pct <= 5.0 else "OVER 5% budget"
        print(
            f"  self-telemetry export overhead ({probe.get('query', '?')}): "
            f"{pct:+.2f}% ({verdict}; informational)"
        )
    fired = probe.get("alerts_fired")
    if "seed" in probe and isinstance(fired, (int, float)):
        seed = probe.get("seed", "?")
        verdict = "alert fired" if fired >= 1 else "NO ALERT FIRED"
        print(
            f"  self-telemetry chaos (seed {seed}): {fired:,.0f} alert(s) "
            f"[{probe.get('rule', '?')}], fingerprint "
            f"{probe.get('fingerprint', '?')}, "
            f"{probe.get('rows_written', 0):,} sys rows ({verdict})"
        )
        if fired < 1:
            violations.append(f"selftelemetry.alerts_fired (seed {seed})")
        replay = probe.get("replay_identical")
        if replay is not None:
            print(
                "  self-telemetry replay bit-identical: "
                + ("yes" if replay else "NO — seed does not replay identically")
            )
            if not replay:
                violations.append(
                    f"selftelemetry.replay_identical (seed {seed})"
                )
        idle = probe.get("idle_events")
        if isinstance(idle, (int, float)):
            print(
                f"  self-telemetry idle-loop events: {idle:,.0f} "
                + ("(converged)" if idle == 0 else "(LOOP FEEDS ITSELF)")
            )
            if idle != 0:
                violations.append(f"selftelemetry.idle_events (seed {seed})")
    return violations


# Structured (dict-valued) top-level keys this script knows how to report.
# Scalar keys are free-form informational metadata and are not checked.
KNOWN_PROBE_KEYS = {
    "environment",
    "spill_overhead",
    "extent_compression",
    "telemetry_overhead",
    "cached_path",
    "coldread",
    "rebalance_chaos",
    "selftelemetry",
}


def warn_unknown_probes(path):
    """Flags dict-valued top-level keys no report_* function handles.
    Silently ignoring an unknown probe would read as "checked and fine"
    when the check never ran."""
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data, dict):
        return
    for key in sorted(data):
        if key in KNOWN_PROBE_KEYS or not isinstance(data[key], dict):
            continue
        print(
            f"  WARNING: unknown probe '{key}' — this script has no checker "
            f"for it (add a report_* function)"
        )


class EnvMismatch(Exception):
    """Raised when a summary and its baseline disagree on environment."""

    def __init__(self, current_env, baseline_env):
        super().__init__("environment signature mismatch")
        self.current_env = current_env
        self.baseline_env = baseline_env


def compare(current_path, baseline_path, threshold):
    """Prints a per-result diff; returns the list of regressed names.
    Raises EnvMismatch instead of comparing across environments."""
    current_env = load_environment(current_path)
    baseline_env = load_environment(baseline_path)
    if not environments_comparable(current_env, baseline_env):
        raise EnvMismatch(current_env, baseline_env)
    current = load_results(current_path)
    baseline = load_results(baseline_path)
    regressions = []
    for name, base_ops in sorted(baseline.items()):
        cur_ops = current.get(name)
        if cur_ops is None:
            print(f"  MISSING  {name} (in baseline, not in current run)")
            regressions.append(name)
            continue
        delta = (cur_ops - base_ops) / base_ops
        tag = "ok"
        if delta < -threshold:
            tag = "REGRESSED"
            regressions.append(name)
        elif delta > threshold:
            tag = "improved"
        print(
            f"  {tag:>9}  {name}: {cur_ops:,.0f} ops/s "
            f"(baseline {base_ops:,.0f}, {delta:+.1%})"
        )
    for name in sorted(set(current) - set(baseline)):
        print(f"  new      {name}: {current[name]:,.0f} ops/s (no baseline)")
    return regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="BENCH_*.json summaries")
    parser.add_argument(
        "--baseline-dir",
        default=os.path.join(os.path.dirname(__file__), "baselines"),
        help="directory holding committed baseline summaries",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="relative ops/s drop treated as a regression (default 0.20)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when any result regressed",
    )
    parser.add_argument(
        "--ignore-env-mismatch",
        action="store_true",
        help="skip (instead of fail on) summaries whose environment "
        "signature differs from the baseline's",
    )
    args = parser.parse_args()

    all_regressions = []
    env_mismatches = []
    for path in args.files:
        baseline = os.path.join(args.baseline_dir, os.path.basename(path))
        print(f"{path}:")
        if not os.path.exists(path):
            print("  (current summary missing — bench did not run?)")
            all_regressions.append(path)
            continue
        report_memory(path)
        report_telemetry_overhead(path)
        report_cached_path(path)
        report_spill_overhead(path)
        report_extent_compression(path)
        report_coldread(path)
        all_regressions.extend(report_rebalance_chaos(path))
        all_regressions.extend(report_selftelemetry(path))
        warn_unknown_probes(path)
        if not os.path.exists(baseline):
            print(f"  (no baseline at {baseline} — skipping)")
            continue
        try:
            all_regressions.extend(compare(path, baseline, args.threshold))
        except EnvMismatch as m:
            print(
                f"  ENV MISMATCH  current environment does not match the "
                f"committed baseline\n"
                f"                current  "
                f"{m.current_env or '(unsigned summary)'}\n"
                f"                baseline "
                f"{m.baseline_env or '(unsigned summary)'}"
            )
            env_mismatches.append(path)

    if env_mismatches and not args.ignore_env_mismatch:
        print(
            f"\nERROR: {len(env_mismatches)} summarie(s) were measured in a "
            f"different environment than their baselines; comparing them "
            f"would measure the machine, not the code.\n"
            f"Regenerate the baselines on this machine, e.g.\n"
            f"    ./build/bench/bench_<name> --json "
            f"bench/baselines/BENCH_<name>.json\n"
            f"and commit the result — or pass --ignore-env-mismatch to skip "
            f"these files."
        )
        return 2

    if all_regressions:
        print(
            f"\n{len(all_regressions)} result(s) regressed more than "
            f"{args.threshold:.0%} vs baseline."
        )
        if args.strict:
            return 1
        print("(report-only mode; pass --strict to fail the build)")
    else:
        print("\nNo regressions beyond threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
