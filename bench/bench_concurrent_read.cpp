// Concurrent read-path bench: aggregate read throughput at 1/2/4/8 reader
// threads with a background writer hammering the same node. Under the old
// single-mutex StorageEngine this curve was flat (every reader serialized
// on the writer); the snapshot read path should scale near-linearly until
// the hardware runs out of cores. Also measures the batch scan
// (scan_partitions) against per-key reads and the Cluster::parallel_read
// fan-out, and writes the machine-readable summary (BENCH_concurrent_read
// .json, or --json <path>) used to track the perf trajectory.
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cassalite/cluster.hpp"
#include "cassalite/storage_engine.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/quantile_sketch.hpp"
#include "common/thread_pool.hpp"
#include "rowstore/rowstore.hpp"

namespace hpcla::bench {
namespace {

constexpr std::size_t kPartitions = 64;
constexpr int kRowsPerPartition = 128;
constexpr double kMeasureSeconds = 0.6;

std::string pkey(std::size_t p) { return "pk-" + std::to_string(p); }

cassalite::Row make_row(std::int64_t seq, std::int64_t write_ts) {
  cassalite::Row r;
  r.key = cassalite::ClusteringKey::of({cassalite::Value(seq)});
  r.set("v", seq);
  r.set("msg", "synthetic log event payload for sizing");
  r.write_ts = write_ts;
  return r;
}

void preload(cassalite::StorageEngine& engine) {
  std::int64_t ts = 0;
  for (std::size_t p = 0; p < kPartitions; ++p) {
    for (int s = 0; s < kRowsPerPartition; ++s) {
      engine.apply(cassalite::WriteCommand{"events", pkey(p),
                                           make_row(s, ++ts)});
    }
  }
  engine.flush_all();
}

struct ThroughputResult {
  double ops_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t writer_ops = 0;
};

/// `readers` threads read random partitions while one writer appends.
ThroughputResult run_readers(cassalite::StorageEngine& engine,
                             std::size_t readers) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_reads{0};
  std::atomic<std::uint64_t> writer_ops{0};

  std::thread writer([&] {
    Rng rng(7);
    std::int64_t ts = 1'000'000;
    // A bounded ring of hot clustering keys: the engine keeps flushing and
    // compacting under the readers, but partition sizes stay bounded so
    // per-read work is comparable across reader counts.
    while (!stop.load(std::memory_order_acquire)) {
      const auto p = rng.next_below(kPartitions);
      const auto hot = static_cast<std::int64_t>(rng.next_below(64));
      engine.apply(cassalite::WriteCommand{
          "events", pkey(p), make_row(kRowsPerPartition + hot, ++ts)});
      writer_ops.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<QuantileSketch> latencies(readers, QuantileSketch(0.005));
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < readers; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + t);
      std::uint64_t ops = 0;
      while (!stop.load(std::memory_order_acquire)) {
        cassalite::ReadQuery q;
        q.table = "events";
        q.partition_key = pkey(rng.next_below(kPartitions));
        if (ops % 16 == 0) {
          Stopwatch lat;
          benchmark::DoNotOptimize(engine.read(q));
          latencies[t].add(static_cast<double>(lat.elapsed_micros()));
        } else {
          benchmark::DoNotOptimize(engine.read(q));
        }
        ++ops;
      }
      total_reads.fetch_add(ops, std::memory_order_relaxed);
    });
  }

  Stopwatch watch;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(kMeasureSeconds * 1e3)));
  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  writer.join();
  const double elapsed = watch.elapsed_seconds();

  // Sketches merge: report true cross-thread percentiles (within the
  // sketch's rank-error bound) instead of averaged per-thread ones.
  ThroughputResult r;
  r.ops_per_sec = static_cast<double>(total_reads.load()) / elapsed;
  QuantileSketch all(0.005);
  for (const auto& lat : latencies) all.merge(lat);
  r.p50_us = all.count() ? all.quantile(0.5) : 0.0;
  r.p99_us = all.count() ? all.quantile(0.99) : 0.0;
  r.writer_ops = writer_ops.load();
  return r;
}

/// Batch scan vs per-key reads, single thread (snapshot amortization).
void bench_scan(cassalite::StorageEngine& engine, BenchJsonWriter& out) {
  std::vector<std::string> keys;
  for (std::size_t p = 0; p < kPartitions; ++p) keys.push_back(pkey(p));

  constexpr int kRounds = 200;
  Stopwatch per_key;
  std::size_t rows_per_key = 0;
  for (int i = 0; i < kRounds; ++i) {
    for (const auto& key : keys) {
      cassalite::ReadQuery q;
      q.table = "events";
      q.partition_key = key;
      rows_per_key += engine.read(q).rows.size();
    }
  }
  const double per_key_s = per_key.elapsed_seconds();

  Stopwatch batched;
  std::size_t rows_batched = 0;
  for (int i = 0; i < kRounds; ++i) {
    engine.scan_partitions(
        "events", keys, {},
        [&](const std::string&, std::vector<cassalite::Row> rows) {
          rows_batched += rows.size();
        });
  }
  const double batched_s = batched.elapsed_seconds();
  HPCLA_CHECK(rows_batched == rows_per_key);

  const double n = static_cast<double>(kRounds) * kPartitions;
  BenchResultRow row;
  row.name = "scan_partitions_vs_per_key";
  row.ops_per_sec = n / batched_s;
  row.p50_us = batched_s / n * 1e6;
  row.p99_us = row.p50_us;
  row.extra["per_key_ops_per_sec"] = n / per_key_s;
  row.extra["batch_speedup"] = per_key_s / batched_s;
  out.add(row);
  std::printf("scan_partitions: %.0f partitions/s batched vs %.0f per-key "
              "(%.2fx)\n",
              n / batched_s, n / per_key_s, per_key_s / batched_s);
}

/// Multi-partition coordinator reads fanned across a pool.
void bench_parallel_read(BenchJsonWriter& out) {
  cassalite::ClusterOptions copts;
  copts.node_count = 4;
  copts.replication_factor = 3;
  cassalite::Cluster cluster(copts);
  std::vector<std::string> keys;
  std::int64_t ts = 0;
  for (std::size_t p = 0; p < kPartitions; ++p) {
    keys.push_back(pkey(p));
    for (int s = 0; s < kRowsPerPartition; ++s) {
      HPCLA_CHECK(
          cluster.insert("events", pkey(p), make_row(s, ++ts)).is_ok());
    }
  }

  constexpr int kRounds = 100;
  for (const std::size_t pool_size : {std::size_t{1}, std::size_t{4},
                                      std::size_t{8}}) {
    ThreadPool pool(pool_size);
    Stopwatch watch;
    std::size_t rows = 0;
    for (int i = 0; i < kRounds; ++i) {
      for (const auto& result :
           cluster.parallel_read(pool, "events", keys, {})) {
        rows += result.value().rows.size();
      }
    }
    const double s = watch.elapsed_seconds();
    HPCLA_CHECK(rows == static_cast<std::size_t>(kRounds) * kPartitions *
                            kRowsPerPartition);
    const double queries = static_cast<double>(kRounds);
    BenchResultRow row;
    row.name = "parallel_read/pool:" + std::to_string(pool_size);
    row.ops_per_sec = queries * kPartitions / s;
    row.p50_us = s / queries * 1e6;  // per multi-partition query
    row.p99_us = row.p50_us;
    row.extra["keys_per_query"] = static_cast<double>(kPartitions);
    out.add(row);
    std::printf("parallel_read pool=%zu: %.0f keys/s (%.3f ms per %zu-key "
                "query)\n",
                pool_size, queries * kPartitions / s, s / queries * 1e3,
                kPartitions);
  }
}

/// rowstore point-read scaling: same reader/writer shape as the cassalite
/// rounds. The RCU snapshot read path keeps readers off the transaction
/// lock, so the aggregate curve should rise with threads instead of the
/// flat line (and collapsing p99) the old global-lock reads produced.
void bench_rowstore_readers(BenchJsonWriter& out) {
  rowstore::RowStore db;
  using K = rowstore::ColumnDef::Kind;
  HPCLA_CHECK(db.create_table("events",
                              {{"id", K::kInt}, {"v", K::kInt},
                               {"msg", K::kText}},
                              1)
                  .is_ok());
  constexpr std::int64_t kRows = 8192;
  for (std::int64_t i = 0; i < kRows; ++i) {
    HPCLA_CHECK(db.insert("events",
                          {rowstore::Value(i), rowstore::Value(i * 2),
                           rowstore::Value("synthetic log event payload")})
                    .is_ok());
  }

  std::int64_t next_key = kRows;  // persists across rounds: keys stay unique
  for (const std::size_t readers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> total_reads{0};
    std::atomic<std::uint64_t> writer_ops{0};
    std::thread writer([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const std::int64_t next = next_key++;  // joined before the next round
        HPCLA_CHECK(db.insert("events",
                              {rowstore::Value(next), rowstore::Value(next),
                               rowstore::Value("appended row")})
                        .is_ok());
        writer_ops.fetch_add(1, std::memory_order_relaxed);
      }
    });
    std::vector<QuantileSketch> latencies(readers, QuantileSketch(0.005));
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < readers; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(300 + t);
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_acquire)) {
          const auto key = static_cast<std::int64_t>(rng.next_below(kRows));
          if (ops % 16 == 0) {
            Stopwatch lat;
            benchmark::DoNotOptimize(db.get("events", {rowstore::Value(key)}));
            latencies[t].add(static_cast<double>(lat.elapsed_micros()));
          } else {
            benchmark::DoNotOptimize(db.get("events", {rowstore::Value(key)}));
          }
          ++ops;
        }
        total_reads.fetch_add(ops, std::memory_order_relaxed);
      });
    }
    Stopwatch watch;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int>(kMeasureSeconds * 1e3)));
    stop.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();
    writer.join();
    const double elapsed = watch.elapsed_seconds();

    QuantileSketch all(0.005);
    for (const auto& lat : latencies) all.merge(lat);
    const double p50 = all.count() ? all.quantile(0.5) : 0.0;
    const double p99 = all.count() ? all.quantile(0.99) : 0.0;
    BenchResultRow row;
    row.name = "rowstore_read/threads:" + std::to_string(readers);
    row.ops_per_sec = static_cast<double>(total_reads.load()) / elapsed;
    row.p50_us = p50;
    row.p99_us = p99;
    row.extra["writer_ops_per_sec"] =
        static_cast<double>(writer_ops.load()) / elapsed;
    out.add(row);
    std::printf(
        "rowstore readers=%zu: %.0f reads/s (p50 %.1f us, p99 %.1f us), "
        "writer %.0f ops/s\n",
        readers, row.ops_per_sec, row.p50_us, row.p99_us,
        static_cast<double>(writer_ops.load()) / elapsed);
  }
  out.root_extra()["rowstore_snapshot_merges"] =
      static_cast<double>(db.snapshot_merges());
}

int run(int argc, char** argv) {
  const std::string path = consume_json_flag(argc, argv);
  BenchJsonWriter writer("concurrent_read", path);

  cassalite::StorageOptions opts;
  opts.memtable_flush_bytes = 1u << 20;  // background writer forces flushes
  opts.compaction_threshold = 4;
  cassalite::StorageEngine engine(opts);
  preload(engine);

  double one_thread = 0.0;
  double four_threads = 0.0;
  for (const std::size_t readers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    const auto r = run_readers(engine, readers);
    if (readers == 1) one_thread = r.ops_per_sec;
    if (readers == 4) four_threads = r.ops_per_sec;
    BenchResultRow row;
    row.name = "read_throughput/threads:" + std::to_string(readers);
    row.ops_per_sec = r.ops_per_sec;
    row.p50_us = r.p50_us;
    row.p99_us = r.p99_us;
    row.extra["writer_ops_per_sec"] =
        static_cast<double>(r.writer_ops) / kMeasureSeconds;
    writer.add(row);
    std::printf(
        "readers=%zu: %.0f reads/s (p50 %.1f us, p99 %.1f us), writer %.0f "
        "ops/s\n",
        readers, r.ops_per_sec, r.p50_us, r.p99_us,
        static_cast<double>(r.writer_ops) / kMeasureSeconds);
  }
  const double speedup = one_thread > 0 ? four_threads / one_thread : 0.0;
  writer.root_extra()["speedup_4_vs_1"] = speedup;
  std::printf("4-thread vs 1-thread aggregate read speedup: %.2fx\n", speedup);

  bench_scan(engine, writer);
  bench_parallel_read(writer);
  bench_rowstore_readers(writer);

  const auto m = engine.metrics();
  writer.root_extra()["snapshot_reads"] = m.snapshot_reads;
  writer.root_extra()["compaction_stall_us"] = m.compaction_stall_us;
  writer.root_extra()["compactions"] = m.compactions;
  writer.write();
  std::printf("summary written (snapshot_reads=%llu, compactions=%llu, "
              "compaction_stall_us=%llu)\n",
              static_cast<unsigned long long>(m.snapshot_reads),
              static_cast<unsigned long long>(m.compactions),
              static_cast<unsigned long long>(m.compaction_stall_us));
  return 0;
}

}  // namespace
}  // namespace hpcla::bench

int main(int argc, char** argv) { return hpcla::bench::run(argc, argv); }
