// §III-A claim — Spark/Cassandra co-location for data locality:
// "We selected this configuration to maximize data locality for the
//  computation performed by the analytic algorithms ... By associating
//  local partitions with the same local Spark worker, the big data
//  processing unit performs analytics efficiently."
//
// The same heat-map job runs with locality-aware vs locality-blind task
// placement under a simulated network cost per remote partition fetch.
// Counters report the local/remote split that drives the gap.
#include "bench_util.hpp"

#include "analytics/heatmap.hpp"

namespace hpcla::bench {
namespace {

LoadedStack& stack() {
  static LoadedStack s(cluster_opts(8), engine_opts(8), mixed_scenario(2.0, 8));
  return s;
}

void run_heatmap(benchmark::State& state, bool locality, int penalty_us) {
  auto& s = stack();
  sparklite::Engine engine(engine_opts(8, locality, penalty_us));
  analytics::Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 2 * 3600};
  for (auto _ : state) {
    auto hm = analytics::build_heatmap(engine, s.cluster, ctx);
    benchmark::DoNotOptimize(hm);
  }
  const auto m = engine.metrics();
  const double tasks = static_cast<double>(m.local_tasks + m.remote_fetches);
  state.counters["local_fraction"] =
      tasks > 0 ? static_cast<double>(m.local_tasks) / tasks : 0.0;
  state.counters["remote_fetches"] = static_cast<double>(m.remote_fetches);
}

void BM_Locality_Aware(benchmark::State& state) {
  run_heatmap(state, /*locality=*/true, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_Locality_Aware)->Arg(0)->Arg(50)->Arg(200)
    ->ArgName("remote_penalty_us")->UseRealTime();

void BM_Locality_Blind(benchmark::State& state) {
  run_heatmap(state, /*locality=*/false, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_Locality_Blind)->Arg(0)->Arg(50)->Arg(200)
    ->ArgName("remote_penalty_us")->UseRealTime();

/// Scan-only variant isolating the storage-access stage.
void BM_Locality_ScanOnly(benchmark::State& state) {
  auto& s = stack();
  const bool locality = state.range(0) == 1;
  sparklite::Engine engine(engine_opts(8, locality, 100));
  for (auto _ : state) {
    auto count = sparklite::scan_table(engine, s.cluster,
                                       std::string(model::kEventByTime))
                     .count();
    benchmark::DoNotOptimize(count);
  }
  const auto m = engine.metrics();
  state.counters["remote_fetches"] = static_cast<double>(m.remote_fetches);
}
BENCHMARK(BM_Locality_ScanOnly)->Arg(1)->Arg(0)
    ->ArgName("locality_aware")->UseRealTime();

}  // namespace
}  // namespace hpcla::bench

int main(int argc, char** argv) { return hpcla::bench::bench_main(argc, argv); }
