// Shuffle bench (§III-C wide operations): measures the two-stage
// partitioned shuffle behind reduce_by_key at increasing worker counts.
//
// Two workloads, both ending in a reduce_by_key:
//   * wordcount/workers:N — string-keyed, wide key space (~800 distinct
//     terms), the word_count() shape: heavy map-side combine tables plus
//     per-bucket string merges on the reduce side.
//   * distribution/workers:N — int64-keyed, narrow key space (200
//     cabinets), the distribution() shape: tiny combine tables, the
//     reduce side dominated by bucket concatenation.
// Under the old driver-side merge both curves were flat in N (map stage
// parallel, merge serial); with the partitioned shuffle the reduce side
// is a pool stage too, so throughput should rise with workers until the
// hardware runs out. The JSON records hardware_threads so the trend
// checker can tell "no scaling" from "no cores".
//
// A third sweep holds workers at --threads and varies the downstream
// bucket count (distribution/partitions:P) to expose the
// skew-vs-per-bucket-overhead tradeoff documented in README perf tuning.
//
// Flags: --threads N (max workers / sweep cap, default 8), --partitions P
// (upstream + downstream partitions for the worker sweeps, default 8),
// --json <path>. Writes BENCH_shuffle.json for the trend checker.
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "common/clock.hpp"
#include "common/quantile_sketch.hpp"
#include "sparklite/dataset.hpp"

namespace hpcla::bench {
namespace {

constexpr int kIters = 6;

template <typename K>
using Keyed = std::vector<std::pair<K, std::int64_t>>;

/// ~800 distinct "terms" with a skewed frequency profile, like tokenized
/// console logs: a few hot words plus a long tail.
Keyed<std::string> wordcount_input(std::size_t n) {
  Keyed<std::string> data;
  data.reserve(n);
  std::uint64_t x = 0x243f6a8885a308d3ULL;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto r = static_cast<std::size_t>(x >> 33);
    // Half the stream from 16 hot terms, the rest spread over 800.
    const std::size_t term = (r % 2 == 0) ? (r / 2) % 16 : (r / 2) % 800;
    data.emplace_back("term" + std::to_string(term), 1);
  }
  return data;
}

/// 200 distinct int64 keys (cabinet ids), near-uniform.
Keyed<std::int64_t> distribution_input(std::size_t n) {
  Keyed<std::int64_t> data;
  data.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    data.emplace_back(static_cast<std::int64_t>((i * 37) % 200), 1);
  }
  return data;
}

struct ShuffleResult {
  double records_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double skew = 0.0;
  double map_ms = 0.0;
  double reduce_ms = 0.0;
};

/// Runs reduce_by_key over `data` kIters times on a fresh engine with
/// `workers` workers; returns aggregate records/s plus the last shuffle's
/// skew and stage timings from the engine's shuffle history.
template <typename K>
ShuffleResult run_reduce(std::size_t workers, const Keyed<K>& data,
                         std::size_t partitions, std::size_t buckets) {
  sparklite::Engine engine(engine_opts(workers));
  QuantileSketch lat(0.005);
  std::size_t keys = 0;
  Stopwatch total;
  for (int it = 0; it < kIters; ++it) {
    Stopwatch one;
    auto ds = sparklite::Dataset<std::pair<K, std::int64_t>>::parallelize(
        engine, data, partitions);
    auto reduced = sparklite::reduce_by_key(
        ds, [](std::int64_t a, std::int64_t b) { return a + b; }, buckets);
    keys = reduced.collect().size();
    lat.add(static_cast<double>(one.elapsed_micros()));
  }
  const double elapsed = total.elapsed_seconds();
  HPCLA_CHECK(keys > 0);

  ShuffleResult r;
  r.records_per_sec =
      static_cast<double>(data.size()) * kIters / elapsed;
  r.p50_us = lat.quantile(0.5);
  r.p99_us = lat.quantile(0.99);
  const auto history = engine.shuffle_history();
  if (!history.empty()) {
    const auto& rec = *history.back();
    r.skew = rec.skew;
    r.map_ms = rec.map_seconds * 1e3;
    r.reduce_ms = static_cast<double>(rec.reduce_us.load()) / 1e3;
  }
  return r;
}

template <typename K>
double sweep_workers(const char* workload, const Keyed<K>& data,
                     std::size_t partitions, std::size_t max_workers,
                     BenchJsonWriter& out) {
  double one_worker = 0.0;
  double best = 0.0;
  for (std::size_t w = 1; w <= max_workers; w *= 2) {
    const auto r = run_reduce(w, data, partitions, partitions);
    if (w == 1) one_worker = r.records_per_sec;
    best = std::max(best, r.records_per_sec);
    BenchResultRow row;
    row.name = std::string(workload) + "/workers:" + std::to_string(w);
    row.ops_per_sec = r.records_per_sec;
    row.p50_us = r.p50_us;
    row.p99_us = r.p99_us;
    row.extra["skew"] = r.skew;
    row.extra["map_ms"] = r.map_ms;
    row.extra["reduce_ms"] = r.reduce_ms;
    out.add(row);
    std::printf(
        "%s workers=%zu: %.0f records/s (p50 %.0f us, skew %.2f, "
        "map %.2f ms, reduce %.2f ms)\n",
        workload, w, r.records_per_sec, r.p50_us, r.skew, r.map_ms,
        r.reduce_ms);
  }
  return one_worker > 0 ? best / one_worker : 0.0;
}

int run(int argc, char** argv) {
  const std::string path = consume_json_flag(argc, argv);
  const auto max_workers =
      static_cast<std::size_t>(consume_long_flag(argc, argv, "threads", 8));
  const auto partitions =
      static_cast<std::size_t>(consume_long_flag(argc, argv, "partitions", 8));
  BenchJsonWriter writer("shuffle", path);
  writer.root_extra()["partitions"] = static_cast<double>(partitions);
  writer.root_extra()["hardware_threads"] =
      static_cast<double>(std::thread::hardware_concurrency());

  const auto words = wordcount_input(120000);
  const auto cabinets = distribution_input(240000);

  const double wc_scaling =
      sweep_workers("wordcount", words, partitions, max_workers, writer);
  const double dist_scaling =
      sweep_workers("distribution", cabinets, partitions, max_workers, writer);
  writer.root_extra()["wordcount_scaling_best_vs_1"] = wc_scaling;
  writer.root_extra()["distribution_scaling_best_vs_1"] = dist_scaling;
  std::printf("scaling best-vs-1-worker: wordcount %.2fx, distribution %.2fx\n",
              wc_scaling, dist_scaling);

  // Bucket-count sweep at the full worker count: too few downstream
  // buckets starves the reduce stage, too many pays per-bucket overhead.
  for (const std::size_t buckets : {std::size_t{1}, std::size_t{4},
                                    std::size_t{8}, std::size_t{16}}) {
    const auto r = run_reduce(max_workers, cabinets, partitions, buckets);
    BenchResultRow row;
    row.name = "distribution/partitions:" + std::to_string(buckets);
    row.ops_per_sec = r.records_per_sec;
    row.p50_us = r.p50_us;
    row.p99_us = r.p99_us;
    row.extra["skew"] = r.skew;
    row.extra["reduce_ms"] = r.reduce_ms;
    writer.add(row);
    std::printf("distribution buckets=%zu: %.0f records/s (skew %.2f)\n",
                buckets, r.records_per_sec, r.skew);
  }

  writer.write();
  return 0;
}

}  // namespace
}  // namespace hpcla::bench

int main(int argc, char** argv) { return hpcla::bench::run(argc, argv); }
