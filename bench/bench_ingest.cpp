// §III-D claims — data ingestion:
//   * batch import "implements parsing and uploading using Apache Spark":
//     ETL throughput scales with sparklite workers;
//   * streaming mode coalesces same-type/same-location/same-second events
//     in 1 s windows: measured end-to-end throughput and coalesce ratio.
#include <thread>

#include "bench_util.hpp"

namespace hpcla::bench {

/// Set from --partitions / --threads in main() (shared bench_util parser)
/// so the broker-sharding experiments run without recompiling.
long g_partitions = 8;
long g_threads = 4;

namespace {

const std::vector<titanlog::LogLine>& raw_lines() {
  static const std::vector<titanlog::LogLine> lines = [] {
    auto cfg = mixed_scenario(1.0, 9);
    auto logs = titanlog::Generator(cfg).generate();
    return titanlog::render_all(logs);
  }();
  return lines;
}

/// Full batch ETL (regex parse + upload) vs worker count.
void BM_Ingest_BatchEtlWorkers(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  const auto& lines = raw_lines();
  for (auto _ : state) {
    state.PauseTiming();
    cassalite::Cluster cluster(cluster_opts(4));
    sparklite::Engine engine(engine_opts(workers));
    HPCLA_CHECK(model::create_data_model(cluster).is_ok());
    model::BatchIngestor ingestor(cluster, engine);
    state.ResumeTiming();
    auto report = ingestor.ingest_lines(lines);
    HPCLA_CHECK(report.parse.malformed == 0);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lines.size()));
  state.counters["lines"] = static_cast<double>(lines.size());
}
BENCHMARK(BM_Ingest_BatchEtlWorkers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->ArgName("workers")->UseRealTime()->Unit(benchmark::kMillisecond);

/// Parse-only stage (the regex cost the Spark parallelization targets).
void BM_Ingest_ParseOnly(benchmark::State& state) {
  const auto& lines = raw_lines();
  titanlog::LogParser parser;
  std::size_t i = 0;
  for (auto _ : state) {
    auto parsed = parser.parse_line(lines[i++ % lines.size()].text);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Ingest_ParseOnly);

/// Upload-only stage (pre-parsed records).
void BM_Ingest_UploadOnly(benchmark::State& state) {
  auto cfg = mixed_scenario(0.5, 10);
  auto logs = titanlog::Generator(cfg).generate();
  for (auto _ : state) {
    state.PauseTiming();
    cassalite::Cluster cluster(cluster_opts(4));
    sparklite::Engine engine(engine_opts(4));
    HPCLA_CHECK(model::create_data_model(cluster).is_ok());
    model::BatchIngestor ingestor(cluster, engine);
    state.ResumeTiming();
    auto report = ingestor.ingest_records(logs.events, logs.jobs);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(logs.events.size()));
}
BENCHMARK(BM_Ingest_UploadOnly)->Unit(benchmark::kMillisecond);

/// Streaming ingest end to end with a *concentrated* storm (one failing
/// cabinet's clients spam the same seconds -> high coalesce ratio) vs
/// quiet background (ratio ~1). Coalescing pays exactly when a few
/// components flood the stream — the §III-D design point.
void BM_Ingest_Streaming(benchmark::State& state) {
  const bool stormy = state.range(0) == 1;
  auto cfg = mixed_scenario(0.5, 11);
  if (stormy) {
    cfg = titanlog::ScenarioConfig{};
    cfg.seed = 11;
    cfg.window = TimeRange{kT0, kT0 + 3600};
    cfg.background_scale = 0.2;
    titanlog::LustreStormSpec storm;
    storm.start = kT0 + 1800;
    storm.duration_seconds = 120;
    storm.messages_per_second = 200.0;
    storm.affected_node_fraction = 0.001;  // ~19 chatty nodes
    cfg.storms.push_back(storm);
  }
  auto logs = titanlog::Generator(cfg).generate();
  double ratio = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    cassalite::Cluster cluster(cluster_opts(4));
    sparklite::Engine engine(engine_opts(4));
    buslite::Broker broker;
    HPCLA_CHECK(model::create_data_model(cluster).is_ok());
    HPCLA_CHECK(broker.create_topic(
                          "ev", {.partitions = static_cast<int>(g_partitions)})
                    .is_ok());
    model::EventPublisher pub(broker, "ev");
    for (const auto& e : logs.events) HPCLA_CHECK(pub.publish(e).is_ok());
    model::StreamingIngestor ingestor(cluster, engine, broker, "ev");
    state.ResumeTiming();
    auto report = ingestor.process_available();
    ratio = report.coalesce_ratio();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(logs.events.size()));
  state.counters["coalesce_ratio"] = ratio;
  state.counters["messages"] = static_cast<double>(logs.events.size());
  state.counters["partitions"] = static_cast<double>(g_partitions);
}
BENCHMARK(BM_Ingest_Streaming)->Arg(0)->Arg(1)
    ->ArgName("storm")->UseRealTime()->Unit(benchmark::kMillisecond);

/// Publish side in isolation: --threads producers pushing pre-rendered
/// event messages onto a --partitions topic. The broker-sharding knob the
/// bench_streaming scaling curve measures, on the batch fixture.
void BM_Ingest_StreamingPublish(benchmark::State& state) {
  auto cfg = mixed_scenario(0.5, 12);
  auto logs = titanlog::Generator(cfg).generate();
  const auto threads = static_cast<std::size_t>(g_threads);
  for (auto _ : state) {
    state.PauseTiming();
    buslite::Broker broker;
    HPCLA_CHECK(broker.create_topic(
                          "ev", {.partitions = static_cast<int>(g_partitions)})
                    .is_ok());
    state.ResumeTiming();
    std::vector<std::thread> pubs;
    for (std::size_t t = 0; t < threads; ++t) {
      pubs.emplace_back([&, t] {
        model::EventPublisher pub(broker, "ev");
        for (std::size_t i = t; i < logs.events.size(); i += threads) {
          HPCLA_CHECK(pub.publish(logs.events[i]).is_ok());
        }
      });
    }
    for (auto& p : pubs) p.join();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(logs.events.size()));
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["partitions"] = static_cast<double>(g_partitions);
}
BENCHMARK(BM_Ingest_StreamingPublish)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hpcla::bench

int main(int argc, char** argv) {
  hpcla::bench::g_partitions =
      hpcla::bench::consume_long_flag(argc, argv, "partitions", 8);
  hpcla::bench::g_threads =
      hpcla::bench::consume_long_flag(argc, argv, "threads", 4);
  return hpcla::bench::bench_main(argc, argv);
}
