// Fig 2 — application-run schemas: denormalized views by start time, by
// application name, and by user (plus the per-node placement fan-out).
//
// Measures the cost of the 4-way denormalized write against what it buys:
// each perspective's query is a direct partition read instead of a scan.
#include "bench_util.hpp"

#include "analytics/queries.hpp"

namespace hpcla::bench {
namespace {

LoadedStack& stack() {
  static LoadedStack s = [] {
    auto cfg = mixed_scenario(0.2, 3);
    cfg.jobs->jobs_per_hour = 400;  // job-heavy: ~800 runs in 2 h
    return LoadedStack(cluster_opts(4), engine_opts(4), cfg);
  }();
  return s;
}

/// Denormalized write: one job into all four application tables.
void BM_Fig2_DenormalizedJobWrite(benchmark::State& state) {
  cassalite::Cluster cluster(cluster_opts(4));
  sparklite::Engine engine(engine_opts(2));
  HPCLA_CHECK(model::create_data_model(cluster).is_ok());
  model::BatchIngestor ingestor(cluster, engine);
  titanlog::JobRecord job;
  job.app_name = "LAMMPS";
  job.user = "usr1";
  job.nodes = {100, 101, 102, 103};
  std::int64_t i = 0;
  for (auto _ : state) {
    job.apid = 5000000 + i;
    job.start = kT0 + (i % 3600);
    job.end = job.start + 1800;
    ++i;
    model::IngestReport report;
    ingestor.write_job(job, report);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["tables_per_job"] = 4;
}
BENCHMARK(BM_Fig2_DenormalizedJobWrite);

/// Perspective reads: by start hour, by user, by application name.
void BM_Fig2_QueryByPerspective(benchmark::State& state) {
  auto& s = stack();
  const int perspective = static_cast<int>(state.range(0));
  cassalite::ReadQuery q;
  switch (perspective) {
    case 0:
      q.table = std::string(model::kAppByTime);
      q.partition_key = model::app_time_key(hour_bucket(kT0));
      break;
    case 1:
      q.table = std::string(model::kAppByUser);
      q.partition_key = model::app_user_key("usr1");
      break;
    default:
      q.table = std::string(model::kAppByApp);
      q.partition_key = model::app_app_key("LAMMPS");
      break;
  }
  std::size_t rows = 0;
  for (auto _ : state) {
    auto r = s.cluster.select(q);
    HPCLA_CHECK(r.is_ok());
    rows = r->rows.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Fig2_QueryByPerspective)
    ->Arg(0)->Arg(1)->Arg(2)
    ->ArgName("perspective_time0_user1_app2");

/// The placement query Fig 6 needs: jobs on one node in one hour.
void BM_Fig2_PlacementLookup(benchmark::State& state) {
  auto& s = stack();
  const topo::NodeId node = s.logs.jobs.front().nodes.front();
  cassalite::ReadQuery q;
  q.table = std::string(model::kAppByLocation);
  q.partition_key = model::app_location_key(hour_bucket(kT0), node);
  for (auto _ : state) {
    auto r = s.cluster.select(q);
    HPCLA_CHECK(r.is_ok());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Fig2_PlacementLookup);

/// The alternative the schema avoids: finding one user's jobs by scanning
/// every start-hour partition and filtering.
void BM_Fig2_UserQueryViaScan(benchmark::State& state) {
  auto& s = stack();
  for (auto _ : state) {
    auto ds = sparklite::scan_table(s.engine, s.cluster,
                                    std::string(model::kAppByTime));
    auto count = ds.filter([](const cassalite::Row& row) {
                     const auto* user = row.find(model::kColUser);
                     return user && user->is_text() &&
                            user->as_text() == "usr1";
                   }).count();
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_Fig2_UserQueryViaScan);

}  // namespace
}  // namespace hpcla::bench

int main(int argc, char** argv) { return hpcla::bench::bench_main(argc, argv); }
