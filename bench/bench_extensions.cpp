// §V extensions: composite-event mining, application profiles, and the
// precursor failure predictor — costs and quality counters on a day with
// injected escalation chains.
#include "bench_util.hpp"

#include "analytics/app_profile.hpp"
#include "analytics/composite.hpp"
#include "analytics/prediction.hpp"

namespace hpcla::bench {
namespace {

using titanlog::EventType;

LoadedStack& stack() {
  static LoadedStack s = [] {
    titanlog::ScenarioConfig cfg;
    cfg.seed = 23;
    cfg.window = TimeRange{kT0, kT0 + 6 * 3600};
    cfg.background_scale = 0.5;
    titanlog::HotspotSpec sick;
    sick.type = EventType::kMemoryEcc;
    sick.location = topo::Coord{9, 6, -1, -1, -1};
    sick.window = cfg.window;
    sick.rate_per_node_hour = 8.0;
    sick.node_skew = 1.5;
    cfg.hotspots.push_back(sick);
    titanlog::CausalPairSpec ecc_mce;
    ecc_mce.cause = EventType::kMemoryEcc;
    ecc_mce.effect = EventType::kMachineCheck;
    ecc_mce.lag_seconds = 120;
    ecc_mce.probability = 0.1;
    cfg.causal_pairs.push_back(ecc_mce);
    titanlog::CausalPairSpec mce_panic;
    mce_panic.cause = EventType::kMachineCheck;
    mce_panic.effect = EventType::kKernelPanic;
    mce_panic.lag_seconds = 300;
    mce_panic.probability = 0.3;
    cfg.causal_pairs.push_back(mce_panic);
    cfg.jobs = titanlog::JobMixSpec{.users = 10, .apps = 6,
                                    .jobs_per_hour = 40, .max_size_log2 = 6};
    return LoadedStack(cluster_opts(4), engine_opts(4), cfg);
  }();
  return s;
}

analytics::Context whole_window() {
  analytics::Context ctx;
  ctx.window = TimeRange{kT0, kT0 + 6 * 3600};
  return ctx;
}

void BM_Ext_CompositeMining(benchmark::State& state) {
  auto& s = stack();
  const auto ctx = whole_window();
  const auto rules = analytics::default_composite_rules();
  std::size_t matches = 0;
  for (auto _ : state) {
    auto found = analytics::detect_composites(s.engine, s.cluster, ctx, rules);
    matches = found.size();
    benchmark::DoNotOptimize(found);
  }
  state.counters["matches"] = static_cast<double>(matches);
}
BENCHMARK(BM_Ext_CompositeMining);

void BM_Ext_AppProfiles(benchmark::State& state) {
  auto& s = stack();
  const auto ctx = whole_window();
  std::size_t apps = 0;
  for (auto _ : state) {
    auto profiles = analytics::build_app_profiles(s.engine, s.cluster, ctx);
    apps = profiles.size();
    benchmark::DoNotOptimize(profiles);
  }
  state.counters["apps"] = static_cast<double>(apps);
}
BENCHMARK(BM_Ext_AppProfiles);

void BM_Ext_Prediction(benchmark::State& state) {
  auto& s = stack();
  const auto ctx = whole_window();
  analytics::PredictorConfig cfg;
  cfg.precursors = {EventType::kMemoryEcc, EventType::kMachineCheck};
  cfg.targets = {EventType::kKernelPanic};
  cfg.threshold = state.range(0);
  cfg.window_seconds = 3600;
  cfg.lead_seconds = 3600;
  double precision = 0.0;
  double recall = 0.0;
  for (auto _ : state) {
    auto report = analytics::evaluate_predictor(s.engine, s.cluster, ctx, cfg);
    precision = report.precision();
    recall = report.recall();
    benchmark::DoNotOptimize(report);
  }
  state.counters["precision"] = precision;
  state.counters["recall"] = recall;
}
BENCHMARK(BM_Ext_Prediction)->Arg(1)->Arg(3)->Arg(8)->ArgName("threshold");

}  // namespace
}  // namespace hpcla::bench

int main(int argc, char** argv) { return hpcla::bench::bench_main(argc, argv); }
